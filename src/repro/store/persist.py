"""Disk-backed columnar snapshots with mmap reopen.

This module gives the storage engine a second, *persistent* representation:
a versioned binary snapshot that serialises the term dictionary (string
heap + offset table) and each index order's sorted ID columns, and that
reopens without re-sorting or re-interning anything — the cold store's
indexes are :class:`~repro.store.index.FrozenIdIndex` views straight over
the mapped file, and its dictionary is a
:class:`~repro.store.dictionary.LazyTermDictionary` that decodes strings on
demand.  The planner, merge/hash joins, scatter router and O(1) COUNT
paths all read the same ``count_for_key`` / ``third_count`` /
``sorted_run_ids`` bookkeeping they read on a warm store.

Container layout (single file, all integers little-endian)::

    offset  size  field
    ------  ----  -----------------------------------------------------
    0       8     magic ``b"RPROSNAP"``
    8       4     u32: header length in bytes
    12      4     u32: CRC-32 of the header bytes
    16      n     header — canonical JSON (sorted keys, no whitespace)
    ...     -     zero padding to the next 8-byte boundary
    ...     -     section payloads, each zero-padded to 8 bytes

The header records ``{"kind", "version", "name", "triples", "terms",
"sections"}`` where ``sections`` maps each tag to ``[relative offset,
length, crc32]`` (offsets relative to the padded end of the header, so the
header's own size never feeds back into it).  Three container *kinds*
share the layout:

* ``"store"``      — dictionary sections + three index orders
  (``TripleStore.save`` / ``TripleStore.open``);
* ``"dictionary"`` — dictionary sections only (the shared per-directory
  file of a sharded snapshot);
* ``"columns"``    — index sections only (one per shard).

Dictionary sections: ``dict/heap`` (concatenated
:func:`~repro.store.dictionary.encode_term_record` records in ID order),
``dict/offsets`` (``terms + 1`` int64 record boundaries), ``dict/kinds``
(one kind byte per ID), ``dict/lookup`` (the ID permutation sorted by
record bytes, binary-searched by lazy ``id_for``).  Index sections, for
each order ``spo`` / ``pos`` / ``osp``: the five CSR columns ``keys``,
``key_groups``, ``seconds``, ``group_starts``, ``thirds`` described on
:class:`FrozenIdIndex`.

A sharded snapshot is a directory: ``manifest.json`` (shard topology +
self-CRC), one shared dictionary container and one columns container per
shard — every shard reopens over the same :class:`LazyTermDictionary`,
so the ID space survives exactly.  Payload files carry a **generation
suffix** (``dictionary-g3.snap``, ``shard0-g3.snap``, ...) and the
manifest — which names its generation's files — is replaced *last* and
atomically: a crash anywhere mid-save leaves the previous manifest
pointing at the previous generation's untouched files, so the last good
snapshot always survives and mixed-generation opens are impossible.
Stale generations are swept after a successful save.

Every integrity failure — bad magic, bad version, truncation, any
section or header CRC mismatch, inconsistent column lengths — raises
:class:`~repro.errors.SnapshotCorruptError`; writers emit canonical bytes
(sorted dict iteration, deterministic term records), so ``save → open →
save`` is byte-identical.
"""

from __future__ import annotations

import json
import mmap as _mmap
import os
import re
import sys
import zlib
from array import array
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import SnapshotCorruptError, StoreError
from repro.store.dictionary import (
    LazyTermDictionary,
    TermDictionary,
    encode_term_record,
)
from repro.store.index import FrozenIdIndex, IdTripleIndex

MAGIC = b"RPROSNAP"
VERSION = 1

KIND_STORE = "store"
KIND_DICTIONARY = "dictionary"
KIND_COLUMNS = "columns"
#: Append-only snapshot delta: the terms interned since the base (a
#: dictionary-section tail) plus the net added/removed ID triples.
KIND_DELTA = "delta"

#: Index orders and the CSR columns serialised per order.
INDEX_ORDERS = ("spo", "pos", "osp")
INDEX_COLUMNS = ("keys", "key_groups", "seconds", "group_starts", "thirds")
DICT_SECTIONS = ("dict/heap", "dict/offsets", "dict/kinds", "dict/lookup")
DELTA_TERM_SECTIONS = ("dterms/heap", "dterms/offsets", "dterms/kinds")
DELTA_ADD_SECTIONS = ("add/s", "add/p", "add/o")
DELTA_DEL_SECTIONS = ("del/s", "del/p", "del/o")

MANIFEST_NAME = "manifest.json"

#: Generation-tagged payload file names of a sharded snapshot directory.
_GENERATION_PATTERN = re.compile(r"-g(\d+)\.snap$")

_PREFIX_LEN = 16  # magic + header length + header crc


def _pad8(length: int) -> int:
    return (-length) % 8


def _canonical_json(value) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def _int64_bytes(column) -> bytes:
    """Little-endian int64 bytes of a column (array / memoryview / list)."""
    if isinstance(column, memoryview) and sys.byteorder == "little":
        return column.tobytes()
    values = column if isinstance(column, array) else array("q", column)
    if sys.byteorder == "big":  # pragma: no cover - big-endian hosts only
        values = array("q", values)
        values.byteswap()
    return values.tobytes()


def _int64_view(section: memoryview, tag: str) -> memoryview:
    """An int64 view over one little-endian section payload."""
    if len(section) % 8:
        raise SnapshotCorruptError(
            f"Section {tag!r}: length {len(section)} is not a multiple of 8"
        )
    if sys.byteorder == "little":
        return section.cast("q")
    values = array("q")  # pragma: no cover - big-endian hosts only
    values.frombytes(section.tobytes())
    values.byteswap()
    return memoryview(values)


# --------------------------------------------------------------------- #
# Container writer / reader
# --------------------------------------------------------------------- #
def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` via a same-directory temp file + ``os.replace``.

    A crash mid-save can therefore never destroy the previous snapshot,
    and a sibling process that already mmap'd the old file keeps reading
    its (still-valid) inode instead of seeing a truncation window.
    """
    temp = path.with_name(path.name + ".tmp")
    temp.write_bytes(data)
    os.replace(temp, path)


def write_container(
    path: Union[str, Path],
    kind: str,
    name: str,
    sections: List[Tuple[str, bytes]],
    triples: int,
    terms: int,
    extra: Optional[dict] = None,
) -> None:
    """Serialise one snapshot container to ``path`` (canonical bytes,
    atomically replaced).

    ``extra`` merges additional keys into the header (delta containers
    record their base-generation linkage there).  Every header also
    carries a ``chain`` stamp — a CRC over the concatenated section
    payloads, i.e. a deterministic content fingerprint — which delta
    files copy as ``base_chain`` so a reopened chain can tell whether the
    deltas next to a base file actually belong to it (a crashed
    ``compact`` leaves stale deltas behind; the stamp makes them inert).
    """
    table: Dict[str, List[int]] = {}
    offset = 0
    chain = 0
    payloads = []
    for tag, payload in sections:
        table[tag] = [offset, len(payload), zlib.crc32(payload)]
        payloads.append(payload)
        chain = zlib.crc32(payload, chain)
        offset += len(payload) + _pad8(len(payload))
    body = {
        "kind": kind,
        "version": VERSION,
        "name": name,
        "triples": triples,
        "terms": terms,
        "chain": chain,
        "sections": table,
    }
    if extra:
        body.update(extra)
    header = _canonical_json(body).encode("utf-8")
    parts = [MAGIC, len(header).to_bytes(4, "little"),
             zlib.crc32(header).to_bytes(4, "little"), header,
             b"\0" * _pad8(_PREFIX_LEN + len(header))]
    for payload in payloads:
        parts.append(payload)
        parts.append(b"\0" * _pad8(len(payload)))
    _atomic_write_bytes(Path(path), b"".join(parts))


def read_container(
    buffer, kind: str, verify: bool = True
) -> Tuple[dict, Dict[str, memoryview]]:
    """Parse and validate one container; returns (header, section views).

    ``buffer`` is the raw file content (``bytes`` or ``mmap``).  With
    ``verify`` every section's CRC-32 is checked against the header (one
    sequential pass over the file — still far cheaper than a rebuild);
    the header's own CRC, the magic, the version and all structural
    bounds are checked unconditionally.
    """
    view = memoryview(buffer)
    if len(view) < _PREFIX_LEN:
        raise SnapshotCorruptError(f"Snapshot truncated: {len(view)} bytes")
    if bytes(view[:8]) != MAGIC:
        raise SnapshotCorruptError("Bad snapshot magic (not a repro snapshot)")
    header_len = int.from_bytes(view[8:12], "little")
    header_crc = int.from_bytes(view[12:16], "little")
    if _PREFIX_LEN + header_len > len(view):
        raise SnapshotCorruptError("Snapshot truncated inside the header")
    header_bytes = bytes(view[_PREFIX_LEN : _PREFIX_LEN + header_len])
    if zlib.crc32(header_bytes) != header_crc:
        raise SnapshotCorruptError("Snapshot header checksum mismatch")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise SnapshotCorruptError(f"Snapshot header unparsable: {error}") from None
    if header.get("version") != VERSION:
        raise SnapshotCorruptError(
            f"Unsupported snapshot version: {header.get('version')!r}"
        )
    if header.get("kind") != kind:
        raise SnapshotCorruptError(
            f"Expected a {kind!r} snapshot, found {header.get('kind')!r}"
        )
    base = _PREFIX_LEN + header_len
    base += _pad8(base)
    table = header.get("sections")
    if not isinstance(table, dict):
        raise SnapshotCorruptError("Snapshot header has no section table")
    views: Dict[str, memoryview] = {}
    for tag, entry in table.items():
        if not (isinstance(entry, list) and len(entry) == 3):
            raise SnapshotCorruptError(f"Malformed section entry for {tag!r}")
        offset, length, crc = entry
        start = base + offset
        if offset < 0 or length < 0 or start + length > len(view):
            raise SnapshotCorruptError(f"Section {tag!r} exceeds the snapshot file")
        section = view[start : start + length]
        if verify and zlib.crc32(section) != crc:
            raise SnapshotCorruptError(f"Section {tag!r} checksum mismatch")
        views[tag] = section
    return header, views


def _load_buffer(path: Union[str, Path], use_mmap: bool):
    """The file's content as an mmap (default) or an in-memory bytes copy."""
    path = Path(path)
    try:
        if use_mmap:
            with open(path, "rb") as handle:
                return _mmap.mmap(handle.fileno(), 0, access=_mmap.ACCESS_READ)
        return path.read_bytes()
    except FileNotFoundError:
        raise
    except (ValueError, OSError) as error:
        raise SnapshotCorruptError(f"Cannot map snapshot {path}: {error}") from None


# --------------------------------------------------------------------- #
# Section builders
# --------------------------------------------------------------------- #
def dictionary_sections(dictionary: TermDictionary) -> List[Tuple[str, bytes]]:
    """The four dictionary sections (raw pass-through for unpromoted
    lazy dictionaries, deterministic rebuild otherwise)."""
    heap, offsets, kinds, lookup = dictionary.snapshot_columns()
    return [
        ("dict/heap", bytes(heap)),
        ("dict/offsets", _int64_bytes(offsets)),
        ("dict/kinds", bytes(kinds)),
        ("dict/lookup", _int64_bytes(lookup)),
    ]


def index_sections(order: str, index) -> List[Tuple[str, bytes]]:
    """The five CSR sections of one index order (writable or frozen)."""
    if isinstance(index, FrozenIdIndex):
        columns = index.columns()
    else:
        columns = index.csr_columns()
    return [
        (f"{order}/{column_name}", _int64_bytes(column))
        for column_name, column in zip(INDEX_COLUMNS, columns)
    ]


def delta_term_sections(
    dictionary: TermDictionary, start: int
) -> List[Tuple[str, bytes]]:
    """The dictionary-tail sections of a delta: records for IDs
    ``[start, len(dictionary))`` in the base heap/offsets/kinds layout
    (offsets relative to the tail's own heap)."""
    heap = bytearray()
    offsets = array("q", [0])
    kinds = bytearray()
    for tid in range(start, len(dictionary)):
        heap += encode_term_record(dictionary.decode(tid))
        offsets.append(len(heap))
        kinds.append(dictionary.kind(tid))
    return [
        ("dterms/heap", bytes(heap)),
        ("dterms/offsets", _int64_bytes(offsets)),
        ("dterms/kinds", bytes(kinds)),
    ]


def delta_triple_sections(added, removed) -> List[Tuple[str, bytes]]:
    """The six ID-triple columns of a delta (sorted for determinism)."""
    sections: List[Tuple[str, bytes]] = []
    for tags, triples in ((DELTA_ADD_SECTIONS, added), (DELTA_DEL_SECTIONS, removed)):
        rows = sorted(triples)
        for position, tag in enumerate(tags):
            sections.append(
                (tag, _int64_bytes(array("q", (row[position] for row in rows))))
            )
    return sections


def _expanded_rows(store):
    """A store's SPO index expanded back to parallel s/p/o row columns.

    The numpy path repeats the CSR key/second runs vectorised; the pure-
    Python twin streams the index's triple iterator.  Rows come out in
    SPO order either way.
    """
    from repro.store.triplestore import _numpy

    np = _numpy()
    spo = store._spo
    if np is not None and isinstance(spo, FrozenIdIndex):
        keys, key_groups, seconds, group_starts, thirds = (
            np.asarray(column) for column in spo.columns()
        )
        group_counts = np.diff(group_starts)
        s_rows = np.repeat(np.repeat(keys, np.diff(key_groups)), group_counts)
        p_rows = np.repeat(seconds, group_counts)
        return s_rows, p_rows, np.ascontiguousarray(thirds)
    s_rows = array("q")
    p_rows = array("q")
    o_rows = array("q")
    for s, p, o in spo.triples():
        s_rows.append(s)
        p_rows.append(p)
        o_rows.append(o)
    return s_rows, p_rows, o_rows


def _delta_columns(views: Dict[str, memoryview], tags) -> List[memoryview]:
    columns = []
    for tag in tags:
        if tag not in views:
            raise SnapshotCorruptError(f"Delta snapshot missing section {tag!r}")
        columns.append(_int64_view(views[tag], tag))
    if len({len(column) for column in columns}) > 1:
        raise SnapshotCorruptError("Delta triple columns have unequal lengths")
    return columns


def _apply_deltas(
    store,
    dictionary: TermDictionary,
    delta_paths: List[Path],
    mmap: bool,
    verify: bool,
    apply_terms: bool,
    base_chain: Optional[int] = None,
):
    """Replay a delta chain over a freshly opened base store.

    Returns a new frozen store holding the base content with every
    delta's removals dropped and additions appended (rebuilt through
    :meth:`TripleStore.from_id_columns`, so all three permutations come
    back sorted/CSR exactly as a direct save of the final state would).
    With ``apply_terms`` each delta's dictionary tail extends
    ``dictionary`` first — the sharded open applies dictionary deltas
    once per directory instead and passes ``apply_terms=False`` for the
    per-shard chains.

    ``base_chain`` (single-file chains) is the base header's content
    stamp: deltas whose ``base_chain`` differs are stale leftovers of a
    crashed :func:`compact_store` and are ignored from that point on.
    When it is ``None`` the caller's file list is authoritative (the
    sharded manifest is replaced atomically and names exactly the deltas
    that apply), so no link validation happens — sharded per-shard
    deltas deliberately carry no ``base_chain`` stamp.
    """
    from repro.store.triplestore import TripleStore, _numpy

    deltas = []
    validate = base_chain is not None
    chain = base_chain
    for path in delta_paths:
        buffer = _load_buffer(path, use_mmap=mmap)
        header, views = read_container(buffer, kind=KIND_DELTA, verify=verify)
        if validate and header.get("base_chain") != chain:
            # Stale chain from a folded base: everything from here on
            # describes a previous generation and must not replay.
            break
        chain = header.get("chain")
        deltas.append((header, views, buffer))
    if not deltas:
        return store
    if apply_terms:
        for header, views, _ in deltas:
            offsets = _int64_view(views["dterms/offsets"], "dterms/offsets")
            if len(offsets) <= 1:
                continue
            if header.get("base_terms") != len(dictionary):
                raise SnapshotCorruptError(
                    "Delta chain term counts are inconsistent with the base"
                )
            if not isinstance(dictionary, LazyTermDictionary):
                raise SnapshotCorruptError(
                    "Delta term tails require a lazy base dictionary"
                )
            dictionary.extend_tail(
                views["dterms/heap"], offsets, views["dterms/kinds"]
            )
    np = _numpy()
    total_removed = sum(
        len(_int64_view(views[DELTA_DEL_SECTIONS[0]], DELTA_DEL_SECTIONS[0]))
        for _, views, _ in deltas
        if DELTA_DEL_SECTIONS[0] in views
    )
    s_rows, p_rows, o_rows = _expanded_rows(store)
    if total_removed == 0:
        # Append-only chain: adds are new by journal construction, so the
        # final columns are a plain concatenation.
        if np is not None:
            parts = [[np.asarray(s_rows)], [np.asarray(p_rows)], [np.asarray(o_rows)]]
            for _, views, _ in deltas:
                for part, column in zip(parts, _delta_columns(views, DELTA_ADD_SECTIONS)):
                    part.append(np.asarray(column))
            s_rows, p_rows, o_rows = (np.concatenate(part) for part in parts)
        else:
            s_rows, p_rows, o_rows = (
                array("q", s_rows),
                array("q", p_rows),
                array("q", o_rows),
            )
            for _, views, _ in deltas:
                adds = _delta_columns(views, DELTA_ADD_SECTIONS)
                s_rows.extend(adds[0])
                p_rows.extend(adds[1])
                o_rows.extend(adds[2])
    else:
        if np is not None:
            current = set(zip(s_rows.tolist(), p_rows.tolist(), o_rows.tolist()))
        else:
            current = set(zip(s_rows, p_rows, o_rows))
        for _, views, _ in deltas:
            dels = _delta_columns(views, DELTA_DEL_SECTIONS)
            for row in zip(*dels):
                if row not in current:
                    raise SnapshotCorruptError(
                        "Delta removes a triple the chain never held"
                    )
                current.discard(row)
            adds = _delta_columns(views, DELTA_ADD_SECTIONS)
            current.update(zip(*adds))
        s_rows = array("q")
        p_rows = array("q")
        o_rows = array("q")
        for s, p, o in current:
            s_rows.append(s)
            p_rows.append(p)
            o_rows.append(o)
    replayed = TripleStore.from_id_columns(
        store.name, dictionary, s_rows, p_rows, o_rows
    )
    expected = deltas[-1][0].get("triples")
    if len(replayed) != expected:
        raise SnapshotCorruptError(
            f"Delta chain replays to {len(replayed)} triples, "
            f"the last delta recorded {expected}"
        )
    # The dictionary's views may alias the base buffer; keep it (and the
    # delta buffers cost nothing — extend_tail copied what it needed).
    replayed._snapshot_retained = store._snapshot_retained
    return replayed


def _build_dictionary(
    header: dict, sections: Dict[str, memoryview]
) -> LazyTermDictionary:
    for tag in DICT_SECTIONS:
        if tag not in sections:
            raise SnapshotCorruptError(f"Snapshot missing section {tag!r}")
    offsets = _int64_view(sections["dict/offsets"], "dict/offsets")
    terms = header.get("terms")
    if len(offsets) != (terms or 0) + 1:
        raise SnapshotCorruptError(
            f"Dictionary offset table has {len(offsets)} entries for {terms} terms"
        )
    heap = sections["dict/heap"]
    if len(offsets) and (offsets[0] != 0 or offsets[len(offsets) - 1] != len(heap)):
        raise SnapshotCorruptError("Dictionary offsets do not span the string heap")
    try:
        return LazyTermDictionary(
            heap=heap,
            offsets=offsets,
            kinds=sections["dict/kinds"],
            lookup=_int64_view(sections["dict/lookup"], "dict/lookup"),
        )
    except Exception as error:
        raise SnapshotCorruptError(f"Dictionary sections inconsistent: {error}") from None


def _build_index(
    order: str, header: dict, sections: Dict[str, memoryview]
) -> FrozenIdIndex:
    views = []
    for column_name in INDEX_COLUMNS:
        tag = f"{order}/{column_name}"
        if tag not in sections:
            raise SnapshotCorruptError(f"Snapshot missing section {tag!r}")
        views.append(_int64_view(sections[tag], tag))
    keys, key_groups, seconds, group_starts, thirds = views
    triples = header.get("triples")
    if (
        len(key_groups) != len(keys) + 1
        or len(group_starts) != len(seconds) + 1
        or (len(key_groups) and key_groups[len(key_groups) - 1] != len(seconds))
        or (len(group_starts) and group_starts[len(group_starts) - 1] != len(thirds))
        or len(thirds) != triples
    ):
        raise SnapshotCorruptError(f"Index order {order!r} columns are inconsistent")
    return FrozenIdIndex(keys, key_groups, seconds, group_starts, thirds)


# --------------------------------------------------------------------- #
# Single-store snapshots
# --------------------------------------------------------------------- #
def save_store(store, path: Union[str, Path]) -> None:
    """Write ``store`` (and its dictionary) as one snapshot file."""
    sections = dictionary_sections(store.dictionary)
    for order in INDEX_ORDERS:
        sections.extend(index_sections(order, getattr(store, f"_{order}")))
    write_container(
        path,
        kind=KIND_STORE,
        name=store.name,
        sections=sections,
        triples=len(store),
        terms=len(store.dictionary),
    )
    store.reset_journal()


def open_store(
    path: Union[str, Path],
    mmap: bool = True,
    verify: bool = True,
    _kind: str = KIND_STORE,
    _dictionary: Optional[TermDictionary] = None,
    _expected_terms: Optional[int] = None,
    _delta_paths: Optional[List[Path]] = None,
):
    """Reopen a snapshot written by :func:`save_store`.

    With ``mmap`` (the default) the file is mapped read-only and every
    column is a zero-copy view over it — open time is O(header +
    checksums), independent of how many triples the store holds, and
    resident memory grows only with the pages a workload actually
    touches.  ``mmap=False`` reads the file into one bytes object instead
    (same structures, no page-cache dependence).  ``verify=False`` skips
    the per-section CRC pass (structural checks still run).

    Deltas appended by :func:`save_store_delta` replay transparently:
    for a ``store`` container the consecutive ``<path>.d1, .d2, ...``
    siblings are discovered automatically; sharded opens pass the
    manifest's per-shard delta files via ``_delta_paths`` (and the shard
    base file's term count via ``_expected_terms``, since the shared
    dictionary has already grown past it).
    """
    from repro.store.triplestore import TripleStore

    path = Path(path)
    buffer = _load_buffer(path, use_mmap=mmap)
    header, sections = read_container(buffer, kind=_kind, verify=verify)
    if _dictionary is None:
        dictionary = _build_dictionary(header, sections)
    else:
        dictionary = _dictionary
        expected = len(dictionary) if _expected_terms is None else _expected_terms
        if header.get("terms") != expected:
            raise SnapshotCorruptError(
                f"Shard snapshot was written against {header.get('terms')} terms, "
                f"expected {expected}"
            )
    indexes = {
        order: _build_index(order, header, sections) for order in INDEX_ORDERS
    }
    name = header.get("name")
    store = TripleStore._from_snapshot(
        name=name if isinstance(name, str) else "store",
        dictionary=dictionary,
        spo=indexes["spo"],
        pos=indexes["pos"],
        osp=indexes["osp"],
        retained=buffer,
    )
    if _delta_paths is None and _kind == KIND_STORE:
        _delta_paths = _scan_delta_paths(path)
    if _delta_paths:
        store = _apply_deltas(
            store,
            dictionary,
            _delta_paths,
            mmap=mmap,
            verify=verify,
            apply_terms=_dictionary is None,
            base_chain=header.get("chain") if _dictionary is None else None,
        )
    return store


# --------------------------------------------------------------------- #
# Single-store delta chains
# --------------------------------------------------------------------- #
def _delta_path(path: Path, sequence: int) -> Path:
    """The ``sequence``-th delta sibling of a single-file snapshot."""
    return path.with_name(f"{path.name}.d{sequence}")


def _scan_delta_paths(path: Path) -> List[Path]:
    """The consecutive existing delta siblings of ``path`` (``.d1``,
    ``.d2``, ... until the first gap — later files are unreachable)."""
    paths: List[Path] = []
    sequence = 1
    while True:
        candidate = _delta_path(path, sequence)
        if not candidate.exists():
            return paths
        paths.append(candidate)
        sequence += 1


def _chain_state(path: Path, verify: bool = True) -> Tuple[int, int, int, int]:
    """Walk the snapshot chain rooted at ``path``.

    Returns ``(chain, terms, triples, next_sequence)`` describing the
    state a reopen of ``path`` would reconstruct: the content stamp of
    the last valid chain link, the term/triple counts it recorded, and
    the sequence number the next delta should take.  Stale deltas (their
    ``base_chain`` does not continue the chain — leftovers of a crashed
    compact) terminate the walk exactly as :func:`_apply_deltas` would
    ignore them.
    """
    buffer = _load_buffer(path, use_mmap=True)
    header, _ = read_container(buffer, kind=KIND_STORE, verify=verify)
    chain = header.get("chain")
    terms = header.get("terms")
    triples = header.get("triples")
    sequence = 1
    for delta in _scan_delta_paths(path):
        delta_header, _ = read_container(
            _load_buffer(delta, use_mmap=True), kind=KIND_DELTA, verify=verify
        )
        if delta_header.get("base_chain") != chain:
            break
        chain = delta_header.get("chain")
        terms = delta_header.get("terms")
        triples = delta_header.get("triples")
        sequence += 1
    return chain, terms, triples, sequence


def save_store_delta(store, path: Union[str, Path]) -> bool:
    """Append the store's journal as one delta next to its base snapshot.

    The delta records only the terms interned since the chain's tip and
    the net added/removed ID triples, in the same checksummed container
    format as a full save — orders of magnitude smaller than rewriting a
    large store for a small mutation burst.  Returns ``False`` (writing
    nothing) when the store state already matches the chain tip.

    Raises :class:`~repro.errors.StoreError` when no base snapshot
    exists at ``path``, the journal was lost (``clear()`` or overflow),
    or the journal does not bridge the chain tip to the live state (the
    base belongs to some other store) — callers fall back to a full
    :func:`save_store`.
    """
    path = Path(path)
    journal = store.journal
    if journal is None:
        raise StoreError(
            "Mutation journal was lost (clear() or overflow); "
            "a delta cannot capture the state — use save()"
        )
    if not path.exists():
        raise StoreError(f"No base snapshot at {path} to append a delta to")
    chain, base_terms, base_triples, sequence = _chain_state(path)
    added, removed = journal
    if not added and not removed and base_terms == len(store.dictionary):
        return False
    if (
        not isinstance(base_terms, int)
        or not isinstance(base_triples, int)
        or base_terms > len(store.dictionary)
        or base_triples + len(added) - len(removed) != len(store)
    ):
        raise StoreError(
            f"Journal ({len(added)} added, {len(removed)} removed) does not "
            f"bridge the snapshot chain at {path} ({base_triples} triples, "
            f"{base_terms} terms) to the live store ({len(store)} triples, "
            f"{len(store.dictionary)} terms) — use save()"
        )
    sections = delta_term_sections(store.dictionary, base_terms)
    sections.extend(delta_triple_sections(added, removed))
    write_container(
        _delta_path(path, sequence),
        kind=KIND_DELTA,
        name=store.name,
        sections=sections,
        triples=len(store),
        terms=len(store.dictionary),
        extra={
            "base_chain": chain,
            "base_terms": base_terms,
            "base_triples": base_triples,
            "added": len(added),
            "removed": len(removed),
            "sequence": sequence,
        },
    )
    store.reset_journal()
    return True


def compact_store(store, path: Union[str, Path]) -> None:
    """Fold the delta chain at ``path`` into a fresh base snapshot.

    Writes the store's full current state as the new base (atomically
    replacing the old one) and unlinks the now-folded delta files.  A
    crash between the two steps is safe: the leftover deltas no longer
    continue the new base's ``chain`` stamp, so reopen ignores them.
    """
    path = Path(path)
    save_store(store, path)
    for delta in _scan_delta_paths(path):
        try:
            delta.unlink()
        except OSError:  # pragma: no cover - concurrent sweep
            pass


# --------------------------------------------------------------------- #
# Sharded snapshots (directory: manifest + shared dictionary + shards)
# --------------------------------------------------------------------- #
def _next_generation(directory: Path) -> int:
    """One past the highest generation suffix present in ``directory``.

    Scans file names rather than trusting the manifest, so a corrupt
    manifest can never cause a new save to overwrite the files an old
    manifest might still (partially) describe.
    """
    highest = 0
    for entry in directory.iterdir():
        match = _GENERATION_PATTERN.search(entry.name)
        if match:
            highest = max(highest, int(match.group(1)))
    return highest + 1


def _shard_clean(shard) -> bool:
    """True when the shard's net content provably equals its last
    snapshot point (journal intact and empty)."""
    journal = shard.journal
    return journal is not None and not journal[0] and not journal[1]


def _previous_manifest(store, directory: Path) -> Optional[dict]:
    """The directory's manifest, when it describes ``store``'s own last
    snapshot (same directory pin, same topology) — the precondition for
    reusing its files in an incremental save."""
    if getattr(store, "_snapshot_dir", None) != directory:
        return None
    try:
        previous = _read_manifest(directory)
    except (FileNotFoundError, SnapshotCorruptError):
        return None
    if (
        previous.get("name") != store.name
        or previous.get("num_shards") != store.num_shards
    ):
        return None
    return previous


def save_sharded_store(
    store, directory: Union[str, Path], compact: bool = False
) -> None:
    """Write a sharded store as a snapshot directory (crash-safe).

    The shared dictionary is serialised exactly once; each shard's index
    columns go to their own per-shard file so a process-based deployment
    can open shards independently.  New payload files carry a fresh
    generation suffix and the manifest — which names exactly its
    snapshot's files — is atomically replaced *last*: until that instant
    any reader (or a post-crash reopen) resolves the previous manifest
    to its intact files, and afterwards unreferenced generations are
    swept.  Journals reset only after the manifest is durable, so a
    crash mid-save never loses the ability to re-save (or delta-save)
    the same state.

    Saving back into the store's own last snapshot directory is
    incremental: shards whose journal is empty (net content unchanged)
    keep their existing files and delta chains, and the dictionary file
    is kept whenever the term count still matches (terms are
    append-only, so an equal count means identical content).  A fully
    clean re-save writes nothing at all.  With ``compact`` every
    delta-bearing file is folded into a fresh base instead — afterwards
    no chain remains.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    previous = _previous_manifest(store, directory)
    if previous is not None:
        journals = [shard.journal for shard in store.shards]
        if all(journal is not None for journal in journals):
            net = sum(len(added) - len(removed) for added, removed in journals)
            if previous["triples"] + net != len(store):
                # The journals do not bridge this manifest to the live
                # state (they were consumed by a save elsewhere and the
                # snapshot pin desynced): reusing "clean" shard files
                # would corrupt the snapshot.  Rewrite everything.
                previous = None
    generation = _next_generation(directory)
    terms = len(store.dictionary)
    reuse_dictionary = (
        previous is not None
        and previous["terms"] == terms
        and not (compact and previous["dictionary_deltas"])
    )
    if reuse_dictionary:
        dictionary_name = previous["dictionary"]
        dictionary_terms = previous["dictionary_terms"]
        dictionary_deltas = list(previous["dictionary_deltas"])
    else:
        dictionary_name = f"dictionary-g{generation}.snap"
        dictionary_terms = terms
        dictionary_deltas = []
    shard_entries = []
    rewritten = []
    for position, shard in enumerate(store.shards):
        entry = None
        if previous is not None and _shard_clean(shard):
            candidate = previous["shards"][position]
            if not (compact and candidate["deltas"]):
                entry = {
                    "file": candidate["file"],
                    "terms": candidate["terms"],
                    "deltas": list(candidate["deltas"]),
                }
        if entry is None:
            entry = {
                "file": f"shard{position}-g{generation}.snap",
                "terms": terms,
                "deltas": [],
            }
            rewritten.append((shard, entry["file"]))
        shard_entries.append(entry)
    if (
        previous is not None
        and reuse_dictionary
        and not rewritten
        and shard_entries == previous["shards"]
        and list(store.boundaries) == previous["boundaries"]
        and bool(store._bounded) == bool(previous["bounded"])
        and bool(store._skew_warned) == bool(previous.get("skew_warned", False))
        and store.skew_threshold == previous.get("skew_threshold", 4.0)
    ):
        return  # the snapshot on disk already equals the live state
    if not reuse_dictionary:
        write_container(
            directory / dictionary_name,
            kind=KIND_DICTIONARY,
            name=store.name,
            sections=dictionary_sections(store.dictionary),
            triples=len(store),
            terms=terms,
        )
    for shard, file_name in rewritten:
        sections = []
        for order in INDEX_ORDERS:
            sections.extend(index_sections(order, getattr(shard, f"_{order}")))
        write_container(
            directory / file_name,
            kind=KIND_COLUMNS,
            name=shard.name,
            sections=sections,
            triples=len(shard),
            terms=terms,
        )
    body = {
        "format": "repro-sharded-snapshot",
        "version": VERSION,
        "generation": generation,
        "name": store.name,
        "num_shards": store.num_shards,
        "boundaries": list(store.boundaries),
        "bounded": store._bounded,
        "skew_threshold": store.skew_threshold,
        # The one-shot skew latch travels with the snapshot: a dataset
        # that already warned must not re-warn every time it is reopened
        # (worker respawns and serve() restarts reopen constantly).
        "skew_warned": bool(store._skew_warned),
        "terms": terms,
        "triples": len(store),
        "dictionary": dictionary_name,
        "dictionary_terms": dictionary_terms,
        "dictionary_deltas": dictionary_deltas,
        "shards": shard_entries,
    }
    body["crc32"] = zlib.crc32(_canonical_json(body).encode("utf-8"))
    _atomic_write_bytes(
        directory / MANIFEST_NAME,
        (json.dumps(body, sort_keys=True, indent=2) + "\n").encode("utf-8"),
    )
    for shard, _ in rewritten:
        shard.reset_journal()
    # The new manifest is durable; sweep payload files it does not name
    # (previous generations, leftovers of crashed saves).
    keep = {MANIFEST_NAME, dictionary_name, *dictionary_deltas}
    for entry in shard_entries:
        keep.add(entry["file"])
        keep.update(entry["deltas"])
    for item in directory.iterdir():
        if item.name not in keep and (
            _GENERATION_PATTERN.search(item.name) or item.name.endswith(".tmp")
        ):
            try:
                item.unlink()
            except OSError:  # pragma: no cover - concurrent sweep
                pass


def save_sharded_delta(store, directory: Union[str, Path]) -> bool:
    """Append the sharded store's journals as per-shard delta files.

    Writes one ``shard{i}-d{K}-g{G}.snap`` delta per shard with a
    non-empty journal (only its net added/removed ID triples) plus at
    most one ``dictionary-d{K}-g{G}.snap`` tail for terms interned since
    the manifest, then atomically replaces the manifest to reference the
    grown chains — untouched shards keep their files unread and
    unwritten, which is the point: a small mutation burst costs I/O
    proportional to the burst, not to the store.

    Returns ``False`` (writing nothing) when the directory already
    reflects the live state.  Raises :class:`~repro.errors.StoreError`
    when the directory is not this store's own last snapshot or any
    journal was lost — callers fall back to :func:`save_sharded_store`.
    """
    directory = Path(directory)
    previous = _previous_manifest(store, directory)
    if previous is None:
        raise StoreError(
            f"{directory} does not hold this store's snapshot — use save()"
        )
    for shard in store.shards:
        if shard.journal is None:
            raise StoreError(
                "A shard's mutation journal was lost (clear() or overflow); "
                "a delta cannot capture the state — use save()"
            )
    terms = len(store.dictionary)
    if not isinstance(previous["terms"], int) or previous["terms"] > terms:
        raise StoreError(
            f"Snapshot at {directory} records {previous['terms']} terms, "
            f"store holds {terms} — not this store's snapshot; use save()"
        )
    changed = [
        (position, shard)
        for position, shard in enumerate(store.shards)
        if not _shard_clean(shard)
    ]
    # The journals must bridge the manifest's state to the live store.
    # They don't when a full save into some *other* directory consumed
    # them since: writing a delta here would then record the new triple
    # count without the triples, corrupting the snapshot silently.
    net = sum(
        len(shard.journal[0]) - len(shard.journal[1]) for shard in store.shards
    )
    if previous["triples"] + net != len(store):
        raise StoreError(
            f"Journals (net {net:+d} triples) do not bridge the snapshot at "
            f"{directory} ({previous['triples']} triples) to the live store "
            f"({len(store)} triples) — they were consumed by a save "
            f"elsewhere; use save()"
        )
    grew = terms != previous["terms"]
    metadata_same = (
        list(store.boundaries) == previous["boundaries"]
        and bool(store._bounded) == bool(previous["bounded"])
        and bool(store._skew_warned) == bool(previous.get("skew_warned", False))
    )
    if not changed and not grew and metadata_same:
        return False
    generation = previous["generation"]
    dictionary_deltas = list(previous["dictionary_deltas"])
    if grew:
        sequence = len(dictionary_deltas) + 1
        name = f"dictionary-d{sequence}-g{generation}.snap"
        write_container(
            directory / name,
            kind=KIND_DELTA,
            name=store.name,
            sections=delta_term_sections(store.dictionary, previous["terms"]),
            triples=0,
            terms=terms,
            extra={"base_terms": previous["terms"], "sequence": sequence},
        )
        dictionary_deltas.append(name)
    shard_entries = [
        {
            "file": entry["file"],
            "terms": entry["terms"],
            "deltas": list(entry["deltas"]),
        }
        for entry in previous["shards"]
    ]
    for position, shard in changed:
        added, removed = shard.journal
        entry = shard_entries[position]
        sequence = len(entry["deltas"]) + 1
        file_name = f"shard{position}-d{sequence}-g{generation}.snap"
        write_container(
            directory / file_name,
            kind=KIND_DELTA,
            name=shard.name,
            sections=delta_triple_sections(added, removed),
            triples=len(shard),
            terms=terms,
            extra={
                "added": len(added),
                "removed": len(removed),
                "sequence": sequence,
            },
        )
        entry["deltas"].append(file_name)
    body = {
        "format": "repro-sharded-snapshot",
        "version": VERSION,
        "generation": generation,
        "name": store.name,
        "num_shards": store.num_shards,
        "boundaries": list(store.boundaries),
        "bounded": store._bounded,
        "skew_threshold": store.skew_threshold,
        "skew_warned": bool(store._skew_warned),
        "terms": terms,
        "triples": len(store),
        "dictionary": previous["dictionary"],
        "dictionary_terms": previous["dictionary_terms"],
        "dictionary_deltas": dictionary_deltas,
        "shards": shard_entries,
    }
    body["crc32"] = zlib.crc32(_canonical_json(body).encode("utf-8"))
    _atomic_write_bytes(
        directory / MANIFEST_NAME,
        (json.dumps(body, sort_keys=True, indent=2) + "\n").encode("utf-8"),
    )
    # Manifest durable; the journals it captured may now reset.  Orphans
    # of a crash before this point are swept by the next full save.
    for _, shard in changed:
        shard.reset_journal()
    return True


def _read_manifest(directory: Path) -> dict:
    path = directory / MANIFEST_NAME
    try:
        body = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise
    except (json.JSONDecodeError, UnicodeDecodeError, OSError) as error:
        raise SnapshotCorruptError(f"Sharded manifest unparsable: {error}") from None
    if not isinstance(body, dict) or "crc32" not in body:
        raise SnapshotCorruptError("Sharded manifest has no checksum")
    recorded = body.pop("crc32")
    if zlib.crc32(_canonical_json(body).encode("utf-8")) != recorded:
        raise SnapshotCorruptError("Sharded manifest checksum mismatch")
    if body.get("version") != VERSION or body.get("format") != "repro-sharded-snapshot":
        raise SnapshotCorruptError(
            f"Unsupported sharded snapshot: format={body.get('format')!r} "
            f"version={body.get('version')!r}"
        )
    num_shards = body.get("num_shards")
    shards = body.get("shards")
    boundaries = body.get("boundaries")
    if (
        not isinstance(num_shards, int)
        or num_shards < 1
        or not isinstance(shards, list)
        or len(shards) != num_shards
        or not isinstance(boundaries, list)
        or len(boundaries) > max(0, num_shards - 1)
    ):
        raise SnapshotCorruptError("Sharded manifest topology is inconsistent")
    # Normalise to the delta-aware entry shape.  Pre-delta manifests
    # listed bare file names; every shard was then written against the
    # manifest's full term count and no chains existed.
    entries = []
    for entry in shards:
        if isinstance(entry, str):
            entry = {"file": entry, "terms": body.get("terms"), "deltas": []}
        if (
            not isinstance(entry, dict)
            or not isinstance(entry.get("file"), str)
            or not isinstance(entry.setdefault("deltas", []), list)
        ):
            raise SnapshotCorruptError("Sharded manifest shard entry is malformed")
        entry.setdefault("terms", body.get("terms"))
        entries.append(entry)
    body["shards"] = entries
    body.setdefault("dictionary_terms", body.get("terms"))
    body.setdefault("dictionary_deltas", [])
    if not isinstance(body["dictionary_deltas"], list):
        raise SnapshotCorruptError("Sharded manifest dictionary chain is malformed")
    return body


def _open_shared_dictionary(
    directory: Path, manifest: dict, mmap: bool, verify: bool
) -> Tuple[LazyTermDictionary, object]:
    """Open a sharded snapshot's shared dictionary file.

    The one prologue both the parent-side :func:`open_sharded_store` and
    the worker-side :func:`open_shard_stores` run — shared so the two
    paths can never diverge on dictionary validation, which is what the
    byte-identical worker ID space rests on.  Returns ``(dictionary,
    buffer)``; the buffer must stay referenced while the dictionary's
    views are alive.
    """
    dict_buffer = _load_buffer(directory / manifest["dictionary"], use_mmap=mmap)
    dict_header, dict_sections = read_container(
        dict_buffer, kind=KIND_DICTIONARY, verify=verify
    )
    if dict_header.get("terms") != manifest["dictionary_terms"]:
        raise SnapshotCorruptError(
            "Sharded manifest and dictionary snapshot disagree on term count"
        )
    dictionary = _build_dictionary(dict_header, dict_sections)
    for delta_name in manifest["dictionary_deltas"]:
        delta_buffer = _load_buffer(directory / delta_name, use_mmap=mmap)
        delta_header, delta_views = read_container(
            delta_buffer, kind=KIND_DELTA, verify=verify
        )
        if delta_header.get("base_terms") != len(dictionary):
            raise SnapshotCorruptError(
                "Dictionary delta chain term counts are inconsistent"
            )
        dictionary.extend_tail(
            delta_views["dterms/heap"],
            _int64_view(delta_views["dterms/offsets"], "dterms/offsets"),
            delta_views["dterms/kinds"],
        )
        # extend_tail copies the records it keeps; the delta buffer may go.
    if len(dictionary) != manifest["terms"]:
        raise SnapshotCorruptError(
            "Dictionary delta chain does not reach the manifest's term count"
        )
    return dictionary, dict_buffer


def open_sharded_store(
    directory: Union[str, Path], mmap: bool = True, verify: bool = True
):
    """Reopen a directory written by :func:`save_sharded_store`."""
    from repro.shard.sharded_store import ShardedTripleStore

    directory = Path(directory)
    manifest = _read_manifest(directory)
    dictionary, dict_buffer = _open_shared_dictionary(
        directory, manifest, mmap, verify
    )
    shards = tuple(
        open_store(
            directory / entry["file"],
            mmap=mmap,
            verify=verify,
            _kind=KIND_COLUMNS,
            _dictionary=dictionary,
            _expected_terms=entry["terms"],
            _delta_paths=[directory / name for name in entry["deltas"]],
        )
        for entry in manifest["shards"]
    )
    if sum(len(shard) for shard in shards) != manifest["triples"]:
        raise SnapshotCorruptError(
            "Sharded manifest triple count does not match the shard snapshots"
        )
    return ShardedTripleStore._from_snapshot(
        name=manifest["name"],
        dictionary=dictionary,
        shards=shards,
        boundaries=list(manifest["boundaries"]),
        bounded=bool(manifest["bounded"]),
        skew_threshold=float(manifest.get("skew_threshold", 4.0)),
        skew_warned=bool(manifest.get("skew_warned", False)),
        retained=dict_buffer,
    )


def open_shard_stores(
    directory: Union[str, Path],
    shard_indices,
    mmap: bool = True,
    verify: bool = True,
):
    """Open a subset of a sharded snapshot's shards over one shared
    lazy dictionary.

    This is the worker-process entry point of the process-parallel
    executor (:mod:`repro.shard.workers`): each worker mmap-opens *its*
    shard's columns file plus the shared dictionary file — nothing is
    pickled across the process boundary and nothing is re-interned, so
    the worker's ID space is byte-for-byte the parent's.

    Returns ``(stores, dictionary, manifest)`` where ``stores`` maps each
    requested shard index to its cold :class:`TripleStore`.
    """
    directory = Path(directory)
    manifest = _read_manifest(directory)
    dictionary, dict_buffer = _open_shared_dictionary(
        directory, manifest, mmap, verify
    )
    stores = {}
    for index in shard_indices:
        if not 0 <= index < manifest["num_shards"]:
            raise SnapshotCorruptError(
                f"Shard index {index} out of range for "
                f"{manifest['num_shards']}-shard snapshot"
            )
        entry = manifest["shards"][index]
        store = open_store(
            directory / entry["file"],
            mmap=mmap,
            verify=verify,
            _kind=KIND_COLUMNS,
            _dictionary=dictionary,
            _expected_terms=entry["terms"],
            _delta_paths=[directory / name for name in entry["deltas"]],
        )
        # The dictionary's heap/lookup views alias dict_buffer; retain it
        # alongside the shard's own buffer for the store's lifetime.
        store._snapshot_retained = (store._snapshot_retained, dict_buffer)
        stores[index] = store
    return stores, dictionary, manifest
