"""Disk-backed columnar snapshots with mmap reopen.

This module gives the storage engine a second, *persistent* representation:
a versioned binary snapshot that serialises the term dictionary (string
heap + offset table) and each index order's sorted ID columns, and that
reopens without re-sorting or re-interning anything — the cold store's
indexes are :class:`~repro.store.index.FrozenIdIndex` views straight over
the mapped file, and its dictionary is a
:class:`~repro.store.dictionary.LazyTermDictionary` that decodes strings on
demand.  The planner, merge/hash joins, scatter router and O(1) COUNT
paths all read the same ``count_for_key`` / ``third_count`` /
``sorted_run_ids`` bookkeeping they read on a warm store.

Container layout (single file, all integers little-endian)::

    offset  size  field
    ------  ----  -----------------------------------------------------
    0       8     magic ``b"RPROSNAP"``
    8       4     u32: header length in bytes
    12      4     u32: CRC-32 of the header bytes
    16      n     header — canonical JSON (sorted keys, no whitespace)
    ...     -     zero padding to the next 8-byte boundary
    ...     -     section payloads, each zero-padded to 8 bytes

The header records ``{"kind", "version", "name", "triples", "terms",
"sections"}`` where ``sections`` maps each tag to ``[relative offset,
length, crc32]`` (offsets relative to the padded end of the header, so the
header's own size never feeds back into it).  Three container *kinds*
share the layout:

* ``"store"``      — dictionary sections + three index orders
  (``TripleStore.save`` / ``TripleStore.open``);
* ``"dictionary"`` — dictionary sections only (the shared per-directory
  file of a sharded snapshot);
* ``"columns"``    — index sections only (one per shard).

Dictionary sections: ``dict/heap`` (concatenated
:func:`~repro.store.dictionary.encode_term_record` records in ID order),
``dict/offsets`` (``terms + 1`` int64 record boundaries), ``dict/kinds``
(one kind byte per ID), ``dict/lookup`` (the ID permutation sorted by
record bytes, binary-searched by lazy ``id_for``).  Index sections, for
each order ``spo`` / ``pos`` / ``osp``: the five CSR columns ``keys``,
``key_groups``, ``seconds``, ``group_starts``, ``thirds`` described on
:class:`FrozenIdIndex`.

A sharded snapshot is a directory: ``manifest.json`` (shard topology +
self-CRC), one shared dictionary container and one columns container per
shard — every shard reopens over the same :class:`LazyTermDictionary`,
so the ID space survives exactly.  Payload files carry a **generation
suffix** (``dictionary-g3.snap``, ``shard0-g3.snap``, ...) and the
manifest — which names its generation's files — is replaced *last* and
atomically: a crash anywhere mid-save leaves the previous manifest
pointing at the previous generation's untouched files, so the last good
snapshot always survives and mixed-generation opens are impossible.
Stale generations are swept after a successful save.

Every integrity failure — bad magic, bad version, truncation, any
section or header CRC mismatch, inconsistent column lengths — raises
:class:`~repro.errors.SnapshotCorruptError`; writers emit canonical bytes
(sorted dict iteration, deterministic term records), so ``save → open →
save`` is byte-identical.
"""

from __future__ import annotations

import json
import mmap as _mmap
import os
import re
import sys
import zlib
from array import array
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import SnapshotCorruptError
from repro.store.dictionary import LazyTermDictionary, TermDictionary
from repro.store.index import FrozenIdIndex, IdTripleIndex

MAGIC = b"RPROSNAP"
VERSION = 1

KIND_STORE = "store"
KIND_DICTIONARY = "dictionary"
KIND_COLUMNS = "columns"

#: Index orders and the CSR columns serialised per order.
INDEX_ORDERS = ("spo", "pos", "osp")
INDEX_COLUMNS = ("keys", "key_groups", "seconds", "group_starts", "thirds")
DICT_SECTIONS = ("dict/heap", "dict/offsets", "dict/kinds", "dict/lookup")

MANIFEST_NAME = "manifest.json"

#: Generation-tagged payload file names of a sharded snapshot directory.
_GENERATION_PATTERN = re.compile(r"-g(\d+)\.snap$")

_PREFIX_LEN = 16  # magic + header length + header crc


def _pad8(length: int) -> int:
    return (-length) % 8


def _canonical_json(value) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def _int64_bytes(column) -> bytes:
    """Little-endian int64 bytes of a column (array / memoryview / list)."""
    if isinstance(column, memoryview) and sys.byteorder == "little":
        return column.tobytes()
    values = column if isinstance(column, array) else array("q", column)
    if sys.byteorder == "big":  # pragma: no cover - big-endian hosts only
        values = array("q", values)
        values.byteswap()
    return values.tobytes()


def _int64_view(section: memoryview, tag: str) -> memoryview:
    """An int64 view over one little-endian section payload."""
    if len(section) % 8:
        raise SnapshotCorruptError(
            f"Section {tag!r}: length {len(section)} is not a multiple of 8"
        )
    if sys.byteorder == "little":
        return section.cast("q")
    values = array("q")  # pragma: no cover - big-endian hosts only
    values.frombytes(section.tobytes())
    values.byteswap()
    return memoryview(values)


# --------------------------------------------------------------------- #
# Container writer / reader
# --------------------------------------------------------------------- #
def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` via a same-directory temp file + ``os.replace``.

    A crash mid-save can therefore never destroy the previous snapshot,
    and a sibling process that already mmap'd the old file keeps reading
    its (still-valid) inode instead of seeing a truncation window.
    """
    temp = path.with_name(path.name + ".tmp")
    temp.write_bytes(data)
    os.replace(temp, path)


def write_container(
    path: Union[str, Path],
    kind: str,
    name: str,
    sections: List[Tuple[str, bytes]],
    triples: int,
    terms: int,
) -> None:
    """Serialise one snapshot container to ``path`` (canonical bytes,
    atomically replaced)."""
    table: Dict[str, List[int]] = {}
    offset = 0
    payloads = []
    for tag, payload in sections:
        table[tag] = [offset, len(payload), zlib.crc32(payload)]
        payloads.append(payload)
        offset += len(payload) + _pad8(len(payload))
    header = _canonical_json(
        {
            "kind": kind,
            "version": VERSION,
            "name": name,
            "triples": triples,
            "terms": terms,
            "sections": table,
        }
    ).encode("utf-8")
    parts = [MAGIC, len(header).to_bytes(4, "little"),
             zlib.crc32(header).to_bytes(4, "little"), header,
             b"\0" * _pad8(_PREFIX_LEN + len(header))]
    for payload in payloads:
        parts.append(payload)
        parts.append(b"\0" * _pad8(len(payload)))
    _atomic_write_bytes(Path(path), b"".join(parts))


def read_container(
    buffer, kind: str, verify: bool = True
) -> Tuple[dict, Dict[str, memoryview]]:
    """Parse and validate one container; returns (header, section views).

    ``buffer`` is the raw file content (``bytes`` or ``mmap``).  With
    ``verify`` every section's CRC-32 is checked against the header (one
    sequential pass over the file — still far cheaper than a rebuild);
    the header's own CRC, the magic, the version and all structural
    bounds are checked unconditionally.
    """
    view = memoryview(buffer)
    if len(view) < _PREFIX_LEN:
        raise SnapshotCorruptError(f"Snapshot truncated: {len(view)} bytes")
    if bytes(view[:8]) != MAGIC:
        raise SnapshotCorruptError("Bad snapshot magic (not a repro snapshot)")
    header_len = int.from_bytes(view[8:12], "little")
    header_crc = int.from_bytes(view[12:16], "little")
    if _PREFIX_LEN + header_len > len(view):
        raise SnapshotCorruptError("Snapshot truncated inside the header")
    header_bytes = bytes(view[_PREFIX_LEN : _PREFIX_LEN + header_len])
    if zlib.crc32(header_bytes) != header_crc:
        raise SnapshotCorruptError("Snapshot header checksum mismatch")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise SnapshotCorruptError(f"Snapshot header unparsable: {error}") from None
    if header.get("version") != VERSION:
        raise SnapshotCorruptError(
            f"Unsupported snapshot version: {header.get('version')!r}"
        )
    if header.get("kind") != kind:
        raise SnapshotCorruptError(
            f"Expected a {kind!r} snapshot, found {header.get('kind')!r}"
        )
    base = _PREFIX_LEN + header_len
    base += _pad8(base)
    table = header.get("sections")
    if not isinstance(table, dict):
        raise SnapshotCorruptError("Snapshot header has no section table")
    views: Dict[str, memoryview] = {}
    for tag, entry in table.items():
        if not (isinstance(entry, list) and len(entry) == 3):
            raise SnapshotCorruptError(f"Malformed section entry for {tag!r}")
        offset, length, crc = entry
        start = base + offset
        if offset < 0 or length < 0 or start + length > len(view):
            raise SnapshotCorruptError(f"Section {tag!r} exceeds the snapshot file")
        section = view[start : start + length]
        if verify and zlib.crc32(section) != crc:
            raise SnapshotCorruptError(f"Section {tag!r} checksum mismatch")
        views[tag] = section
    return header, views


def _load_buffer(path: Union[str, Path], use_mmap: bool):
    """The file's content as an mmap (default) or an in-memory bytes copy."""
    path = Path(path)
    try:
        if use_mmap:
            with open(path, "rb") as handle:
                return _mmap.mmap(handle.fileno(), 0, access=_mmap.ACCESS_READ)
        return path.read_bytes()
    except FileNotFoundError:
        raise
    except (ValueError, OSError) as error:
        raise SnapshotCorruptError(f"Cannot map snapshot {path}: {error}") from None


# --------------------------------------------------------------------- #
# Section builders
# --------------------------------------------------------------------- #
def dictionary_sections(dictionary: TermDictionary) -> List[Tuple[str, bytes]]:
    """The four dictionary sections (raw pass-through for unpromoted
    lazy dictionaries, deterministic rebuild otherwise)."""
    heap, offsets, kinds, lookup = dictionary.snapshot_columns()
    return [
        ("dict/heap", bytes(heap)),
        ("dict/offsets", _int64_bytes(offsets)),
        ("dict/kinds", bytes(kinds)),
        ("dict/lookup", _int64_bytes(lookup)),
    ]


def index_sections(order: str, index) -> List[Tuple[str, bytes]]:
    """The five CSR sections of one index order (writable or frozen)."""
    if isinstance(index, FrozenIdIndex):
        columns = index.columns()
    else:
        columns = index.csr_columns()
    return [
        (f"{order}/{column_name}", _int64_bytes(column))
        for column_name, column in zip(INDEX_COLUMNS, columns)
    ]


def _build_dictionary(
    header: dict, sections: Dict[str, memoryview]
) -> LazyTermDictionary:
    for tag in DICT_SECTIONS:
        if tag not in sections:
            raise SnapshotCorruptError(f"Snapshot missing section {tag!r}")
    offsets = _int64_view(sections["dict/offsets"], "dict/offsets")
    terms = header.get("terms")
    if len(offsets) != (terms or 0) + 1:
        raise SnapshotCorruptError(
            f"Dictionary offset table has {len(offsets)} entries for {terms} terms"
        )
    heap = sections["dict/heap"]
    if len(offsets) and (offsets[0] != 0 or offsets[len(offsets) - 1] != len(heap)):
        raise SnapshotCorruptError("Dictionary offsets do not span the string heap")
    try:
        return LazyTermDictionary(
            heap=heap,
            offsets=offsets,
            kinds=sections["dict/kinds"],
            lookup=_int64_view(sections["dict/lookup"], "dict/lookup"),
        )
    except Exception as error:
        raise SnapshotCorruptError(f"Dictionary sections inconsistent: {error}") from None


def _build_index(
    order: str, header: dict, sections: Dict[str, memoryview]
) -> FrozenIdIndex:
    views = []
    for column_name in INDEX_COLUMNS:
        tag = f"{order}/{column_name}"
        if tag not in sections:
            raise SnapshotCorruptError(f"Snapshot missing section {tag!r}")
        views.append(_int64_view(sections[tag], tag))
    keys, key_groups, seconds, group_starts, thirds = views
    triples = header.get("triples")
    if (
        len(key_groups) != len(keys) + 1
        or len(group_starts) != len(seconds) + 1
        or (len(key_groups) and key_groups[len(key_groups) - 1] != len(seconds))
        or (len(group_starts) and group_starts[len(group_starts) - 1] != len(thirds))
        or len(thirds) != triples
    ):
        raise SnapshotCorruptError(f"Index order {order!r} columns are inconsistent")
    return FrozenIdIndex(keys, key_groups, seconds, group_starts, thirds)


# --------------------------------------------------------------------- #
# Single-store snapshots
# --------------------------------------------------------------------- #
def save_store(store, path: Union[str, Path]) -> None:
    """Write ``store`` (and its dictionary) as one snapshot file."""
    sections = dictionary_sections(store.dictionary)
    for order in INDEX_ORDERS:
        sections.extend(index_sections(order, getattr(store, f"_{order}")))
    write_container(
        path,
        kind=KIND_STORE,
        name=store.name,
        sections=sections,
        triples=len(store),
        terms=len(store.dictionary),
    )


def open_store(
    path: Union[str, Path],
    mmap: bool = True,
    verify: bool = True,
    _kind: str = KIND_STORE,
    _dictionary: Optional[TermDictionary] = None,
):
    """Reopen a snapshot written by :func:`save_store`.

    With ``mmap`` (the default) the file is mapped read-only and every
    column is a zero-copy view over it — open time is O(header +
    checksums), independent of how many triples the store holds, and
    resident memory grows only with the pages a workload actually
    touches.  ``mmap=False`` reads the file into one bytes object instead
    (same structures, no page-cache dependence).  ``verify=False`` skips
    the per-section CRC pass (structural checks still run).
    """
    from repro.store.triplestore import TripleStore

    buffer = _load_buffer(path, use_mmap=mmap)
    header, sections = read_container(buffer, kind=_kind, verify=verify)
    if _dictionary is None:
        dictionary = _build_dictionary(header, sections)
    else:
        dictionary = _dictionary
        if header.get("terms") != len(dictionary):
            raise SnapshotCorruptError(
                f"Shard snapshot was written against {header.get('terms')} terms, "
                f"shared dictionary holds {len(dictionary)}"
            )
    indexes = {
        order: _build_index(order, header, sections) for order in INDEX_ORDERS
    }
    name = header.get("name")
    return TripleStore._from_snapshot(
        name=name if isinstance(name, str) else "store",
        dictionary=dictionary,
        spo=indexes["spo"],
        pos=indexes["pos"],
        osp=indexes["osp"],
        retained=buffer,
    )


# --------------------------------------------------------------------- #
# Sharded snapshots (directory: manifest + shared dictionary + shards)
# --------------------------------------------------------------------- #
def _next_generation(directory: Path) -> int:
    """One past the highest generation suffix present in ``directory``.

    Scans file names rather than trusting the manifest, so a corrupt
    manifest can never cause a new save to overwrite the files an old
    manifest might still (partially) describe.
    """
    highest = 0
    for entry in directory.iterdir():
        match = _GENERATION_PATTERN.search(entry.name)
        if match:
            highest = max(highest, int(match.group(1)))
    return highest + 1


def save_sharded_store(store, directory: Union[str, Path]) -> None:
    """Write a sharded store as a snapshot directory (crash-safe).

    The shared dictionary is serialised exactly once; each shard's index
    columns go to their own per-shard file so a future process-based
    deployment can open shards independently.  All payload files carry a
    fresh generation suffix and the manifest — which names exactly its
    generation's files — is atomically replaced *last*: until that
    instant any reader (or a post-crash reopen) resolves the previous
    manifest to the previous generation's intact files, and afterwards
    the stale generation is swept.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    generation = _next_generation(directory)
    terms = len(store.dictionary)
    dictionary_name = f"dictionary-g{generation}.snap"
    write_container(
        directory / dictionary_name,
        kind=KIND_DICTIONARY,
        name=store.name,
        sections=dictionary_sections(store.dictionary),
        triples=len(store),
        terms=terms,
    )
    shard_files = []
    for position, shard in enumerate(store.shards):
        file_name = f"shard{position}-g{generation}.snap"
        shard_files.append(file_name)
        sections = []
        for order in INDEX_ORDERS:
            sections.extend(index_sections(order, getattr(shard, f"_{order}")))
        write_container(
            directory / file_name,
            kind=KIND_COLUMNS,
            name=shard.name,
            sections=sections,
            triples=len(shard),
            terms=terms,
        )
    body = {
        "format": "repro-sharded-snapshot",
        "version": VERSION,
        "generation": generation,
        "name": store.name,
        "num_shards": store.num_shards,
        "boundaries": list(store.boundaries),
        "bounded": store._bounded,
        "skew_threshold": store.skew_threshold,
        # The one-shot skew latch travels with the snapshot: a dataset
        # that already warned must not re-warn every time it is reopened
        # (worker respawns and serve() restarts reopen constantly).
        "skew_warned": bool(store._skew_warned),
        "terms": terms,
        "triples": len(store),
        "dictionary": dictionary_name,
        "shards": shard_files,
    }
    body["crc32"] = zlib.crc32(_canonical_json(body).encode("utf-8"))
    _atomic_write_bytes(
        directory / MANIFEST_NAME,
        (json.dumps(body, sort_keys=True, indent=2) + "\n").encode("utf-8"),
    )
    # The new manifest is durable; sweep payload files it does not name
    # (previous generations, leftovers of crashed saves).
    keep = {MANIFEST_NAME, dictionary_name, *shard_files}
    for entry in directory.iterdir():
        if entry.name not in keep and (
            _GENERATION_PATTERN.search(entry.name) or entry.name.endswith(".tmp")
        ):
            try:
                entry.unlink()
            except OSError:  # pragma: no cover - concurrent sweep
                pass


def _read_manifest(directory: Path) -> dict:
    path = directory / MANIFEST_NAME
    try:
        body = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise
    except (json.JSONDecodeError, UnicodeDecodeError, OSError) as error:
        raise SnapshotCorruptError(f"Sharded manifest unparsable: {error}") from None
    if not isinstance(body, dict) or "crc32" not in body:
        raise SnapshotCorruptError("Sharded manifest has no checksum")
    recorded = body.pop("crc32")
    if zlib.crc32(_canonical_json(body).encode("utf-8")) != recorded:
        raise SnapshotCorruptError("Sharded manifest checksum mismatch")
    if body.get("version") != VERSION or body.get("format") != "repro-sharded-snapshot":
        raise SnapshotCorruptError(
            f"Unsupported sharded snapshot: format={body.get('format')!r} "
            f"version={body.get('version')!r}"
        )
    num_shards = body.get("num_shards")
    shards = body.get("shards")
    boundaries = body.get("boundaries")
    if (
        not isinstance(num_shards, int)
        or num_shards < 1
        or not isinstance(shards, list)
        or len(shards) != num_shards
        or not isinstance(boundaries, list)
        or len(boundaries) > max(0, num_shards - 1)
    ):
        raise SnapshotCorruptError("Sharded manifest topology is inconsistent")
    return body


def _open_shared_dictionary(
    directory: Path, manifest: dict, mmap: bool, verify: bool
) -> Tuple[LazyTermDictionary, object]:
    """Open a sharded snapshot's shared dictionary file.

    The one prologue both the parent-side :func:`open_sharded_store` and
    the worker-side :func:`open_shard_stores` run — shared so the two
    paths can never diverge on dictionary validation, which is what the
    byte-identical worker ID space rests on.  Returns ``(dictionary,
    buffer)``; the buffer must stay referenced while the dictionary's
    views are alive.
    """
    dict_buffer = _load_buffer(directory / manifest["dictionary"], use_mmap=mmap)
    dict_header, dict_sections = read_container(
        dict_buffer, kind=KIND_DICTIONARY, verify=verify
    )
    if dict_header.get("terms") != manifest["terms"]:
        raise SnapshotCorruptError(
            "Sharded manifest and dictionary snapshot disagree on term count"
        )
    return _build_dictionary(dict_header, dict_sections), dict_buffer


def open_sharded_store(
    directory: Union[str, Path], mmap: bool = True, verify: bool = True
):
    """Reopen a directory written by :func:`save_sharded_store`."""
    from repro.shard.sharded_store import ShardedTripleStore

    directory = Path(directory)
    manifest = _read_manifest(directory)
    dictionary, dict_buffer = _open_shared_dictionary(
        directory, manifest, mmap, verify
    )
    shards = tuple(
        open_store(
            directory / file_name,
            mmap=mmap,
            verify=verify,
            _kind=KIND_COLUMNS,
            _dictionary=dictionary,
        )
        for file_name in manifest["shards"]
    )
    if sum(len(shard) for shard in shards) != manifest["triples"]:
        raise SnapshotCorruptError(
            "Sharded manifest triple count does not match the shard snapshots"
        )
    return ShardedTripleStore._from_snapshot(
        name=manifest["name"],
        dictionary=dictionary,
        shards=shards,
        boundaries=list(manifest["boundaries"]),
        bounded=bool(manifest["bounded"]),
        skew_threshold=float(manifest.get("skew_threshold", 4.0)),
        skew_warned=bool(manifest.get("skew_warned", False)),
        retained=dict_buffer,
    )


def open_shard_stores(
    directory: Union[str, Path],
    shard_indices,
    mmap: bool = True,
    verify: bool = True,
):
    """Open a subset of a sharded snapshot's shards over one shared
    lazy dictionary.

    This is the worker-process entry point of the process-parallel
    executor (:mod:`repro.shard.workers`): each worker mmap-opens *its*
    shard's columns file plus the shared dictionary file — nothing is
    pickled across the process boundary and nothing is re-interned, so
    the worker's ID space is byte-for-byte the parent's.

    Returns ``(stores, dictionary, manifest)`` where ``stores`` maps each
    requested shard index to its cold :class:`TripleStore`.
    """
    directory = Path(directory)
    manifest = _read_manifest(directory)
    dictionary, dict_buffer = _open_shared_dictionary(
        directory, manifest, mmap, verify
    )
    stores = {}
    for index in shard_indices:
        if not 0 <= index < manifest["num_shards"]:
            raise SnapshotCorruptError(
                f"Shard index {index} out of range for "
                f"{manifest['num_shards']}-shard snapshot"
            )
        store = open_store(
            directory / manifest["shards"][index],
            mmap=mmap,
            verify=verify,
            _kind=KIND_COLUMNS,
            _dictionary=dictionary,
        )
        # The dictionary's heap/lookup views alias dict_buffer; retain it
        # alongside the shard's own buffer for the store's lifetime.
        store._snapshot_retained = (store._snapshot_retained, dict_buffer)
        stores[index] = store
    return stores, dictionary, manifest
