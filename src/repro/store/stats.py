"""Per-predicate and store-wide statistics.

The statistics layer answers questions the alignment layer and the
synthetic data generator keep asking:

* how many facts does a relation have,
* how many distinct subjects / objects,
* what is its functionality (avg. facts per subject) — PARIS-style,
* is it an entity-entity or entity-literal relation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List

from repro.rdf.terms import IRI, Literal
from repro.rdf.triple import Triple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.store.dictionary import TermDictionary
    from repro.store.index import IdTripleIndex


@dataclass
class PredicateStatistics:
    """Aggregate statistics for a single predicate."""

    predicate: IRI
    fact_count: int = 0
    distinct_subjects: int = 0
    distinct_objects: int = 0
    literal_object_count: int = 0

    @property
    def is_literal_valued(self) -> bool:
        """Whether the majority of the relation's objects are literals."""
        if self.fact_count == 0:
            return False
        return self.literal_object_count * 2 > self.fact_count

    @property
    def functionality(self) -> float:
        """PARIS-style functionality: ``#distinct subjects / #facts``.

        A value of 1.0 means each subject has exactly one object (a
        functional relation); values near 0 mean many objects per subject.
        Returns 0.0 for empty relations.
        """
        if self.fact_count == 0:
            return 0.0
        return self.distinct_subjects / self.fact_count

    @property
    def inverse_functionality(self) -> float:
        """``#distinct objects / #facts`` — functionality of the inverse."""
        if self.fact_count == 0:
            return 0.0
        return self.distinct_objects / self.fact_count

    @property
    def average_objects_per_subject(self) -> float:
        """Mean number of objects per distinct subject."""
        if self.distinct_subjects == 0:
            return 0.0
        return self.fact_count / self.distinct_subjects


@dataclass
class StoreStatistics:
    """Store-wide statistics snapshot."""

    triple_count: int = 0
    predicate_count: int = 0
    subject_count: int = 0
    object_count: int = 0
    predicates: Dict[IRI, PredicateStatistics] = field(default_factory=dict)

    def top_predicates(self, limit: int = 10) -> List[PredicateStatistics]:
        """The ``limit`` predicates with the most facts, descending."""
        ranked = sorted(self.predicates.values(), key=lambda s: s.fact_count, reverse=True)
        return ranked[:limit]


def predicate_statistics_from_index(
    dictionary: "TermDictionary",
    pos_index: "IdTripleIndex",
    predicate: IRI,
    predicate_id: int,
) -> PredicateStatistics:
    """Compute one predicate's statistics purely in ID space.

    Works off the POS permutation (``predicate -> object -> subjects``), so
    fact/object/subject counts come from index bookkeeping and the literal
    tally from the dictionary's per-ID kind bytes — no
    :class:`~repro.rdf.terms.Term` is materialised.
    """
    literal_objects = 0
    for object_id, subject_ids in pos_index.items_for_key(predicate_id):
        if dictionary.is_literal_id(object_id):
            literal_objects += len(subject_ids)
    return PredicateStatistics(
        predicate=predicate,
        fact_count=pos_index.count_for_key(predicate_id),
        distinct_subjects=pos_index.distinct_third_count(predicate_id),
        distinct_objects=pos_index.second_count_for_key(predicate_id),
        literal_object_count=literal_objects,
    )


def compute_statistics(triples: Iterable[Triple]) -> StoreStatistics:
    """Compute a :class:`StoreStatistics` snapshot from raw triples.

    This is a single streaming pass; the store itself exposes a cheaper
    incremental version, but this function is handy for files and tests.
    """
    subjects_by_predicate: Dict[IRI, set] = {}
    objects_by_predicate: Dict[IRI, set] = {}
    facts_by_predicate: Dict[IRI, int] = {}
    literal_objects_by_predicate: Dict[IRI, int] = {}
    all_subjects = set()
    all_objects = set()
    total = 0

    for triple in triples:
        total += 1
        predicate = triple.predicate
        facts_by_predicate[predicate] = facts_by_predicate.get(predicate, 0) + 1
        subjects_by_predicate.setdefault(predicate, set()).add(triple.subject)
        objects_by_predicate.setdefault(predicate, set()).add(triple.object)
        if isinstance(triple.object, Literal):
            literal_objects_by_predicate[predicate] = (
                literal_objects_by_predicate.get(predicate, 0) + 1
            )
        all_subjects.add(triple.subject)
        all_objects.add(triple.object)

    stats = StoreStatistics(
        triple_count=total,
        predicate_count=len(facts_by_predicate),
        subject_count=len(all_subjects),
        object_count=len(all_objects),
    )
    for predicate, count in facts_by_predicate.items():
        stats.predicates[predicate] = PredicateStatistics(
            predicate=predicate,
            fact_count=count,
            distinct_subjects=len(subjects_by_predicate[predicate]),
            distinct_objects=len(objects_by_predicate[predicate]),
            literal_object_count=literal_objects_by_predicate.get(predicate, 0),
        )
    return stats
