"""Bulk-loading helpers for the triple store."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Union

from repro.rdf.ntriples import parse_ntriples
from repro.rdf.turtle import parse_turtle
from repro.rdf.triple import Triple
from repro.store.triplestore import TripleStore


def load_triples(
    triples: Iterable[Triple],
    name: str = "store",
    store: TripleStore | None = None,
) -> TripleStore:
    """Load an iterable of triples into a (new or existing) store."""
    if store is None:
        store = TripleStore(name=name)
    store.add_all(triples)
    return store


def load_ntriples_file(
    path: Union[str, Path],
    name: str | None = None,
    store: TripleStore | None = None,
) -> TripleStore:
    """Load an ``.nt`` or ``.ttl`` file into a store.

    The format is chosen from the file extension: ``.ttl`` uses the Turtle
    reader, everything else is parsed as N-Triples.
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    if path.suffix.lower() in (".ttl", ".turtle"):
        triples = parse_turtle(text)
    else:
        triples = parse_ntriples(text)
    return load_triples(triples, name=name or path.stem, store=store)
