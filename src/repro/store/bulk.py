"""Bulk-loading helpers for the triple store.

These helpers route through :meth:`TripleStore.bulk_load`, the columnar
fast path: terms are batch-interned through the dictionary while the ID
triples accumulate in flat ``array('q')`` columns; each permutation index
(SPO/POS/OSP) is then built by sorting the columns once in that index's
order and materialising the sorted runs directly into the index
structures, instead of paying a bisect insertion into three indexes per
triple.  The synthetic generator and the file loaders below all construct
stores this way; :meth:`TripleStore.add` / :meth:`~TripleStore.add_all`
remain the incremental path for small updates.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Union

from repro.rdf.ntriples import parse_ntriples
from repro.rdf.turtle import parse_turtle
from repro.rdf.triple import Triple
from repro.store.triplestore import TripleStore


def load_triples(
    triples: Iterable[Triple],
    name: str = "store",
    store: TripleStore | None = None,
) -> TripleStore:
    """Bulk-load an iterable of triples into a (new or existing) store."""
    if store is None:
        store = TripleStore(name=name)
    store.bulk_load(triples)
    return store


def load_ntriples_file(
    path: Union[str, Path],
    name: str | None = None,
    store: TripleStore | None = None,
) -> TripleStore:
    """Bulk-load an ``.nt`` or ``.ttl`` file into a store.

    The format is chosen from the file extension: ``.ttl`` uses the Turtle
    reader, everything else is parsed as N-Triples.
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    if path.suffix.lower() in (".ttl", ".turtle"):
        triples = parse_turtle(text)
    else:
        triples = parse_ntriples(text)
    return load_triples(triples, name=name or path.stem, store=store)
