"""The in-memory triple store.

:class:`TripleStore` is the storage substrate under every knowledge base in
this reproduction.  Since the dictionary-encoding refactor it stores
**integer ID triples**: every term is interned once in a
:class:`~repro.store.dictionary.TermDictionary` and the three permutation
indexes (:class:`~repro.store.index.IdTripleIndex`) key on plain ints.  The
public API stays Term-in/Term-out; the ID-level API (:meth:`match_ids`,
:meth:`term_id`, :attr:`dictionary`) is used by the SPARQL evaluator to
join on integers without round-tripping through Term objects.

Pattern dispatch:

========= ==========================
pattern    index used
========= ==========================
(s, p, o)  SPO (membership test)
(s, p, ?)  SPO
(s, ?, o)  OSP
(s, ?, ?)  SPO
(?, p, o)  POS
(?, p, ?)  POS
(?, ?, o)  OSP
(?, ?, ?)  full scan over SPO
========= ==========================

Every one of the eight shapes is also *countable* from index bookkeeping
alone — :meth:`count` never materialises triples.

Since the persistence PR a store has **two interchangeable index
representations**: the writable :class:`IdTripleIndex` nests (warm
stores) and read-only :class:`~repro.store.index.FrozenIdIndex` column
views over an mmap'd snapshot (:meth:`TripleStore.open`).  Every read
path is generic over both; the first mutation of a cold store promotes
the frozen columns to the writable form (see :meth:`_ensure_writable`).
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import StoreError
from repro.rdf.terms import IRI, Term
from repro.rdf.triple import Triple, TriplePattern
from repro.store.dictionary import TermDictionary
from repro.store.index import FrozenIdIndex, IdTripleIndex
from repro.store.stats import (
    PredicateStatistics,
    StoreStatistics,
    predicate_statistics_from_index,
)

try:  # optional accelerator for the bulk-load column sort (not a hard dep)
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None


def _numpy():
    """The numpy module, or ``None`` when missing or disabled.

    The ``REPRO_NO_NUMPY`` environment variable force-disables every numpy
    fast path in the library (CI exercises the pure-Python fallbacks with
    it); checking per call keeps the switch effective for tests that set
    the variable after import.
    """
    from repro.obs import config as _config

    if _np is None or _config.numpy_disabled():
        return None
    return _np


def _ids_array_np(np, column):
    """``column`` as an int64 ndarray, zero-copy for buffer-backed inputs."""
    if isinstance(column, np.ndarray):
        return np.ascontiguousarray(column, dtype=np.int64)
    if isinstance(column, (array, memoryview, bytes, bytearray)):
        return np.frombuffer(column, dtype=np.int64)
    return np.fromiter(column, dtype=np.int64, count=len(column))


def _csr_from_sorted_np(np, keys_col, seconds_col, thirds_col):
    """One permutation's five CSR columns from presorted, deduped columns.

    ``(keys_col, seconds_col, thirds_col)`` must already be sorted
    lexicographically; boundary detection is two vectorised comparisons,
    so the Python cost is O(1) regardless of row count.
    """
    n = int(keys_col.size)
    if not n:
        empty = np.empty(0, dtype=np.int64)
        zero = np.zeros(1, dtype=np.int64)
        return empty, zero, empty, zero, empty
    group_change = np.empty(n, dtype=bool)
    group_change[0] = True
    np.not_equal(keys_col[1:], keys_col[:-1], out=group_change[1:])
    group_change[1:] |= seconds_col[1:] != seconds_col[:-1]
    group_rows = np.flatnonzero(group_change)
    group_keys = keys_col[group_rows]
    seconds = seconds_col[group_rows]
    group_starts = np.empty(group_rows.size + 1, dtype=np.int64)
    group_starts[:-1] = group_rows
    group_starts[-1] = n
    key_change = np.empty(group_keys.size, dtype=bool)
    key_change[0] = True
    np.not_equal(group_keys[1:], group_keys[:-1], out=key_change[1:])
    key_slots = np.flatnonzero(key_change)
    keys = group_keys[key_slots]
    key_groups = np.empty(key_slots.size + 1, dtype=np.int64)
    key_groups[:-1] = key_slots
    key_groups[-1] = group_keys.size
    return keys, key_groups, seconds, group_starts, np.ascontiguousarray(thirds_col)


def _csr_from_sorted_rows(rows):
    """Pure-Python twin of :func:`_csr_from_sorted_np` over sorted tuples."""
    from itertools import groupby

    keys = array("q")
    key_groups = array("q", [0])
    seconds = array("q")
    group_starts = array("q", [0])
    thirds = array("q")
    for key, key_rows in groupby(rows, key=lambda row: row[0]):
        for second, group_rows in groupby(key_rows, key=lambda row: row[1]):
            seconds.append(second)
            thirds.extend(row[2] for row in group_rows)
            group_starts.append(len(thirds))
        keys.append(key)
        key_groups.append(len(seconds))
    return keys, key_groups, seconds, group_starts, thirds


def csr_permutation_sections(subjects: bytes, predicates: bytes, objects: bytes):
    """:meth:`TripleStore._csr_permutations` over raw int64 column bytes.

    The process-parallel sharded builder ships each shard's partition to a
    worker as three bytes payloads and gets the fifteen CSR column
    payloads back — bytes pickle as flat buffers, so nothing is
    re-interned or converted per row on either side.
    """
    count, permutations = TripleStore._csr_permutations(
        _column_from_bytes(subjects),
        _column_from_bytes(predicates),
        _column_from_bytes(objects),
    )
    return count, [
        tuple(_column_bytes(column) for column in columns)
        for columns in permutations
    ]


def _column_from_bytes(payload: bytes):
    np = _numpy()
    if np is not None:
        return np.frombuffer(payload, dtype=np.int64)
    column = array("q")
    column.frombytes(payload)
    return column


def _column_bytes(column) -> bytes:
    return column.tobytes()

#: Below this batch size the pure-Python sort path wins (numpy call overhead).
_BULK_NUMPY_MIN = 2048

#: Net journal entries (adds + removes since the last snapshot) beyond
#: which the mutation journal is dropped: a delta larger than this is no
#: cheaper than a full save, so the memory is better spent elsewhere.
_JOURNAL_LIMIT = 1 << 20

#: Sentinel distinguishing "constant term unknown to the dictionary" (which
#: can never match) from a ``None`` wildcard in internal pattern dispatch.
_MISS = object()


class TripleStore:
    """A fully indexed, in-memory set of RDF triples.

    The store is a *set*: adding the same triple twice is a no-op.  All
    mutation happens through :meth:`add` / :meth:`remove` so the three
    indexes and the statistics stay consistent.

    Parameters
    ----------
    name:
        Optional human-readable name (used in ``repr`` and logs).
    triples:
        Optional initial triples to load.
    dictionary:
        Optional shared :class:`TermDictionary`.  Passing the same
        dictionary to several stores gives them a common ID space (useful
        for cross-store joins); by default each store owns a fresh one.
    """

    def __init__(
        self,
        name: str = "store",
        triples: Optional[Iterable[Triple]] = None,
        dictionary: Optional[TermDictionary] = None,
    ):
        self.name = name
        self._dictionary = dictionary if dictionary is not None else TermDictionary()
        self._spo = IdTripleIndex()
        self._pos = IdTripleIndex()
        self._osp = IdTripleIndex()
        # Monotonic mutation stamp: bumped by every mutation that changes
        # the triple set.  Consumers (the SPARQL plan cache) compare stamps
        # instead of sizes, so an add+remove pair cannot masquerade as "no
        # change" and leave stale cached plans behind.
        self._version = 0
        # Flat ID-tuple -> Triple map: free materialisation (match() hands
        # back the instance added, instead of rebuilding a Triple per
        # matched row), plus its inverse for one-probe membership tests:
        # Triple hashes are cached on the instance, so `t in store` costs a
        # single dict lookup instead of three term->ID translations.
        self._triples: Dict[Tuple[int, int, int], Triple] = {}
        self._triple_ids: Dict[Triple, Tuple[int, int, int]] = {}
        # Cold-opened stores (TripleStore.open) start with frozen columnar
        # indexes, a lazy dictionary and *no* materialised Triple maps;
        # these two flags track that state.  Warm stores never flip them.
        self._lazy_triples = False
        self._snapshot_retained = None  # keeps the mmap buffer alive
        # Net mutation journal since the last snapshot point: (added,
        # removed) ID-triple sets, or None once the journal is lost
        # (clear(), or more net changes than _JOURNAL_LIMIT) — a lost
        # journal forces the next snapshot to be a full save instead of a
        # delta.  save()/open()/save_delta() reset it.
        self._journal: Optional[Tuple[set, set]] = (set(), set())
        if triples is not None:
            self.bulk_load(triples)

    @classmethod
    def _from_snapshot(
        cls,
        name: str,
        dictionary: TermDictionary,
        spo: FrozenIdIndex,
        pos: FrozenIdIndex,
        osp: FrozenIdIndex,
        retained=None,
    ) -> "TripleStore":
        """Assemble a cold store over frozen snapshot views (persist layer)."""
        store = cls.__new__(cls)
        store.name = name
        store._dictionary = dictionary
        store._spo = spo
        store._pos = pos
        store._osp = osp
        store._version = 0
        store._triples = {}
        store._triple_ids = {}
        store._lazy_triples = True
        store._snapshot_retained = retained
        store._journal = (set(), set())
        return store

    @classmethod
    def from_id_columns(
        cls,
        name: str,
        dictionary: TermDictionary,
        subjects,
        predicates,
        objects,
    ) -> "TripleStore":
        """Assemble a store straight from parallel dictionary-ID columns.

        The streaming construction path for generated worlds: rows are
        sorted and deduplicated columnwise (numpy when available, a pure-
        Python fallback otherwise) and the three permutation indexes are
        built as *frozen* CSR columns — no per-fact :class:`Triple`
        objects, no Python containers proportional to the row count.  The
        store starts in the same lazy state a cold-opened snapshot does
        (``is_frozen``), so saving it writes the columns verbatim and the
        first mutation thaws them exactly like a reopened snapshot.  All
        IDs must have been interned through ``dictionary``.
        """
        _, permutations = cls._csr_permutations(subjects, predicates, objects)
        indexes = [
            FrozenIdIndex(*[memoryview(column) for column in columns])
            for columns in permutations
        ]
        return cls._from_snapshot(name, dictionary, *indexes)

    @staticmethod
    def _csr_permutations(subjects, predicates, objects):
        """Sorted, deduplicated CSR columns for all three permutations.

        Returns ``(row_count, [spo, pos, osp])`` where each permutation is
        the five buffer-backed columns (keys, key_groups, seconds,
        group_starts, thirds) in :class:`FrozenIdIndex` layout.  This is
        the sort kernel behind :meth:`from_id_columns`; the sharded
        builder also runs it inside worker processes via
        :func:`csr_permutation_sections`.
        """
        np = _numpy()
        if np is not None and len(subjects) >= _BULK_NUMPY_MIN:
            s = _ids_array_np(np, subjects)
            p = _ids_array_np(np, predicates)
            o = _ids_array_np(np, objects)
            order = np.lexsort((o, p, s))
            s, p, o = s[order], p[order], o[order]
            if s.size:
                keep = np.empty(s.size, dtype=bool)
                keep[0] = True
                np.not_equal(s[1:], s[:-1], out=keep[1:])
                keep[1:] |= p[1:] != p[:-1]
                keep[1:] |= o[1:] != o[:-1]
                if not keep.all():
                    s, p, o = s[keep], p[keep], o[keep]
            pos_order = np.lexsort((s, o, p))
            osp_order = np.lexsort((p, s, o))
            return int(s.size), [
                _csr_from_sorted_np(np, s, p, o),
                _csr_from_sorted_np(np, p[pos_order], o[pos_order], s[pos_order]),
                _csr_from_sorted_np(np, o[osp_order], s[osp_order], p[osp_order]),
            ]
        rows = sorted(set(zip(subjects, predicates, objects)))
        return len(rows), [
            _csr_from_sorted_rows(rows),
            _csr_from_sorted_rows(sorted((p, o, s) for s, p, o in rows)),
            _csr_from_sorted_rows(sorted((o, s, p) for s, p, o in rows)),
        ]

    # ------------------------------------------------------------------ #
    # Snapshot persistence
    # ------------------------------------------------------------------ #
    def save(self, path) -> None:
        """Write the store (triples + dictionary) as one snapshot file.

        The format is documented in :mod:`repro.store.persist`; reopening
        with :meth:`open` restores an equivalent store without re-sorting
        or re-interning.  Saving is deterministic: saving an unmutated
        reopened snapshot reproduces the file byte for byte.
        """
        from repro.store.persist import save_store

        save_store(self, path)

    def save_delta(self, path) -> bool:
        """Append the mutations since the last snapshot point as a delta.

        Writes only the terms interned since and the net added/removed ID
        triples next to the base snapshot at ``path`` (see
        :func:`repro.store.persist.save_store_delta`); :meth:`open`
        replays the chain transparently.  Returns ``False`` when there is
        nothing to write.  Raises :class:`~repro.errors.StoreError` when
        no base snapshot exists or the journal was lost (``clear()`` or
        overflow) — fall back to :meth:`save` then.
        """
        from repro.store.persist import save_store_delta

        return save_store_delta(self, path)

    def compact(self, path) -> None:
        """Fold the delta chain at ``path`` into a fresh base snapshot."""
        from repro.store.persist import compact_store

        compact_store(self, path)

    @classmethod
    def open(cls, path, mmap: bool = True, verify: bool = True) -> "TripleStore":
        """Reopen a snapshot written by :meth:`save`.

        With ``mmap`` (default) the index columns and the string heap stay
        on disk behind read-only views, so opening costs header parsing
        plus one checksum pass regardless of store size; terms decode
        lazily as queries touch them.  ``mmap=False`` loads the file into
        memory instead.  The first mutation transparently promotes the
        frozen columns to the writable in-memory form.

        Raises
        ------
        SnapshotCorruptError
            If the file is truncated, has a bad magic/version, or any
            checksum does not match.
        """
        from repro.store.persist import open_store

        return open_store(path, mmap=mmap, verify=verify)

    @property
    def is_frozen(self) -> bool:
        """Whether the indexes are still read-only snapshot views."""
        return isinstance(self._spo, FrozenIdIndex)

    def _ensure_triples(self) -> None:
        """Materialise the ID-triple <-> Triple maps of a cold store."""
        if not self._lazy_triples:
            return
        decode = self._dictionary.decode_triple
        triples = self._triples
        triple_ids = self._triple_ids
        for ids in self._spo.triples():
            triple = decode(ids)
            triples[ids] = triple
            triple_ids[triple] = ids
        self._lazy_triples = False

    def _ensure_writable(self) -> None:
        """Promote frozen snapshot columns to writable indexes (mutations).

        Copy-on-write at index-order granularity: each frozen
        :class:`FrozenIdIndex` thaws into an independent
        :class:`IdTripleIndex`; the mmap'd columns themselves are never
        written.  Reads never trigger this.
        """
        if not isinstance(self._spo, FrozenIdIndex):
            return
        self._ensure_triples()
        self._spo = self._spo.thaw()
        self._pos = self._pos.thaw()
        self._osp = self._osp.thaw()

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def _journal_add(self, ids: Tuple[int, int, int]) -> None:
        journal = self._journal
        if journal is None:
            return
        added, removed = journal
        if ids in removed:
            removed.discard(ids)
        else:
            added.add(ids)
            if len(added) + len(removed) > _JOURNAL_LIMIT:
                self._journal = None

    def _journal_remove(self, ids: Tuple[int, int, int]) -> None:
        journal = self._journal
        if journal is None:
            return
        added, removed = journal
        if ids in added:
            added.discard(ids)
        else:
            removed.add(ids)
            if len(added) + len(removed) > _JOURNAL_LIMIT:
                self._journal = None

    def reset_journal(self) -> None:
        """Restart the mutation journal (a new snapshot point)."""
        self._journal = (set(), set())

    @property
    def journal(self) -> Optional[Tuple[set, set]]:
        """The net ``(added, removed)`` ID-triple sets since the last
        snapshot point, or ``None`` when the journal was lost (``clear``
        or overflow) and only a full save can capture the state.  Do not
        mutate."""
        return self._journal

    def add(self, triple: Triple) -> bool:
        """Add a triple.  Returns ``True`` if the store changed."""
        if not isinstance(triple, Triple):
            raise StoreError(f"Expected a Triple, got {type(triple).__name__}")
        # Idempotent-upsert fast path on a cold store: a duplicate add is
        # a no-op, so answer it from the frozen columns instead of paying
        # the full thaw.
        if self._lazy_triples and triple in self:
            return False
        self._ensure_writable()
        encode = self._dictionary.encode
        s = encode(triple.subject)
        p = encode(triple.predicate)
        o = encode(triple.object)
        if not self._spo.add(s, p, o):
            return False
        self._pos.add(p, o, s)
        self._osp.add(o, s, p)
        self._triples[(s, p, o)] = triple
        self._triple_ids[triple] = (s, p, o)
        self._version += 1
        self._journal_add((s, p, o))
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Add many triples one by one; returns the number actually inserted.

        Prefer :meth:`bulk_load` for large batches — it sorts once per
        index order instead of bisect-inserting per triple.
        """
        inserted = 0
        for triple in triples:
            if self.add(triple):
                inserted += 1
        return inserted

    def bulk_load(self, triples: Iterable[Triple]) -> int:
        """Columnar bulk insert; returns the number of new triples.

        The fast path for store construction: terms are interned through
        the dictionary in one pass while the ID triples accumulate in flat
        ``array('q')`` columns, then each permutation index is built by
        sorting the columns once in that index's order and handing the
        presorted, deduplicated runs to
        :meth:`IdTripleIndex.bulk_extend` — no per-triple bisect
        insertions.  Equivalent to :meth:`add_all` (duplicates within the
        batch and against existing content are skipped, first instance
        wins) but several times faster on large batches.
        """
        # Subscripting the interning map interns on miss entirely in C for
        # already-seen terms (the overwhelming case in a batch).  Staging
        # only needs the Triple maps (dedupe) and the interning map; the
        # index thaw is left to bulk_load_pending, which skips it when
        # the whole batch turns out to be duplicates.
        self._ensure_triples()
        intern = self._dictionary.ids_map
        triples_map = self._triples
        # Stage the batch before touching any store structure: if the input
        # iterable (or a non-Triple element) raises mid-batch, the store is
        # left exactly as it was — interned terms aside, which is the same
        # guarantee `add` gives.  First instance wins within the batch.
        pending: Dict[Tuple[int, int, int], Triple] = {}
        for triple in triples:
            if not isinstance(triple, Triple):
                raise StoreError(f"Expected a Triple, got {type(triple).__name__}")
            ids = (
                intern[triple.subject],
                intern[triple.predicate],
                intern[triple.object],
            )
            if ids in triples_map or ids in pending:
                continue
            pending[ids] = triple
        return self.bulk_load_pending(pending)

    def bulk_load_pending(
        self, pending: Dict[Tuple[int, int, int], Triple]
    ) -> int:
        """The load phase of :meth:`bulk_load`, for pre-staged batches.

        ``pending`` maps ID triples (encoded through *this store's*
        dictionary) to their Triple instances; entries must be new to the
        store and internally deduplicated — exactly what the staging loop
        of :meth:`bulk_load` produces.  The sharded store stages a batch
        once (intern, route, dedupe per shard) and hands each shard its
        partition here, so building N shards costs one staging pass, not
        N+1.
        """
        count = len(pending)
        if not count:
            return 0
        self._ensure_writable()
        self._version += 1
        triple_ids = self._triple_ids
        s_col = array("q")
        p_col = array("q")
        o_col = array("q")
        append_s, append_p, append_o = s_col.append, p_col.append, o_col.append
        for ids, triple in pending.items():
            triple_ids[triple] = ids
            append_s(ids[0])
            append_p(ids[1])
            append_o(ids[2])
        self._triples.update(pending)
        journal = self._journal
        if journal is not None:
            added, removed = journal
            if removed:
                re_added = removed & pending.keys()
                removed -= re_added
                added.update(pending.keys() - re_added)
            else:
                added.update(pending.keys())
            if len(added) + len(removed) > _JOURNAL_LIMIT:
                self._journal = None
        if _numpy() is not None and count >= _BULK_NUMPY_MIN:
            s_arr = _np.frombuffer(s_col, dtype=_np.int64)
            p_arr = _np.frombuffer(p_col, dtype=_np.int64)
            o_arr = _np.frombuffer(o_col, dtype=_np.int64)
            self._bulk_extend_np(self._spo, s_arr, p_arr, o_arr)
            self._bulk_extend_np(self._pos, p_arr, o_arr, s_arr)
            self._bulk_extend_np(self._osp, o_arr, s_arr, p_arr)
        else:
            self._spo.bulk_extend(sorted(zip(s_col, p_col, o_col)))
            self._pos.bulk_extend(sorted(zip(p_col, o_col, s_col)))
            self._osp.bulk_extend(sorted(zip(o_col, s_col, p_col)))
        return count

    @staticmethod
    def _bulk_extend_np(index: IdTripleIndex, keys, seconds, thirds) -> None:
        """Sort one permutation's columns in C and feed the index grouped runs.

        ``lexsort`` orders by ``(key, second, third)``; group boundaries
        (where key or second changes) come from vectorised comparisons, so
        Python-level work is proportional to the number of groups, not
        entries.
        """
        order = _np.lexsort((thirds, seconds, keys))
        keys = keys[order]
        seconds = seconds[order]
        thirds = thirds[order]
        change = _np.empty(len(keys), dtype=bool)
        change[0] = True
        _np.not_equal(keys[1:], keys[:-1], out=change[1:])
        change[1:] |= seconds[1:] != seconds[:-1]
        starts = _np.flatnonzero(change)
        bounds = starts.tolist()
        bounds.append(len(keys))
        index.bulk_extend_grouped(
            keys[starts].tolist(),
            seconds[starts].tolist(),
            bounds,
            thirds.tolist(),
        )

    def remove(self, triple: Triple) -> bool:
        """Remove a triple.  Returns ``True`` if it was present.

        Dictionary IDs are *not* reclaimed: interned terms keep their IDs
        for the lifetime of the store.
        """
        # Mirror of the add() fast path: removing an absent triple from a
        # cold store is a no-op answered from the frozen columns.
        if self._lazy_triples and triple not in self:
            return False
        self._ensure_writable()
        ids = self._triple_ids.get(triple)
        if ids is None:
            return False
        s, p, o = ids
        if not self._spo.remove(s, p, o):
            return False
        self._pos.remove(p, o, s)
        self._osp.remove(o, s, p)
        del self._triples[(s, p, o)]
        del self._triple_ids[triple]
        self._version += 1
        self._journal_remove((s, p, o))
        return True

    def clear(self) -> None:
        """Remove every triple.

        The term dictionary is kept: IDs remain stable across ``clear`` so
        external holders of IDs (caches, statistics) stay valid.
        """
        if len(self._spo):
            self._version += 1
        if isinstance(self._spo, FrozenIdIndex):
            # No point thawing columns just to empty them: swap in fresh
            # writable indexes and drop the frozen views.
            self._spo = IdTripleIndex()
            self._pos = IdTripleIndex()
            self._osp = IdTripleIndex()
            self._lazy_triples = False
        else:
            self._spo.clear()
            self._pos.clear()
            self._osp.clear()
        self._triples.clear()
        self._triple_ids.clear()
        # A cleared store's net change is "everything the snapshot had is
        # gone" — cheaper to re-snapshot fully than to journal per triple.
        self._journal = None

    # ------------------------------------------------------------------ #
    # ID-level API (used by the SPARQL layer)
    # ------------------------------------------------------------------ #
    @property
    def dictionary(self) -> TermDictionary:
        """The store's term dictionary."""
        return self._dictionary

    @property
    def data_version(self) -> int:
        """Monotonic stamp changed by every mutation of the triple set.

        ``add``/``remove``/``bulk_load``/``clear`` bump it whenever they
        actually change the store, so two equal stamps guarantee identical
        content.  The SPARQL plan cache keys on this instead of the store
        size, which an add+remove pair leaves unchanged.
        """
        return self._version

    def term_id(self, term: Term) -> Optional[int]:
        """The dictionary ID of ``term``; ``None`` if it never occurred."""
        return self._dictionary.id_for(term)

    def term_for_id(self, tid: int) -> Term:
        """The term interned under ``tid``."""
        return self._dictionary.decode(tid)

    def contains_ids(self, s: int, p: int, o: int) -> bool:
        """Membership test in ID space — one tuple-hash probe (a bisect
        probe on a cold-opened store)."""
        if self._lazy_triples:
            return self._spo.contains(s, p, o)
        return (s, p, o) in self._triples

    @property
    def id_triples(self) -> Dict[Tuple[int, int, int], Triple]:
        """The raw ``ID-triple -> Triple`` map (do not mutate).

        Exposed, like :attr:`TermDictionary.ids_map`, so hot batch paths
        (the sharded store's staging loop) can dedupe with a plain dict
        probe instead of a method call per triple.  On a cold-opened
        store this materialises the map first (callers on this path are
        about to mutate anyway).
        """
        self._ensure_triples()
        return self._triples

    def match_ids(
        self,
        subject: Optional[int] = None,
        predicate: Optional[int] = None,
        object: Optional[int] = None,
    ) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(s, p, o)`` ID triples matching the (wildcard) pattern.

        ``None`` in any position means "match anything".  This is the hot
        path of the SPARQL evaluator: every yielded value is a plain int.
        """
        s, p, o = subject, predicate, object
        if s is not None and p is not None and o is not None:
            if self.contains_ids(s, p, o):
                yield (s, p, o)
            return
        if s is not None and p is not None:
            for obj in self._spo.thirds(s, p):
                yield (s, p, obj)
            return
        if s is not None and o is not None:
            for pred in self._osp.thirds(o, s):
                yield (s, pred, o)
            return
        if s is not None:
            for pred, obj in self._spo.pairs(s):
                yield (s, pred, obj)
            return
        if p is not None and o is not None:
            for subj in self._pos.thirds(p, o):
                yield (subj, p, o)
            return
        if p is not None:
            for obj, subj in self._pos.pairs(p):
                yield (subj, p, obj)
            return
        if o is not None:
            for subj, pred in self._osp.pairs(o):
                yield (subj, pred, o)
            return
        yield from self._spo.triples()

    def sorted_run_ids(
        self,
        subject: Optional[int] = None,
        predicate: Optional[int] = None,
        object: Optional[int] = None,
    ):
        """The sorted ID run of the single wildcard position of a pattern.

        Exactly two positions must be constant IDs; the returned sequence
        is the matching index's third-level container (IDs in ascending
        order) and must not be mutated.  This is what merge joins stream.
        """
        s, p, o = subject, predicate, object
        if s is not None and p is not None and o is None:
            return self._spo.sorted_thirds(s, p)
        if p is not None and o is not None and s is None:
            return self._pos.sorted_thirds(p, o)
        if s is not None and o is not None and p is None:
            return self._osp.sorted_thirds(o, s)
        raise StoreError("sorted_run_ids requires exactly two constant positions")

    def count_ids(
        self,
        subject: Optional[int] = None,
        predicate: Optional[int] = None,
        object: Optional[int] = None,
    ) -> int:
        """Count matching triples in ID space from index bookkeeping only."""
        s, p, o = subject, predicate, object
        if s is not None and p is not None and o is not None:
            return 1 if self._spo.contains(s, p, o) else 0
        if s is not None and p is not None:
            return self._spo.third_count(s, p)
        if s is not None and o is not None:
            return self._osp.third_count(o, s)
        if s is not None:
            return self._spo.count_for_key(s)
        if p is not None and o is not None:
            return self._pos.third_count(p, o)
        if p is not None:
            return self._pos.count_for_key(p)
        if o is not None:
            return self._osp.count_for_key(o)
        return len(self._spo)

    def position_ids(
        self,
        position: str,
        subject: Optional[int] = None,
        predicate: Optional[int] = None,
        object: Optional[int] = None,
    ) -> Iterator[int]:
        """IDs occurring in one triple ``position`` of the matching triples.

        The ``position`` being enumerated must itself be a wildcard.  Most
        shapes stream an index level directly; the shapes whose distinct
        values span several index keys may yield **duplicates** — callers
        wanting distinct IDs must deduplicate (the sharded store unions
        these streams across shards into a set, so it pays that cost only
        once).  Order is unspecified.
        """
        s, p, o = subject, predicate, object
        if position == "s":
            if p is not None and o is not None:
                return self._pos.thirds(p, o)
            if p is not None:
                return (sid for _, sid in self._pos.pairs(p))
            if o is not None:
                return self._osp.seconds(o)
            return self._spo.keys()
        if position == "p":
            if s is not None and o is not None:
                return self._osp.thirds(o, s)
            if s is not None:
                return self._spo.seconds(s)
            if o is not None:
                return (pid for _, pid in self._osp.pairs(o))
            return self._pos.keys()
        if position == "o":
            if s is not None and p is not None:
                return self._spo.thirds(s, p)
            if s is not None:
                return (oid for _, oid in self._spo.pairs(s))
            if p is not None:
                return self._pos.seconds(p)
            return self._osp.keys()
        raise StoreError(f"Unknown triple position: {position!r}")

    def count_distinct_ids(
        self,
        position: str,
        subject: Optional[int] = None,
        predicate: Optional[int] = None,
        object: Optional[int] = None,
    ) -> int:
        """Distinct IDs in one triple ``position`` ("s"/"p"/"o") of the
        triples matching the given (wildcard) ID pattern.

        The ``position`` being counted must itself be a wildcard.  Every
        combination is answered from the indexes without materialising
        terms or solutions; most shapes are O(1) key/length lookups, while
        the shapes that reduce to ``distinct_third_count`` union the
        per-key ID runs (O(matching facts)).  This backs the SPARQL
        layer's ``COUNT(DISTINCT ?v)`` fast path.
        """
        s, p, o = subject, predicate, object
        if position == "s":
            if p is not None and o is not None:
                return self._pos.third_count(p, o)
            if p is not None:
                return self._pos.distinct_third_count(p)
            if o is not None:
                return self._osp.second_count_for_key(o)
            return self._spo.key_count()
        if position == "p":
            if s is not None and o is not None:
                return self._osp.third_count(o, s)
            if s is not None:
                return self._spo.second_count_for_key(s)
            if o is not None:
                return self._osp.distinct_third_count(o)
            return self._pos.key_count()
        if position == "o":
            if s is not None and p is not None:
                return self._spo.third_count(s, p)
            if s is not None:
                return self._spo.distinct_third_count(s)
            if p is not None:
                return self._pos.second_count_for_key(p)
            return self._osp.key_count()
        raise StoreError(f"Unknown triple position: {position!r}")

    # ------------------------------------------------------------------ #
    # Lookup (Term-level public API)
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._spo)

    def __contains__(self, triple: object) -> bool:
        # One flat-map probe: Triple caches its hash at construction, so
        # this skips the three per-term ID translations and tuple build
        # the previous implementation paid on every call.
        if not isinstance(triple, Triple):
            return False
        if self._lazy_triples:
            # Cold store: three lazy ID lookups + one index bisect, so a
            # membership probe never materialises the Triple maps.
            id_for = self._dictionary.id_for
            s = id_for(triple.subject)
            p = id_for(triple.predicate)
            o = id_for(triple.object)
            if s is None or p is None or o is None:
                return False
            return self._spo.contains(s, p, o)
        return triple in self._triple_ids

    def __iter__(self) -> Iterator[Triple]:
        if self._lazy_triples:
            decode = self._dictionary.decode_triple
            return (decode(ids) for ids in self._spo.triples())
        return iter(self._triples.values())

    def __repr__(self) -> str:
        return f"TripleStore(name={self.name!r}, size={len(self)})"

    def _resolve(self, term: Optional[Term]):
        """Map a pattern position to an ID, ``None`` (wildcard) or ``_MISS``."""
        if term is None:
            return None
        tid = self._dictionary.id_for(term)
        return tid if tid is not None else _MISS

    def match(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[IRI] = None,
        object: Optional[Term] = None,
    ) -> Iterator[Triple]:
        """Yield all triples matching the given (possibly wildcard) pattern.

        ``None`` in any position means "match anything".
        """
        s = self._resolve(subject)
        p = self._resolve(predicate)
        o = self._resolve(object)
        if s is _MISS or p is _MISS or o is _MISS:
            return
        if s is None and p is None and o is None:
            yield from iter(self)
            return
        if self._lazy_triples:
            decode = self._dictionary.decode_triple
            for ids in self.match_ids(s, p, o):
                yield decode(ids)
            return
        triples = self._triples
        for ids in self.match_ids(s, p, o):
            yield triples[ids]

    def match_pattern(self, pattern: TriplePattern) -> Iterator[Triple]:
        """:meth:`match` taking a :class:`~repro.rdf.triple.TriplePattern`."""
        return self.match(pattern.subject, pattern.predicate, pattern.object)

    def count(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[IRI] = None,
        object: Optional[Term] = None,
    ) -> int:
        """Count matching triples without materialising any.

        Every pattern shape — including ``(s, p, ?)`` and ``(?, p, o)`` —
        is answered from index key counts.
        """
        s = self._resolve(subject)
        p = self._resolve(predicate)
        o = self._resolve(object)
        if s is _MISS or p is _MISS or o is _MISS:
            return 0
        return self.count_ids(s, p, o)

    # ------------------------------------------------------------------ #
    # Vocabulary access
    # ------------------------------------------------------------------ #
    def predicates(self) -> List[IRI]:
        """All distinct predicates, sorted by IRI for determinism."""
        decode = self._dictionary.decode
        return sorted(
            (decode(pid) for pid in self._pos.keys()),  # type: ignore[misc]
            key=lambda p: p.value,
        )

    def subjects(self, predicate: Optional[IRI] = None) -> Iterator[Term]:
        """Distinct subjects, optionally restricted to one predicate."""
        decode = self._dictionary.decode
        if predicate is None:
            for sid in self._spo.keys():
                yield decode(sid)
            return
        pid = self._dictionary.id_for(predicate)
        if pid is None:
            return
        seen: Set[int] = set()
        for _, sid in self._pos.pairs(pid):
            if sid not in seen:
                seen.add(sid)
                yield decode(sid)

    def objects(self, predicate: Optional[IRI] = None) -> Iterator[Term]:
        """Distinct objects, optionally restricted to one predicate."""
        decode = self._dictionary.decode
        if predicate is None:
            for oid in self._osp.keys():
                yield decode(oid)
            return
        pid = self._dictionary.id_for(predicate)
        if pid is None:
            return
        for oid in self._pos.seconds(pid):
            yield decode(oid)

    def objects_of(self, subject: Term, predicate: IRI) -> List[Term]:
        """All objects ``o`` such that ``(subject, predicate, o)`` is a fact."""
        sid = self._dictionary.id_for(subject)
        pid = self._dictionary.id_for(predicate)
        if sid is None or pid is None:
            return []
        decode = self._dictionary.decode
        return [decode(oid) for oid in self._spo.thirds(sid, pid)]

    def subjects_of(self, predicate: IRI, object: Term) -> List[Term]:
        """All subjects ``s`` such that ``(s, predicate, object)`` is a fact."""
        pid = self._dictionary.id_for(predicate)
        oid = self._dictionary.id_for(object)
        if pid is None or oid is None:
            return []
        decode = self._dictionary.decode
        return [decode(sid) for sid in self._pos.thirds(pid, oid)]

    def predicates_of(self, subject: Term) -> List[IRI]:
        """Distinct predicates appearing with ``subject`` as subject."""
        sid = self._dictionary.id_for(subject)
        if sid is None:
            return []
        decode = self._dictionary.decode
        return [decode(pid) for pid in self._spo.seconds(sid)]  # type: ignore[misc]

    def predicates_between(self, subject: Term, object: Term) -> List[IRI]:
        """Distinct predicates ``p`` with a fact ``(subject, p, object)``."""
        sid = self._dictionary.id_for(subject)
        oid = self._dictionary.id_for(object)
        if sid is None or oid is None:
            return []
        decode = self._dictionary.decode
        return [decode(pid) for pid in self._osp.thirds(oid, sid)]  # type: ignore[misc]

    def has_subject(self, subject: Term) -> bool:
        """Whether any fact has ``subject`` in subject position."""
        sid = self._dictionary.id_for(subject)
        return sid is not None and self._spo.has_key(sid)

    def entities(self) -> Set[Term]:
        """All IRIs/blank nodes appearing in subject or object position."""
        dictionary = self._dictionary
        entity_ids: Set[int] = set(self._spo.keys())
        entity_ids.update(
            oid for oid in self._osp.keys() if dictionary.is_entity_id(oid)
        )
        decode = dictionary.decode
        return {decode(tid) for tid in entity_ids}

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    def predicate_statistics(self, predicate: IRI) -> PredicateStatistics:
        """Compute statistics for one predicate from the indexes."""
        pid = self._dictionary.id_for(predicate)
        if pid is None:
            return PredicateStatistics(predicate=predicate)
        return predicate_statistics_from_index(
            self._dictionary, self._pos, predicate, pid
        )

    def statistics(self) -> StoreStatistics:
        """Compute a full statistics snapshot."""
        stats = StoreStatistics(
            triple_count=len(self),
            predicate_count=self._pos.key_count(),
            subject_count=self._spo.key_count(),
            object_count=self._osp.key_count(),
        )
        decode = self._dictionary.decode
        predicate_stats: Dict[IRI, PredicateStatistics] = {}
        for pid in self._pos.keys():
            predicate = decode(pid)
            predicate_stats[predicate] = predicate_statistics_from_index(  # type: ignore[index]
                self._dictionary, self._pos, predicate, pid  # type: ignore[arg-type]
            )
        stats.predicates = predicate_stats
        return stats

    # ------------------------------------------------------------------ #
    # Convenience constructors
    # ------------------------------------------------------------------ #
    def copy(self, name: Optional[str] = None) -> "TripleStore":
        """A deep-enough copy: terms are shared (immutable), indexes rebuilt."""
        return TripleStore(name=name or f"{self.name}-copy", triples=iter(self))
