"""The in-memory triple store.

:class:`TripleStore` is the storage substrate under every knowledge base in
this reproduction.  It maintains three permutation indexes so that any of
the eight triple-pattern shapes is answered efficiently:

========= ==========================
pattern    index used
========= ==========================
(s, p, o)  SPO (membership test)
(s, p, ?)  SPO
(s, ?, o)  OSP
(s, ?, ?)  SPO
(?, p, o)  POS
(?, p, ?)  POS
(?, ?, o)  OSP
(?, ?, ?)  full scan over SPO
========= ==========================
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set

from repro.errors import StoreError
from repro.rdf.terms import IRI, Literal, Term, is_entity_term
from repro.rdf.triple import Triple, TriplePattern
from repro.store.index import TripleIndex
from repro.store.stats import PredicateStatistics, StoreStatistics


class TripleStore:
    """A fully indexed, in-memory set of RDF triples.

    The store is a *set*: adding the same triple twice is a no-op.  All
    mutation happens through :meth:`add` / :meth:`remove` so the three
    indexes and the statistics stay consistent.

    Parameters
    ----------
    name:
        Optional human-readable name (used in ``repr`` and logs).
    triples:
        Optional initial triples to load.
    """

    def __init__(self, name: str = "store", triples: Optional[Iterable[Triple]] = None):
        self.name = name
        self._spo = TripleIndex()
        self._pos = TripleIndex()
        self._osp = TripleIndex()
        self._size = 0
        if triples is not None:
            self.add_all(triples)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, triple: Triple) -> bool:
        """Add a triple.  Returns ``True`` if the store changed."""
        if not isinstance(triple, Triple):
            raise StoreError(f"Expected a Triple, got {type(triple).__name__}")
        added = self._spo.add(triple.subject, triple.predicate, triple.object)
        if not added:
            return False
        self._pos.add(triple.predicate, triple.object, triple.subject)
        self._osp.add(triple.object, triple.subject, triple.predicate)
        self._size += 1
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Add many triples; returns the number actually inserted."""
        inserted = 0
        for triple in triples:
            if self.add(triple):
                inserted += 1
        return inserted

    def remove(self, triple: Triple) -> bool:
        """Remove a triple.  Returns ``True`` if it was present."""
        removed = self._spo.remove(triple.subject, triple.predicate, triple.object)
        if not removed:
            return False
        self._pos.remove(triple.predicate, triple.object, triple.subject)
        self._osp.remove(triple.object, triple.subject, triple.predicate)
        self._size -= 1
        return True

    def clear(self) -> None:
        """Remove every triple."""
        self._spo.clear()
        self._pos.clear()
        self._osp.clear()
        self._size = 0

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._size

    def __contains__(self, triple: object) -> bool:
        if not isinstance(triple, Triple):
            return False
        return self._spo.contains(triple.subject, triple.predicate, triple.object)

    def __iter__(self) -> Iterator[Triple]:
        for s, p, o in self._spo.triples():
            yield Triple(s, p, o)  # type: ignore[arg-type]

    def __repr__(self) -> str:
        return f"TripleStore(name={self.name!r}, size={self._size})"

    def match(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[IRI] = None,
        object: Optional[Term] = None,
    ) -> Iterator[Triple]:
        """Yield all triples matching the given (possibly wildcard) pattern.

        ``None`` in any position means "match anything".
        """
        s, p, o = subject, predicate, object
        if s is not None and p is not None and o is not None:
            if self._spo.contains(s, p, o):
                yield Triple(s, p, o)
            return
        if s is not None and p is not None:
            for obj in self._spo.thirds(s, p):
                yield Triple(s, p, obj)
            return
        if s is not None and o is not None:
            for pred in self._osp.thirds(o, s):
                yield Triple(s, pred, o)  # type: ignore[arg-type]
            return
        if s is not None:
            for pred, obj in self._spo.pairs(s):
                yield Triple(s, pred, obj)  # type: ignore[arg-type]
            return
        if p is not None and o is not None:
            for subj in self._pos.thirds(p, o):
                yield Triple(subj, p, o)
            return
        if p is not None:
            for obj, subj in self._pos.pairs(p):
                yield Triple(subj, p, obj)
            return
        if o is not None:
            for subj, pred in self._osp.pairs(o):
                yield Triple(subj, pred, o)  # type: ignore[arg-type]
            return
        yield from iter(self)

    def match_pattern(self, pattern: TriplePattern) -> Iterator[Triple]:
        """:meth:`match` taking a :class:`~repro.rdf.triple.TriplePattern`."""
        return self.match(pattern.subject, pattern.predicate, pattern.object)

    def count(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[IRI] = None,
        object: Optional[Term] = None,
    ) -> int:
        """Count matching triples without materialising them (when possible)."""
        if subject is None and predicate is None and object is None:
            return self._size
        if subject is None and object is None and predicate is not None:
            return self._pos.count_for_key(predicate)
        if predicate is None and object is None and subject is not None:
            return self._spo.count_for_key(subject)
        if subject is None and predicate is None and object is not None:
            return self._osp.count_for_key(object)
        return sum(1 for _ in self.match(subject, predicate, object))

    # ------------------------------------------------------------------ #
    # Vocabulary access
    # ------------------------------------------------------------------ #
    def predicates(self) -> List[IRI]:
        """All distinct predicates, sorted by IRI for determinism."""
        return sorted(self._pos.keys(), key=lambda p: p.value)  # type: ignore[union-attr]

    def subjects(self, predicate: Optional[IRI] = None) -> Iterator[Term]:
        """Distinct subjects, optionally restricted to one predicate."""
        if predicate is None:
            yield from self._spo.keys()
            return
        seen: Set[Term] = set()
        for obj, subj in self._pos.pairs(predicate):
            if subj not in seen:
                seen.add(subj)
                yield subj

    def objects(self, predicate: Optional[IRI] = None) -> Iterator[Term]:
        """Distinct objects, optionally restricted to one predicate."""
        if predicate is None:
            yield from self._osp.keys()
            return
        yield from self._pos.seconds(predicate)

    def objects_of(self, subject: Term, predicate: IRI) -> List[Term]:
        """All objects ``o`` such that ``(subject, predicate, o)`` is a fact."""
        return list(self._spo.thirds(subject, predicate))

    def subjects_of(self, predicate: IRI, object: Term) -> List[Term]:
        """All subjects ``s`` such that ``(s, predicate, object)`` is a fact."""
        return list(self._pos.thirds(predicate, object))

    def predicates_of(self, subject: Term) -> List[IRI]:
        """Distinct predicates appearing with ``subject`` as subject."""
        return list(self._spo.seconds(subject))  # type: ignore[arg-type]

    def predicates_between(self, subject: Term, object: Term) -> List[IRI]:
        """Distinct predicates ``p`` with a fact ``(subject, p, object)``."""
        return list(self._osp.thirds(object, subject))  # type: ignore[arg-type]

    def has_subject(self, subject: Term) -> bool:
        """Whether any fact has ``subject`` in subject position."""
        return self._spo.has_key(subject)

    def entities(self) -> Set[Term]:
        """All IRIs/blank nodes appearing in subject or object position."""
        result: Set[Term] = set()
        for subj in self._spo.keys():
            if is_entity_term(subj):
                result.add(subj)
        for obj in self._osp.keys():
            if is_entity_term(obj):
                result.add(obj)
        return result

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    def predicate_statistics(self, predicate: IRI) -> PredicateStatistics:
        """Compute statistics for one predicate from the indexes."""
        fact_count = self._pos.count_for_key(predicate)
        distinct_objects = self._pos.second_count_for_key(predicate)
        distinct_subjects = sum(1 for _ in self.subjects(predicate))
        literal_objects = sum(
            1 for obj, _ in self._pos.pairs(predicate) if isinstance(obj, Literal)
        )
        return PredicateStatistics(
            predicate=predicate,
            fact_count=fact_count,
            distinct_subjects=distinct_subjects,
            distinct_objects=distinct_objects,
            literal_object_count=literal_objects,
        )

    def statistics(self) -> StoreStatistics:
        """Compute a full statistics snapshot."""
        stats = StoreStatistics(
            triple_count=self._size,
            predicate_count=self._pos.key_count(),
            subject_count=self._spo.key_count(),
            object_count=self._osp.key_count(),
        )
        predicate_stats: Dict[IRI, PredicateStatistics] = {}
        for predicate in self._pos.keys():
            predicate_stats[predicate] = self.predicate_statistics(predicate)  # type: ignore[index]
        stats.predicates = predicate_stats
        return stats

    # ------------------------------------------------------------------ #
    # Convenience constructors
    # ------------------------------------------------------------------ #
    def copy(self, name: Optional[str] = None) -> "TripleStore":
        """A deep-enough copy: terms are shared (immutable), indexes rebuilt."""
        return TripleStore(name=name or f"{self.name}-copy", triples=iter(self))
