"""A simplified PARIS-style probabilistic relation aligner.

PARIS (Suchanek, Abiteboul, Senellart; PVLDB 2011 — reference [7] of the
paper) aligns relations by estimating ``P(r(x,y) | r′(x,y))`` over linked
instances, weighting evidence by relation functionality.  This module
implements the relation-alignment part of that idea over full snapshots:
it is another "you must download everything" comparison point for the
on-the-fly approach.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.sameas import SameAsIndex
from repro.rdf.namespace import SAME_AS
from repro.rdf.terms import IRI, Literal, Term, is_entity_term
from repro.similarity.literal_match import LiteralMatcher


@dataclass(frozen=True)
class ParisScore:
    """A scored relation pair.

    ``probability`` estimates ``P(conclusion(x, y) | premise(x, y))`` over
    the linked part of the data, smoothed by the conclusion relation's
    (inverse) functionality so that huge, unspecific relations do not win
    by sheer size — the spirit of PARIS's functionality weighting.
    """

    premise: IRI
    conclusion: IRI
    probability: float
    overlap: int
    premise_size: int


class ParisLikeAligner:
    """Functionality-weighted overlap alignment over full snapshots."""

    def __init__(
        self,
        premise_kb: KnowledgeBase,
        conclusion_kb: KnowledgeBase,
        links: SameAsIndex,
        literal_matcher: Optional[LiteralMatcher] = None,
        smoothing: float = 1.0,
    ):
        self.premise_kb = premise_kb
        self.conclusion_kb = conclusion_kb
        self.links = links
        self.literal_matcher = literal_matcher or LiteralMatcher()
        self.smoothing = max(0.0, smoothing)

    # ------------------------------------------------------------------ #
    def align(self, min_overlap: int = 1) -> List[ParisScore]:
        """Score every premise relation against every conclusion relation."""
        conclusion_pairs = self._translated_pair_index()
        functionality = {
            info.iri: max(info.functionality, 0.05)
            for info in self.conclusion_kb.relations()
        }

        scores: List[ParisScore] = []
        for info in self.premise_kb.relations():
            premise = info.iri
            premise_pairs = list(self._premise_pairs(premise))
            if not premise_pairs:
                continue
            overlap_by_conclusion: Dict[IRI, int] = {}
            for subject, obj in premise_pairs:
                for conclusion in conclusion_pairs.get(subject, {}):
                    if self._matches(obj, conclusion_pairs[subject][conclusion]):
                        overlap_by_conclusion[conclusion] = (
                            overlap_by_conclusion.get(conclusion, 0) + 1
                        )
            for conclusion, overlap in overlap_by_conclusion.items():
                if overlap < min_overlap:
                    continue
                weight = functionality.get(conclusion, 0.05)
                probability = (overlap * weight) / (len(premise_pairs) * weight + self.smoothing)
                scores.append(
                    ParisScore(
                        premise=premise,
                        conclusion=conclusion,
                        probability=probability,
                        overlap=overlap,
                        premise_size=len(premise_pairs),
                    )
                )
        scores.sort(key=lambda score: (-score.probability, score.premise.value))
        return scores

    def accepted(self, threshold: float, min_overlap: int = 1) -> Set[Tuple[IRI, IRI]]:
        """Accepted ``(premise, conclusion)`` pairs at a probability threshold."""
        return {
            (score.premise, score.conclusion)
            for score in self.align(min_overlap=min_overlap)
            if score.probability > threshold
        }

    # ------------------------------------------------------------------ #
    def _premise_pairs(self, premise: IRI):
        namespace = self.conclusion_kb.namespace
        for triple in self.premise_kb.store.match(predicate=premise):
            subject = self.links.translate(triple.subject, namespace)
            if subject is None:
                continue
            obj = triple.object
            if is_entity_term(obj):
                translated = self.links.translate(obj, namespace)
                if translated is None:
                    continue
                yield subject, translated
            else:
                yield subject, obj

    def _translated_pair_index(self) -> Dict[Term, Dict[IRI, List[Term]]]:
        index: Dict[Term, Dict[IRI, List[Term]]] = {}
        for triple in self.conclusion_kb.store:
            if triple.predicate == SAME_AS:
                continue
            by_relation = index.setdefault(triple.subject, {})
            by_relation.setdefault(triple.predicate, []).append(triple.object)
        return index

    def _matches(self, obj: Term, candidates: List[Term]) -> bool:
        for candidate in candidates:
            if obj == candidate:
                return True
            if isinstance(obj, Literal) and isinstance(candidate, Literal):
                if self.literal_matcher.matches(obj, candidate):
                    return True
        return False
