"""Exhaustive full-snapshot rule mining (AMIE-style batch baseline).

Unlike SOFYA, this miner assumes it has both complete dumps in memory.  It
computes the exact CWA and PCA confidences of every candidate subsumption
by scanning every fact of every relation, translated through the ``sameAs``
set.  It produces the best-possible instance-based scores — at the cost of
touching every triple, which is precisely what the paper argues is
impractical at query time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.sameas import SameAsIndex
from repro.rdf.namespace import SAME_AS
from repro.rdf.terms import IRI, Literal, Term, is_entity_term
from repro.similarity.literal_match import LiteralMatcher
from repro.align.confidence import cwa_confidence, pca_confidence


@dataclass(frozen=True)
class SnapshotRule:
    """A subsumption scored over the full snapshots."""

    premise: IRI
    conclusion: IRI
    support: int
    premise_pairs: int
    pca_body_pairs: int

    @property
    def cwa(self) -> float:
        """Exact closed-world confidence."""
        return cwa_confidence(self.support, self.premise_pairs)

    @property
    def pca(self) -> float:
        """Exact partial-completeness confidence."""
        return pca_confidence(self.support, self.pca_body_pairs)

    def confidence(self, measure: str) -> float:
        """Confidence under the requested measure name."""
        return self.pca if measure == "pca" else self.cwa


class FullSnapshotMiner:
    """Scores every premise-KB relation against every conclusion-KB relation.

    Parameters
    ----------
    premise_kb:
        The KB whose relations form rule premises (``K′``).
    conclusion_kb:
        The KB whose relations form rule conclusions (``K``).
    links:
        The ``sameAs`` equivalence set between the two KBs.
    literal_matcher:
        Matcher used to compare literal objects.
    min_support:
        Candidate pairs with fewer shared facts are not reported.
    """

    def __init__(
        self,
        premise_kb: KnowledgeBase,
        conclusion_kb: KnowledgeBase,
        links: SameAsIndex,
        literal_matcher: Optional[LiteralMatcher] = None,
        min_support: int = 1,
    ):
        self.premise_kb = premise_kb
        self.conclusion_kb = conclusion_kb
        self.links = links
        self.literal_matcher = literal_matcher or LiteralMatcher()
        self.min_support = min_support
        #: Number of triples scanned by the last :meth:`mine` call.
        self.triples_scanned = 0

    # ------------------------------------------------------------------ #
    def mine(
        self, conclusion_relations: Optional[List[IRI]] = None
    ) -> List[SnapshotRule]:
        """Mine all subsumption rules toward the given conclusion relations.

        When ``conclusion_relations`` is omitted, every relation of the
        conclusion KB is considered.
        """
        self.triples_scanned = 0
        conclusion_index = self._index_conclusion(conclusion_relations)
        rules: List[SnapshotRule] = []
        for premise_info in self.premise_kb.relations():
            premise = premise_info.iri
            counters = self._score_premise(premise, conclusion_index)
            for conclusion, (support, premise_pairs, pca_pairs) in counters.items():
                if support < self.min_support:
                    continue
                rules.append(
                    SnapshotRule(
                        premise=premise,
                        conclusion=conclusion,
                        support=support,
                        premise_pairs=premise_pairs,
                        pca_body_pairs=pca_pairs,
                    )
                )
        rules.sort(key=lambda rule: (-rule.pca, -rule.support, rule.premise.value))
        return rules

    def accepted(
        self, measure: str, threshold: float, conclusion_relations: Optional[List[IRI]] = None
    ) -> Set[Tuple[IRI, IRI]]:
        """The ``(premise, conclusion)`` pairs accepted at a threshold."""
        return {
            (rule.premise, rule.conclusion)
            for rule in self.mine(conclusion_relations)
            if rule.confidence(measure) > threshold
        }

    # ------------------------------------------------------------------ #
    def _index_conclusion(
        self, conclusion_relations: Optional[List[IRI]]
    ) -> Dict[IRI, Dict[Term, List[Term]]]:
        """Index conclusion facts as relation → subject → objects."""
        wanted = set(conclusion_relations) if conclusion_relations is not None else None
        index: Dict[IRI, Dict[Term, List[Term]]] = {}
        for triple in self.conclusion_kb.store:
            self.triples_scanned += 1
            if triple.predicate == SAME_AS:
                continue
            if wanted is not None and triple.predicate not in wanted:
                continue
            by_subject = index.setdefault(triple.predicate, {})
            by_subject.setdefault(triple.subject, []).append(triple.object)
        return index

    def _score_premise(
        self, premise: IRI, conclusion_index: Dict[IRI, Dict[Term, List[Term]]]
    ) -> Dict[IRI, Tuple[int, int, int]]:
        """Count support / denominators of ``premise ⇒ c`` for every ``c``."""
        counters: Dict[IRI, List[int]] = {
            conclusion: [0, 0, 0] for conclusion in conclusion_index
        }
        namespace = self.conclusion_kb.namespace
        for triple in self.premise_kb.store.match(predicate=premise):
            self.triples_scanned += 1
            subject = self.links.translate(triple.subject, namespace)
            if subject is None:
                continue
            obj = triple.object
            if is_entity_term(obj):
                translated: Optional[Term] = self.links.translate(obj, namespace)
                if translated is None:
                    continue
            else:
                translated = obj
            for conclusion, by_subject in conclusion_index.items():
                counts = counters[conclusion]
                counts[1] += 1
                conclusion_objects = by_subject.get(subject)
                if not conclusion_objects:
                    continue
                counts[2] += 1
                if self._object_matches(translated, conclusion_objects):
                    counts[0] += 1
        return {
            conclusion: (counts[0], counts[1], counts[2])
            for conclusion, counts in counters.items()
        }

    def _object_matches(self, obj: Term, candidates: List[Term]) -> bool:
        for candidate in candidates:
            if obj == candidate:
                return True
            if isinstance(obj, Literal) and isinstance(candidate, Literal):
                if self.literal_matcher.matches(obj, candidate):
                    return True
        return False
