"""Comparison baselines.

The paper motivates SOFYA against approaches that align relations over the
*entire* KB snapshot ([3, 7, 9] in its references).  Two such baselines are
implemented here so the benchmark harness can quantify the trade-off the
introduction describes (result quality vs. the cost of downloading and
scanning whole dumps):

* :class:`~repro.baselines.full_snapshot.FullSnapshotMiner` — exhaustive
  CWA/PCA rule mining over complete KB dumps (an AMIE-style batch miner).
* :class:`~repro.baselines.paris_like.ParisLikeAligner` — a simplified
  PARIS-style probabilistic relation aligner based on functionality-weighted
  overlap of full relation extensions.
"""

from repro.baselines.full_snapshot import FullSnapshotMiner, SnapshotRule
from repro.baselines.paris_like import ParisLikeAligner, ParisScore

__all__ = [
    "FullSnapshotMiner",
    "SnapshotRule",
    "ParisLikeAligner",
    "ParisScore",
]
