"""Evaluation harness: metrics, threshold selection, experiments, tables.

This package turns alignment runs into the numbers the paper reports:
precision and F1 of the accepted subsumptions against a gold standard, per
direction, with the acceptance threshold τ chosen to maximise the average
F1 over both directions (the paper's protocol for Table 1).
"""

from repro.evaluation.metrics import PrecisionRecallF1, confusion_counts, precision_recall_f1
from repro.evaluation.thresholds import ThresholdSelection, select_best_threshold
from repro.evaluation.tables import TextTable
from repro.evaluation.experiment import (
    AlignmentExperiment,
    DirectionResult,
    MethodResult,
    Table1Report,
    run_table1_experiment,
)

__all__ = [
    "PrecisionRecallF1",
    "precision_recall_f1",
    "confusion_counts",
    "ThresholdSelection",
    "select_best_threshold",
    "TextTable",
    "AlignmentExperiment",
    "DirectionResult",
    "MethodResult",
    "Table1Report",
    "run_table1_experiment",
]
