"""The experiment runner behind the benchmark harness.

:class:`AlignmentExperiment` wires a generated world to the aligner:

* it picks the query relations for a direction (the gold conclusion
  relations plus a configurable number of unaligned "distractor" relations,
  so false positives are possible),
* builds fresh endpoints per run so query accounting is comparable,
* runs the aligner and evaluates the accepted rules against the gold
  standard,
* and, for the Table 1 reproduction, runs the three methods of the paper
  (SSE+pca, SSE+cwa, UBS+pca) in both directions with the paper's τ
  selection protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.endpoint.policy import AccessPolicy
from repro.rdf.terms import IRI
from repro.align.aligner import RemoteDataset, SofyaAligner
from repro.align.config import AlignmentConfig
from repro.align.result import AlignmentResult
from repro.evaluation.metrics import PrecisionRecallF1, precision_recall_f1
from repro.evaluation.tables import TextTable
from repro.evaluation.thresholds import DEFAULT_GRID, select_best_threshold
from repro.synthetic.generator import GeneratedWorld


@dataclass
class DirectionResult:
    """One direction of one method: the raw result plus its evaluation."""

    direction: str
    result: AlignmentResult
    gold: Set[Tuple[IRI, IRI]]
    metrics: PrecisionRecallF1
    threshold: float

    @property
    def precision(self) -> float:
        """Precision of the accepted rules."""
        return self.metrics.precision

    @property
    def f1(self) -> float:
        """F1 of the accepted rules."""
        return self.metrics.f1


@dataclass
class MethodResult:
    """Both directions for one method row of Table 1."""

    method: str
    measure: str
    threshold: float
    directions: Dict[str, DirectionResult] = field(default_factory=dict)

    def direction(self, label: str) -> DirectionResult:
        """Look up one direction by its label (e.g. ``"yago ⊂ dbpedia"``)."""
        return self.directions[label]

    def average_f1(self) -> float:
        """Average F1 over the directions (the paper's τ-selection target)."""
        if not self.directions:
            return 0.0
        return sum(d.f1 for d in self.directions.values()) / len(self.directions)


@dataclass
class Table1Report:
    """The full reproduction of the paper's Table 1."""

    methods: List[MethodResult] = field(default_factory=list)
    sample_size: int = 10

    def to_table(self) -> TextTable:
        """Render in the shape of the paper's Table 1 (P and F1 per direction)."""
        directions = sorted(
            {label for method in self.methods for label in method.directions}
        )
        columns = ["method", "measure", "tau"]
        for direction in directions:
            columns.extend([f"P ({direction})", f"F1 ({direction})"])
        table = TextTable(columns, title="Table 1: Alignment subsumptions")
        for method in self.methods:
            cells: List[object] = [method.method, method.measure, method.threshold]
            for direction in directions:
                if direction in method.directions:
                    entry = method.directions[direction]
                    cells.extend([entry.precision, entry.f1])
                else:
                    cells.extend(["-", "-"])
            table.add_row(*cells)
        return table

    def method(self, name: str) -> MethodResult:
        """Look up a method row by name (``"pca"``, ``"cwa"``, ``"ubs"``)."""
        for method in self.methods:
            if method.method == name:
                return method
        raise KeyError(f"No method named {name!r} in this report")


class AlignmentExperiment:
    """Runs alignment + evaluation over one generated world."""

    def __init__(
        self,
        world: GeneratedWorld,
        policy: Optional[AccessPolicy] = None,
        distractor_relations: int = 5,
        max_query_relations: Optional[int] = None,
    ):
        self.world = world
        self.policy = policy
        self.distractor_relations = distractor_relations
        self.max_query_relations = max_query_relations

    # ------------------------------------------------------------------ #
    # Direction plumbing
    # ------------------------------------------------------------------ #
    def direction_label(self, premise_kb: str, conclusion_kb: str) -> str:
        """Table-1 style label ``"premise ⊂ conclusion"``."""
        return f"{premise_kb} ⊂ {conclusion_kb}"

    def gold_pairs(self, premise_kb: str, conclusion_kb: str) -> Set[Tuple[IRI, IRI]]:
        """Gold subsumption pairs for a direction."""
        return self.world.ground_truth.subsumption_pairs(premise_kb, conclusion_kb)

    def query_relations(self, premise_kb: str, conclusion_kb: str) -> List[IRI]:
        """The conclusion-KB relations to align in a direction.

        All gold conclusion relations, plus ``distractor_relations``
        aligned-to-nothing relations of the conclusion KB (so spurious
        acceptances show up as false positives), capped at
        ``max_query_relations``.
        """
        truth = self.world.ground_truth
        gold_conclusions = sorted(
            truth.conclusion_relations(premise_kb, conclusion_kb), key=lambda iri: iri.value
        )
        conclusion_kb_object = self.world.kb(conclusion_kb)
        gold_set = set(gold_conclusions)
        distractors: List[IRI] = []
        # Conclusion-KB relations that are aligned in *neither* direction.
        other_direction = truth.conclusion_relations(conclusion_kb, premise_kb)
        for info in conclusion_kb_object.relations():
            if len(distractors) >= self.distractor_relations:
                break
            if info.iri in gold_set or info.iri in other_direction:
                continue
            if truth.premise_relations(conclusion_kb, premise_kb) and info.iri in truth.premise_relations(
                conclusion_kb, premise_kb
            ):
                continue
            distractors.append(info.iri)
        relations = gold_conclusions + distractors
        if self.max_query_relations is not None:
            relations = relations[: self.max_query_relations]
        return relations

    def build_aligner(
        self, premise_kb: str, conclusion_kb: str, config: AlignmentConfig
    ) -> SofyaAligner:
        """A fresh aligner (fresh endpoints, fresh accounting) for a direction."""
        source = RemoteDataset.from_kb(self.world.kb(conclusion_kb), policy=self.policy)
        target = RemoteDataset.from_kb(self.world.kb(premise_kb), policy=self.policy)
        return SofyaAligner(
            source=source, target=target, links=self.world.links, config=config
        )

    # ------------------------------------------------------------------ #
    # Running
    # ------------------------------------------------------------------ #
    def run_direction(
        self,
        premise_kb: str,
        conclusion_kb: str,
        config: AlignmentConfig,
        query_relations: Optional[Sequence[IRI]] = None,
    ) -> AlignmentResult:
        """Align all query relations of one direction with one configuration."""
        aligner = self.build_aligner(premise_kb, conclusion_kb, config)
        relations = (
            list(query_relations)
            if query_relations is not None
            else self.query_relations(premise_kb, conclusion_kb)
        )
        return aligner.align_relations(relations)

    def evaluate_direction(
        self,
        premise_kb: str,
        conclusion_kb: str,
        result: AlignmentResult,
        threshold: Optional[float] = None,
    ) -> DirectionResult:
        """Evaluate a direction's result against the gold standard."""
        gold = self.gold_pairs(premise_kb, conclusion_kb)
        effective_threshold = (
            threshold if threshold is not None else result.config.confidence_threshold
        )
        predicted = result.predicted_pairs(threshold=effective_threshold)
        metrics = precision_recall_f1(predicted, gold)
        return DirectionResult(
            direction=self.direction_label(premise_kb, conclusion_kb),
            result=result,
            gold=gold,
            metrics=metrics,
            threshold=effective_threshold,
        )

    def run_method(
        self,
        method_name: str,
        config: AlignmentConfig,
        select_threshold: bool = True,
        threshold_grid: Sequence[float] = DEFAULT_GRID,
    ) -> MethodResult:
        """Run one method in both directions with the paper's τ protocol."""
        first, second = self.world.names()
        directions = [(first, second), (second, first)]

        results: List[AlignmentResult] = []
        golds: List[Set[Tuple[IRI, IRI]]] = []
        for premise_kb, conclusion_kb in directions:
            result = self.run_direction(premise_kb, conclusion_kb, config)
            results.append(result)
            golds.append(self.gold_pairs(premise_kb, conclusion_kb))

        if select_threshold:
            selection = select_best_threshold(results, golds, grid=threshold_grid)
            threshold = selection.threshold
        else:
            threshold = config.confidence_threshold

        method = MethodResult(
            method=method_name, measure=config.confidence_measure, threshold=threshold
        )
        for (premise_kb, conclusion_kb), result in zip(directions, results):
            method.directions[self.direction_label(premise_kb, conclusion_kb)] = (
                self.evaluate_direction(premise_kb, conclusion_kb, result, threshold)
            )
        return method


def run_table1_experiment(
    world: GeneratedWorld,
    sample_size: int = 10,
    policy: Optional[AccessPolicy] = None,
    select_threshold: bool = True,
    distractor_relations: int = 5,
    max_query_relations: Optional[int] = None,
) -> Table1Report:
    """Reproduce the paper's Table 1 on a generated world.

    Runs the three methods of the paper — SSE + pca_conf, SSE + cwa_conf and
    UBS + pca_conf — in both directions at the given sample size, choosing
    each method's τ to maximise the average F1 over the two directions
    (unless ``select_threshold`` is disabled, in which case the paper's
    published thresholds are used as-is).
    """
    experiment = AlignmentExperiment(
        world,
        policy=policy,
        distractor_relations=distractor_relations,
        max_query_relations=max_query_relations,
    )
    report = Table1Report(sample_size=sample_size)
    report.methods.append(
        experiment.run_method(
            "pca", AlignmentConfig.paper_pca_baseline(sample_size), select_threshold
        )
    )
    report.methods.append(
        experiment.run_method(
            "cwa", AlignmentConfig.paper_cwa_baseline(sample_size), select_threshold
        )
    )
    report.methods.append(
        experiment.run_method("ubs", AlignmentConfig.paper_ubs(sample_size), select_threshold)
    )
    return report
