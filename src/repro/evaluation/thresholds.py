"""Threshold (τ) selection.

The paper reports, for each confidence measure, the threshold "that led to
the highest average F1 score for both ways implications".  Because the
aligner returns *scored* candidates, the sweep is a cheap post-processing
step over a grid of thresholds; no endpoint queries are repeated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.rdf.terms import IRI
from repro.align.result import AlignmentResult
from repro.evaluation.metrics import PrecisionRecallF1, precision_recall_f1

#: Default τ grid: 0.0 to 0.95 in steps of 0.05.
DEFAULT_GRID: Tuple[float, ...] = tuple(round(i * 0.05, 2) for i in range(20))


@dataclass(frozen=True)
class ThresholdSelection:
    """The outcome of a threshold sweep."""

    threshold: float
    average_f1: float
    per_direction: Dict[str, PrecisionRecallF1]
    sweep: Dict[float, float]

    def __str__(self) -> str:
        return f"τ > {self.threshold} (avg F1 = {self.average_f1:.3f})"


def evaluate_at_threshold(
    result: AlignmentResult,
    gold_pairs: Set[Tuple[IRI, IRI]],
    threshold: float,
    min_support: Optional[int] = None,
) -> PrecisionRecallF1:
    """Precision/recall/F1 of one direction's result at a given threshold."""
    predicted = result.predicted_pairs(threshold=threshold, min_support=min_support)
    return precision_recall_f1(predicted, gold_pairs)


def select_best_threshold(
    results: Sequence[AlignmentResult],
    golds: Sequence[Set[Tuple[IRI, IRI]]],
    grid: Iterable[float] = DEFAULT_GRID,
    min_support: Optional[int] = None,
) -> ThresholdSelection:
    """Pick the τ maximising the average F1 over several directions.

    Parameters
    ----------
    results:
        One :class:`~repro.align.result.AlignmentResult` per direction.
    golds:
        The gold pair set for each direction, in the same order.
    grid:
        The thresholds to try.
    min_support:
        Optional support floor applied at every threshold.

    Ties are broken toward the *larger* threshold (more conservative rules).
    """
    if len(results) != len(golds):
        raise ValueError("results and golds must have the same length")

    sweep: Dict[float, float] = {}
    best_threshold: Optional[float] = None
    best_average = -1.0
    best_reports: Dict[str, PrecisionRecallF1] = {}

    for threshold in sorted(set(grid)):
        reports = {
            result.direction: evaluate_at_threshold(result, gold, threshold, min_support)
            for result, gold in zip(results, golds)
        }
        average_f1 = sum(report.f1 for report in reports.values()) / max(len(reports), 1)
        sweep[threshold] = average_f1
        if average_f1 >= best_average:
            best_average = average_f1
            best_threshold = threshold
            best_reports = reports

    assert best_threshold is not None
    return ThresholdSelection(
        threshold=best_threshold,
        average_f1=best_average,
        per_direction=best_reports,
        sweep=sweep,
    )
