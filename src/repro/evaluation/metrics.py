"""Precision / recall / F1 over sets of predicted alignment pairs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set, Tuple, TypeVar

Pair = TypeVar("Pair")


@dataclass(frozen=True)
class PrecisionRecallF1:
    """A precision/recall/F1 triple with the underlying counts."""

    precision: float
    recall: float
    f1: float
    true_positives: int
    false_positives: int
    false_negatives: int

    def as_row(self) -> Tuple[float, float, float]:
        """``(P, R, F1)`` rounded to three decimals (for tables)."""
        return (round(self.precision, 3), round(self.recall, 3), round(self.f1, 3))

    def __str__(self) -> str:
        return (
            f"P={self.precision:.3f} R={self.recall:.3f} F1={self.f1:.3f} "
            f"(tp={self.true_positives}, fp={self.false_positives}, fn={self.false_negatives})"
        )


def confusion_counts(predicted: Set[Pair], gold: Set[Pair]) -> Tuple[int, int, int]:
    """``(true positives, false positives, false negatives)``."""
    true_positives = len(predicted & gold)
    false_positives = len(predicted - gold)
    false_negatives = len(gold - predicted)
    return true_positives, false_positives, false_negatives


def precision_recall_f1(predicted: Set[Pair], gold: Set[Pair]) -> PrecisionRecallF1:
    """Compute precision, recall and F1 of predicted pairs against the gold set.

    Conventions for empty sets: with no predictions, precision is 1.0 when
    the gold set is also empty and 0.0 otherwise; recall is 1.0 when the
    gold set is empty.
    """
    true_positives, false_positives, false_negatives = confusion_counts(predicted, gold)

    if not predicted:
        precision = 1.0 if not gold else 0.0
    else:
        precision = true_positives / len(predicted)

    if not gold:
        recall = 1.0
    else:
        recall = true_positives / len(gold)

    if precision + recall == 0.0:
        f1 = 0.0
    else:
        f1 = 2 * precision * recall / (precision + recall)

    return PrecisionRecallF1(
        precision=precision,
        recall=recall,
        f1=f1,
        true_positives=true_positives,
        false_positives=false_positives,
        false_negatives=false_negatives,
    )
