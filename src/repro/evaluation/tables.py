"""Plain-text table rendering for benchmark reports."""

from __future__ import annotations

from typing import List, Optional, Sequence


class TextTable:
    """A small fixed-width table builder.

    Used by the benchmark harness to print the reproduction of the paper's
    Table 1 (and the extension tables) in a shape directly comparable to
    the published numbers.
    """

    def __init__(self, columns: Sequence[str], title: Optional[str] = None):
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: object) -> None:
        """Append a row; cells are converted with ``str`` (floats get 2 decimals)."""
        if len(cells) != len(self.columns):
            raise ValueError(
                f"Expected {len(self.columns)} cells, got {len(cells)}"
            )
        rendered = []
        for cell in cells:
            if isinstance(cell, float):
                rendered.append(f"{cell:.2f}")
            else:
                rendered.append(str(cell))
        self.rows.append(rendered)

    def add_separator(self) -> None:
        """Append a horizontal separator row."""
        self.rows.append(["---"] * len(self.columns))

    def render(self) -> str:
        """Render the table as aligned plain text."""
        widths = [len(column) for column in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def format_row(cells: Sequence[str]) -> str:
            return " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

        separator = "-+-".join("-" * width for width in widths)
        lines: List[str] = []
        if self.title:
            lines.append(self.title)
            lines.append("=" * len(self.title))
        lines.append(format_row(self.columns))
        lines.append(separator)
        for row in self.rows:
            if all(cell == "---" for cell in row):
                lines.append(separator)
            else:
                lines.append(format_row(row))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
