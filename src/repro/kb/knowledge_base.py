"""The :class:`KnowledgeBase` facade."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Union

from repro.endpoint.client import EndpointClient
from repro.endpoint.endpoint import SparqlEndpoint
from repro.endpoint.policy import AccessPolicy
from repro.errors import SnapshotCorruptError, StoreError
from repro.rdf.namespace import Namespace, SAME_AS
from repro.rdf.terms import IRI, Term
from repro.rdf.triple import Triple
from repro.kb.relation import RelationInfo, RelationKind
from repro.shard.sharded_store import ShardedTripleStore
from repro.sparql.scatter import ShardedQueryEvaluator
from repro.store.triplestore import TripleStore


class KnowledgeBase:
    """A named dataset: triple store + entity namespace + relation catalogue.

    The class is used in two roles:

    * by the *synthetic data generator* and the *examples* to build and
      inspect datasets locally;
    * by the *experiments* to mint SPARQL endpoints (:meth:`endpoint`)
      which are then the only thing the aligner sees.

    Parameters
    ----------
    name:
        Dataset name, e.g. ``"yago"`` or ``"dbpedia"``.
    namespace:
        The namespace in which the KB's entities and relations are minted.
    store:
        Optional pre-populated store; a fresh empty one by default.
    """

    def __init__(
        self,
        name: str,
        namespace: Namespace,
        store: Optional[TripleStore] = None,
    ):
        self.name = name
        self.namespace = namespace
        self.store = store if store is not None else TripleStore(name=name)
        self._relation_cache: Optional[Dict[IRI, RelationInfo]] = None

    def __repr__(self) -> str:
        return f"KnowledgeBase(name={self.name!r}, triples={len(self.store)})"

    def __len__(self) -> int:
        return len(self.store)

    # ------------------------------------------------------------------ #
    # Snapshot persistence
    # ------------------------------------------------------------------ #
    def save(self, directory: Union[str, Path]) -> None:
        """Persist the KB as a snapshot directory.

        Writes ``kb.json`` (name + namespace + store layout) next to the
        store snapshot: a single ``store.snap`` file for a plain
        :class:`TripleStore`, or a ``store/`` sharded snapshot directory
        for a :class:`~repro.shard.ShardedTripleStore`.  Reopen with
        :meth:`KnowledgeBase.open`.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        sharded = isinstance(self.store, ShardedTripleStore)
        if sharded:
            self.store.save(directory / "store")
        else:
            self.store.save(directory / "store.snap")
        meta = {
            "format": "repro-kb",
            "version": 1,
            "name": self.name,
            "namespace": self.namespace.base,
            "sharded": sharded,
            "store": "store" if sharded else "store.snap",
        }
        (directory / "kb.json").write_text(
            json.dumps(meta, sort_keys=True, indent=2) + "\n", encoding="utf-8"
        )

    @classmethod
    def open(
        cls,
        directory: Union[str, Path],
        mmap: bool = True,
        verify: bool = True,
    ) -> "KnowledgeBase":
        """Reopen a KB snapshot written by :meth:`save`.

        The store comes back cold (mmap-backed by default): queries,
        endpoints and the relation catalogue work immediately without a
        rebuild, and the first mutation promotes the store transparently.
        """
        directory = Path(directory)
        try:
            meta = json.loads((directory / "kb.json").read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise
        except (json.JSONDecodeError, UnicodeDecodeError, OSError) as error:
            raise SnapshotCorruptError(f"KB metadata unparsable: {error}") from None
        if not isinstance(meta, dict) or meta.get("format") != "repro-kb":
            raise SnapshotCorruptError("Not a KB snapshot directory")
        if meta.get("version") != 1:
            raise SnapshotCorruptError(
                f"Unsupported KB snapshot version: {meta.get('version')!r}"
            )
        namespace = meta.get("namespace")
        if not isinstance(namespace, str) or not namespace:
            raise SnapshotCorruptError("KB metadata has no namespace")
        store_path = directory / meta.get("store", "store.snap")
        if meta.get("sharded"):
            store: TripleStore = ShardedTripleStore.open(
                store_path, mmap=mmap, verify=verify
            )
        else:
            store = TripleStore.open(store_path, mmap=mmap, verify=verify)
        return cls(
            name=meta.get("name", "kb"),
            namespace=Namespace(namespace),
            store=store,
        )

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    def entity(self, local_name: str) -> IRI:
        """Mint an entity IRI in this KB's namespace."""
        return self.namespace.term(local_name)

    def relation(self, local_name: str) -> IRI:
        """Mint a relation IRI in this KB's namespace."""
        return self.namespace.term(local_name)

    def add_fact(self, subject: Term, predicate: IRI, obj: Term) -> bool:
        """Add one fact; returns whether the store changed."""
        self._relation_cache = None
        return self.store.add(Triple(subject, predicate, obj))

    def add_triples(self, triples: Iterable[Triple]) -> int:
        """Bulk-add triples (columnar fast path); returns the number inserted."""
        self._relation_cache = None
        return self.store.bulk_load(triples)

    def add_same_as(self, local_entity: Term, remote_entity: Term) -> bool:
        """Record an ``owl:sameAs`` link from one of this KB's entities."""
        return self.add_fact(local_entity, SAME_AS, remote_entity)

    # ------------------------------------------------------------------ #
    # Relation catalogue
    # ------------------------------------------------------------------ #
    def relations(self, include_same_as: bool = False) -> List[RelationInfo]:
        """The KB's relation catalogue, computed from the store.

        ``owl:sameAs`` is excluded by default because it is an inter-KB
        linking predicate, not a domain relation to be aligned.
        """
        catalogue = self._relation_catalogue()
        relations = list(catalogue.values())
        if not include_same_as:
            relations = [info for info in relations if info.iri != SAME_AS]
        return sorted(relations, key=lambda info: info.iri.value)

    def relation_info(self, relation: IRI) -> RelationInfo:
        """Catalogue entry for one relation.

        Raises
        ------
        StoreError
            If the relation has no facts in this KB.
        """
        catalogue = self._relation_catalogue()
        try:
            return catalogue[relation]
        except KeyError:
            raise StoreError(f"KB {self.name!r} has no facts for relation {relation}") from None

    def has_relation(self, relation: IRI) -> bool:
        """Whether the KB contains at least one fact of ``relation``."""
        return relation in self._relation_catalogue()

    def relation_count(self) -> int:
        """Number of distinct domain relations (excludes ``owl:sameAs``)."""
        return len(self.relations())

    def _relation_catalogue(self) -> Dict[IRI, RelationInfo]:
        if self._relation_cache is None:
            catalogue: Dict[IRI, RelationInfo] = {}
            statistics = self.store.statistics()
            for predicate, stats in statistics.predicates.items():
                kind = (
                    RelationKind.ENTITY_LITERAL
                    if stats.is_literal_valued
                    else RelationKind.ENTITY_ENTITY
                )
                catalogue[predicate] = RelationInfo(
                    iri=predicate,
                    kind=kind,
                    fact_count=stats.fact_count,
                    functionality=stats.functionality,
                )
            self._relation_cache = catalogue
        return self._relation_cache

    # ------------------------------------------------------------------ #
    # Entity helpers
    # ------------------------------------------------------------------ #
    def contains_entity(self, entity: Term) -> bool:
        """Whether the entity occurs in subject or object position."""
        if self.store.has_subject(entity):
            return True
        return any(True for _ in self.store.match(object=entity))

    def entities(self) -> Iterator[Term]:
        """All entities of the KB (IRIs and blank nodes)."""
        return iter(self.store.entities())

    def same_as_links(self) -> Iterator[Triple]:
        """All ``owl:sameAs`` triples stored in this KB."""
        return self.store.match(predicate=SAME_AS)

    # ------------------------------------------------------------------ #
    # Endpoint views
    # ------------------------------------------------------------------ #
    def endpoint(
        self, policy: Optional[AccessPolicy] = None, name: Optional[str] = None
    ) -> SparqlEndpoint:
        """Expose the KB as a SPARQL endpoint with the given access policy.

        A KB backed by a :class:`~repro.shard.ShardedTripleStore` is
        served through the scatter/gather evaluator automatically.
        """
        factory = (
            ShardedQueryEvaluator
            if isinstance(self.store, ShardedTripleStore)
            else None
        )
        return SparqlEndpoint(
            self.store,
            name=name or f"{self.name}-endpoint",
            policy=policy,
            evaluator_factory=factory,
        )

    def client(
        self, policy: Optional[AccessPolicy] = None, name: Optional[str] = None
    ) -> EndpointClient:
        """Shortcut for ``EndpointClient(self.endpoint(policy))``."""
        return EndpointClient(self.endpoint(policy=policy, name=name))
