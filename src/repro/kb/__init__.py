"""Knowledge-base level abstractions.

A :class:`KnowledgeBase` bundles a triple store with dataset metadata (its
name, entity namespace, relation catalogue) and knows how to expose itself
as a :class:`~repro.endpoint.SparqlEndpoint` — which is the only interface
the alignment layer is allowed to use, per the paper's on-the-fly setting.

A :class:`SameAsIndex` is the set ``E`` of ``owl:sameAs`` entity
equivalences between two KBs, implemented as a union-find so that chains of
links are handled transitively.
"""

from repro.kb.relation import RelationInfo, RelationKind
from repro.kb.sameas import SameAsIndex
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.catalog import KBCatalog, LinkedPair

__all__ = [
    "KnowledgeBase",
    "RelationInfo",
    "RelationKind",
    "SameAsIndex",
    "KBCatalog",
    "LinkedPair",
]
