"""Multi-KB catalog.

A :class:`KBCatalog` keeps several knowledge bases plus the entity-link
sets between pairs of them, which is the configuration the paper's
motivating scenario needs: a federated query joins two KBs whose relations
were aligned on the fly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ReproError
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.sameas import SameAsIndex


@dataclass(frozen=True)
class LinkedPair:
    """An ordered pair of KB names with their sameAs link set."""

    source: str
    target: str
    links: SameAsIndex

    def reversed(self) -> "LinkedPair":
        """The same pair viewed in the opposite direction (links are symmetric)."""
        return LinkedPair(source=self.target, target=self.source, links=self.links)


class KBCatalog:
    """Registry of knowledge bases and the link sets between them."""

    def __init__(self) -> None:
        self._kbs: Dict[str, KnowledgeBase] = {}
        self._links: Dict[Tuple[str, str], SameAsIndex] = {}

    def __len__(self) -> int:
        return len(self._kbs)

    def __contains__(self, name: object) -> bool:
        return name in self._kbs

    def __iter__(self) -> Iterator[KnowledgeBase]:
        return iter(self._kbs.values())

    # ------------------------------------------------------------------ #
    def register(self, kb: KnowledgeBase) -> None:
        """Add a knowledge base (name must be unique)."""
        if kb.name in self._kbs:
            raise ReproError(f"A KB named {kb.name!r} is already registered")
        self._kbs[kb.name] = kb

    def get(self, name: str) -> KnowledgeBase:
        """Look up a KB by name.

        Raises
        ------
        ReproError
            If no KB with that name is registered.
        """
        try:
            return self._kbs[name]
        except KeyError:
            raise ReproError(f"Unknown knowledge base: {name!r}") from None

    def names(self) -> List[str]:
        """Registered KB names in registration order."""
        return list(self._kbs)

    # ------------------------------------------------------------------ #
    def add_links(self, source: str, target: str, links: SameAsIndex) -> None:
        """Register the sameAs link set between two KBs (order-insensitive)."""
        if source not in self._kbs or target not in self._kbs:
            raise ReproError("Both KBs must be registered before adding links")
        self._links[self._key(source, target)] = links

    def links_between(self, source: str, target: str) -> SameAsIndex:
        """The sameAs link set between two KBs.

        Falls back to an index built from the ``owl:sameAs`` triples stored
        inside the two KBs when no explicit link set was registered.
        """
        key = self._key(source, target)
        if key in self._links:
            return self._links[key]
        index = SameAsIndex.from_triples(self.get(source).same_as_links())
        for triple in self.get(target).same_as_links():
            index.add_link(triple.subject, triple.object)
        return index

    def linked_pair(self, source: str, target: str) -> LinkedPair:
        """The :class:`LinkedPair` for the given direction."""
        return LinkedPair(source=source, target=target, links=self.links_between(source, target))

    @staticmethod
    def _key(source: str, target: str) -> Tuple[str, str]:
        return (source, target) if source <= target else (target, source)
