"""The sameAs equivalence index (the paper's set ``E``).

Implemented as a union-find (disjoint-set forest) with path compression so
that chains of ``sameAs`` links (A ≡ B, B ≡ C) put all three entities into
one equivalence class.  The index is direction-agnostic, matching
``owl:sameAs`` semantics.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.rdf.namespace import Namespace, SAME_AS
from repro.rdf.terms import IRI, Term, is_entity_term
from repro.rdf.triple import Triple


class SameAsIndex:
    """Union-find over entity identifiers linked by ``owl:sameAs``."""

    def __init__(self, links: Optional[Iterable[Tuple[Term, Term]]] = None):
        self._parent: Dict[Term, Term] = {}
        self._rank: Dict[Term, int] = {}
        self._members: Dict[Term, Set[Term]] = {}
        self._link_count = 0
        if links is not None:
            for left, right in links:
                self.add_link(left, right)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_triples(cls, triples: Iterable[Triple]) -> "SameAsIndex":
        """Build an index from the ``owl:sameAs`` triples of an iterable."""
        index = cls()
        for triple in triples:
            if triple.predicate == SAME_AS and is_entity_term(triple.object):
                index.add_link(triple.subject, triple.object)
        return index

    def add_link(self, left: Term, right: Term) -> None:
        """Record that ``left`` and ``right`` denote the same entity."""
        if not is_entity_term(left) or not is_entity_term(right):
            return
        self._link_count += 1
        root_left = self._find(left)
        root_right = self._find(right)
        if root_left == root_right:
            return
        # Union by rank.
        if self._rank[root_left] < self._rank[root_right]:
            root_left, root_right = root_right, root_left
        self._parent[root_right] = root_left
        if self._rank[root_left] == self._rank[root_right]:
            self._rank[root_left] += 1
        self._members[root_left].update(self._members.pop(root_right))

    def _find(self, entity: Term) -> Term:
        if entity not in self._parent:
            self._parent[entity] = entity
            self._rank[entity] = 0
            self._members[entity] = {entity}
            return entity
        # Path compression.
        root = entity
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[entity] != root:
            self._parent[entity], entity = root, self._parent[entity]
        return root

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        """Number of entities known to the index."""
        return len(self._parent)

    def __contains__(self, entity: object) -> bool:
        return entity in self._parent

    @property
    def link_count(self) -> int:
        """Number of ``add_link`` calls (raw links, not classes)."""
        return self._link_count

    def are_same(self, left: Term, right: Term) -> bool:
        """Whether the two entities are (transitively) linked.

        An entity is always the same as itself, even if it never appeared
        in a link.
        """
        if left == right:
            return True
        if left not in self._parent or right not in self._parent:
            return False
        return self._find(left) == self._find(right)

    def equivalence_class(self, entity: Term) -> Set[Term]:
        """All entities equivalent to ``entity`` (including itself)."""
        if entity not in self._parent:
            return {entity}
        return set(self._members[self._find(entity)])

    def equivalents(self, entity: Term) -> Set[Term]:
        """All entities equivalent to ``entity`` (excluding itself)."""
        cls = self.equivalence_class(entity)
        cls.discard(entity)
        return cls

    def translate(self, entity: Term, namespace: Namespace) -> Optional[Term]:
        """The equivalent of ``entity`` whose IRI lies in ``namespace``.

        Returns ``None`` when no equivalent lives in that namespace, and
        ``entity`` itself if it already does.  When several equivalents
        match, the lexicographically smallest is returned for determinism.
        """
        if isinstance(entity, IRI) and entity in namespace:
            return entity
        candidates = sorted(
            (e for e in self.equivalents(entity) if isinstance(e, IRI) and e in namespace),
            key=lambda e: e.value,
        )
        return candidates[0] if candidates else None

    def classes(self) -> Iterator[Set[Term]]:
        """Iterate over all equivalence classes with at least two members."""
        for members in self._members.values():
            if len(members) > 1:
                yield set(members)

    def class_count(self) -> int:
        """Number of non-trivial equivalence classes."""
        return sum(1 for _ in self.classes())

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def to_triples(self) -> List[Triple]:
        """Materialise the index as ``owl:sameAs`` triples (spanning edges)."""
        triples: List[Triple] = []
        for members in self.classes():
            ordered = sorted(members, key=str)
            anchor = ordered[0]
            for other in ordered[1:]:
                triples.append(Triple(anchor, SAME_AS, other))  # type: ignore[arg-type]
        return triples

    def restricted_to(self, entities: Iterable[Term]) -> "SameAsIndex":
        """A new index keeping only links among the given entities."""
        allowed = set(entities)
        index = SameAsIndex()
        for members in self.classes():
            kept = sorted((m for m in members if m in allowed), key=str)
            for first, second in zip(kept, kept[1:]):
                index.add_link(first, second)
        return index
