"""Relation metadata."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.rdf.terms import IRI


class RelationKind(enum.Enum):
    """Whether a relation's objects are entities or literals.

    SOFYA treats the two differently: entity-entity relations are joined
    through ``sameAs`` links, entity-literal relations are matched with
    string similarity (§2.2 of the paper).
    """

    ENTITY_ENTITY = "entity-entity"
    ENTITY_LITERAL = "entity-literal"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class RelationInfo:
    """Catalogue entry for one relation of a knowledge base.

    Attributes
    ----------
    iri:
        The relation IRI.
    kind:
        Entity-entity or entity-literal.
    fact_count:
        Number of facts at catalogue-build time (0 when unknown).
    functionality:
        PARIS-style functionality estimate in [0, 1] (1 = functional).
    inverse_of:
        Set when this relation is the explicitly-materialised inverse of
        another relation (the paper assumes inverse relations have been
        added to both KBs so only direct relations need to be mined).
    """

    iri: IRI
    kind: RelationKind = RelationKind.ENTITY_ENTITY
    fact_count: int = 0
    functionality: float = 0.0
    inverse_of: Optional[IRI] = None

    @property
    def name(self) -> str:
        """Human-readable local name of the relation."""
        return self.iri.local_name

    @property
    def is_literal_valued(self) -> bool:
        """Whether the relation is entity-literal."""
        return self.kind is RelationKind.ENTITY_LITERAL

    @property
    def is_inverse(self) -> bool:
        """Whether the relation is a materialised inverse."""
        return self.inverse_of is not None

    def __str__(self) -> str:
        return self.iri.value
