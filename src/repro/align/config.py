"""Configuration of the SOFYA aligner.

Every knob the paper mentions (and every design choice DESIGN.md lists as
worth ablating) is a field here, so experiments can sweep them without
touching algorithm code.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import AlignmentError
from repro.similarity.literal_match import LiteralMatcher

#: Valid confidence measure names.
CONFIDENCE_MEASURES = ("pca", "cwa")


@dataclass(frozen=True)
class AlignmentConfig:
    """Parameters of an on-the-fly alignment run.

    Parameters
    ----------
    sample_size:
        Number of sampled subject entities per candidate relation (the
        paper evaluates with 10).
    confidence_measure:
        ``"pca"`` (partial completeness, Eq. 2) or ``"cwa"`` (closed world,
        Eq. 1).
    confidence_threshold:
        τ: candidates whose confidence is strictly above the threshold are
        accepted.  The paper uses τ > 0.3 for pca and τ > 0.1 for cwa.
    min_support:
        Minimum number of shared (x, y) pairs for a candidate to be
        considered at all.
    use_unbiased_sampling:
        Enable the UBS strategies (the paper's contribution beyond the
        baseline sampler).
    ubs_contradiction_threshold:
        Number of contradicting unbiased samples needed to prune a wrong
        candidate.  The paper needs "only one case".
    ubs_sample_size:
        Number of unbiased (disagreement) samples fetched per sibling pair.
    candidate_sample_size:
        Number of source-relation facts sampled for candidate discovery.
    max_candidates:
        Upper bound on the number of candidate relations scored per query
        relation (keeps the query budget predictable); ``None`` = no bound.
    require_sameas_objects:
        Mirror of the paper's rule "ignore the r_sub facts where the sameAs
        links to entities in K are missing": facts whose *object* has no
        translation are dropped from the evidence rather than counted as
        counter-examples.  Setting this to ``False`` counts them against
        the rule (an ablation).
    oversample_factor:
        How many times ``sample_size`` subjects to fetch per page before
        filtering for linkable ones.
    literal_matcher:
        Matcher used for entity-literal relations.
    random_seed:
        Seed of the pseudo-random sampling (pages offsets).
    test_equivalence:
        Also test the reverse implication and report equivalences.
    """

    sample_size: int = 10
    confidence_measure: str = "pca"
    confidence_threshold: float = 0.3
    min_support: int = 1
    use_unbiased_sampling: bool = True
    ubs_contradiction_threshold: int = 1
    ubs_sample_size: int = 8
    candidate_sample_size: int = 20
    max_candidates: Optional[int] = 25
    require_sameas_objects: bool = True
    oversample_factor: int = 4
    literal_matcher: LiteralMatcher = field(default_factory=LiteralMatcher)
    random_seed: int = 42
    test_equivalence: bool = False

    def __post_init__(self) -> None:
        if self.sample_size <= 0:
            raise AlignmentError("sample_size must be positive")
        if self.confidence_measure not in CONFIDENCE_MEASURES:
            raise AlignmentError(
                f"confidence_measure must be one of {CONFIDENCE_MEASURES}, "
                f"got {self.confidence_measure!r}"
            )
        if not 0.0 <= self.confidence_threshold <= 1.0:
            raise AlignmentError("confidence_threshold must be in [0, 1]")
        if self.min_support < 0:
            raise AlignmentError("min_support must be non-negative")
        if self.ubs_contradiction_threshold < 1:
            raise AlignmentError("ubs_contradiction_threshold must be at least 1")
        if self.ubs_sample_size <= 0:
            raise AlignmentError("ubs_sample_size must be positive")
        if self.candidate_sample_size <= 0:
            raise AlignmentError("candidate_sample_size must be positive")
        if self.max_candidates is not None and self.max_candidates <= 0:
            raise AlignmentError("max_candidates must be positive or None")
        if self.oversample_factor < 1:
            raise AlignmentError("oversample_factor must be at least 1")

    # ------------------------------------------------------------------ #
    # Paper presets
    # ------------------------------------------------------------------ #
    @classmethod
    def paper_pca_baseline(cls, sample_size: int = 10) -> "AlignmentConfig":
        """Row 1 of Table 1: SSE sampling + pca_conf, τ > 0.3."""
        return cls(
            sample_size=sample_size,
            confidence_measure="pca",
            confidence_threshold=0.3,
            use_unbiased_sampling=False,
        )

    @classmethod
    def paper_cwa_baseline(cls, sample_size: int = 10) -> "AlignmentConfig":
        """Row 2 of Table 1: SSE sampling + cwa_conf, τ > 0.1."""
        return cls(
            sample_size=sample_size,
            confidence_measure="cwa",
            confidence_threshold=0.1,
            use_unbiased_sampling=False,
        )

    @classmethod
    def paper_ubs(cls, sample_size: int = 10) -> "AlignmentConfig":
        """Row 3 of Table 1: UBS sampling + pca_conf (the contribution)."""
        return cls(
            sample_size=sample_size,
            confidence_measure="pca",
            confidence_threshold=0.3,
            use_unbiased_sampling=True,
        )

    def with_threshold(self, threshold: float) -> "AlignmentConfig":
        """A copy of the config with a different acceptance threshold."""
        return replace(self, confidence_threshold=threshold)

    def with_sample_size(self, sample_size: int) -> "AlignmentConfig":
        """A copy of the config with a different sample size."""
        return replace(self, sample_size=sample_size)
