"""The on-the-fly aligner (the system called SOFYA in the paper).

:class:`SofyaAligner` ties the pieces together.  Given

* a *source* dataset ``K`` (the KB the user is querying — the conclusion
  side of mined rules),
* a *target* dataset ``K′`` (the foreign KB whose relations should be
  aligned to the query — the premise side),
* the ``sameAs`` entity equivalence set ``E`` between them,

it discovers candidate relations, samples instances through the endpoints
only, scores every candidate with the configured ILP confidence measure,
optionally applies the UBS pruning strategies and the equivalence test, and
returns an :class:`~repro.align.result.AlignmentResult`.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.endpoint.client import EndpointClient
from repro.endpoint.policy import AccessPolicy
from repro.errors import AlignmentError, EndpointError, QueryBudgetExceeded
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.sameas import SameAsIndex
from repro.rdf.namespace import Namespace
from repro.rdf.terms import IRI, Term
from repro.align.candidates import Candidate, CandidateFinder
from repro.align.config import AlignmentConfig
from repro.align.confidence import confidence_of, support_of
from repro.align.evidence import EvidenceSet
from repro.align.result import AlignmentResult, RelationAlignment, ScoredCandidate
from repro.align.rule import RelationRef, SubsumptionRule
from repro.align.sampling import SimpleSampleExtractor
from repro.align.unbiased import UBSReport, UnbiasedSampleExtractor


@dataclass
class RemoteDataset:
    """A dataset as seen by the aligner: a name, an endpoint client, and the
    namespace its entities live in.

    The aligner never touches a triple store directly — only the client.
    """

    name: str
    client: EndpointClient
    namespace: Namespace

    @classmethod
    def from_kb(
        cls,
        kb: KnowledgeBase,
        policy: Optional[AccessPolicy] = None,
    ) -> "RemoteDataset":
        """Expose a local :class:`~repro.kb.KnowledgeBase` as a remote dataset."""
        return cls(name=kb.name, client=kb.client(policy=policy), namespace=kb.namespace)


class SofyaAligner:
    """Instance-based, on-the-fly relation alignment between two KBs.

    Parameters
    ----------
    source:
        The dataset ``K`` holding the query relations (rule conclusions).
    target:
        The dataset ``K′`` in which aligned relations are searched (rule
        premises).
    links:
        The ``sameAs`` equivalence set ``E`` between the two datasets.
    config:
        Algorithm parameters; defaults to the paper's UBS configuration.

    Example
    -------
    >>> aligner = SofyaAligner(source, target, links, AlignmentConfig.paper_ubs())
    >>> alignment = aligner.align_relation(relation)       # doctest: +SKIP
    >>> alignment.accepted(threshold=0.3)                   # doctest: +SKIP
    """

    def __init__(
        self,
        source: RemoteDataset,
        target: RemoteDataset,
        links: SameAsIndex,
        config: Optional[AlignmentConfig] = None,
    ):
        if source.name == target.name:
            raise AlignmentError("Source and target datasets must differ")
        self.source = source
        self.target = target
        self.links = links
        self.config = config or AlignmentConfig()

        self._candidate_finder = CandidateFinder(
            source=source.client,
            target=target.client,
            links=links,
            target_namespace=target.namespace,
            config=self.config,
        )
        self._forward_sampler = SimpleSampleExtractor(
            premise_client=target.client,
            conclusion_client=source.client,
            links=links,
            conclusion_namespace=source.namespace,
            config=self.config,
        )
        self._reverse_sampler = SimpleSampleExtractor(
            premise_client=source.client,
            conclusion_client=target.client,
            links=links,
            conclusion_namespace=target.namespace,
            config=self.config,
        )
        self._ubs = UnbiasedSampleExtractor(
            premise_client=target.client,
            conclusion_client=source.client,
            links=links,
            conclusion_namespace=source.namespace,
            config=self.config,
        )

    def __repr__(self) -> str:
        return (
            f"SofyaAligner(source={self.source.name!r}, target={self.target.name!r}, "
            f"measure={self.config.confidence_measure!r})"
        )

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def align_relation(self, relation: IRI) -> RelationAlignment:
        """Align one query relation of the source KB.

        Returns a :class:`~repro.align.result.RelationAlignment` holding
        every scored candidate; acceptance at a threshold is left to the
        caller (or to :meth:`align_relations`).
        """
        conclusion_ref = RelationRef(kb=self.source.name, relation=relation)
        alignment = RelationAlignment(relation=conclusion_ref)

        candidates = self._candidate_finder.find(relation)
        if not candidates:
            return alignment

        scored: List[ScoredCandidate] = []
        forward_subjects: Dict[IRI, List[Term]] = {}
        for candidate in candidates:
            scored_candidate, subjects = self._score_candidate(
                candidate, relation, conclusion_ref
            )
            scored.append(scored_candidate)
            forward_subjects[candidate.relation] = subjects

        ubs_subjects: Dict[IRI, List[Term]] = {}
        if self.config.use_unbiased_sampling:
            scored, ubs_subjects = self._apply_unbiased_sampling(scored, relation)

        if self.config.test_equivalence:
            for candidate in scored:
                self._score_reverse(
                    candidate,
                    relation,
                    conclusion_ref,
                    forward_subjects.get(candidate.relation, []),
                    ubs_subjects.get(candidate.relation, []),
                )

        alignment.candidates = scored
        return alignment

    def align_relations(
        self, relations: Optional[Iterable[IRI]] = None
    ) -> AlignmentResult:
        """Align a collection of query relations (all of them by default).

        When a query budget runs out mid-run, the relations already aligned
        are returned rather than discarded — the on-the-fly algorithm is
        any-time by design.
        """
        if relations is None:
            relations = self.source.client.relations()
        result = AlignmentResult(
            source_kb=self.source.name,
            target_kb=self.target.name,
            config=self.config,
        )
        for relation in relations:
            try:
                result.add(self.align_relation(relation))
            except (QueryBudgetExceeded, EndpointError):
                break
        result.query_statistics = self.query_statistics()
        return result

    def align_relations_batched(
        self,
        relations: Optional[Iterable[IRI]] = None,
        max_workers: int = 4,
    ) -> AlignmentResult:
        """Align several query relations as concurrent query batches.

        The batched counterpart of :meth:`align_relations`: each relation
        is aligned on a worker thread, so the alignment queries of
        different relations are in flight simultaneously — against a
        :class:`~repro.endpoint.simulation.SimulatedSparqlEndpoint` the
        per-query latencies overlap instead of serialising.  The
        endpoints' budget accounting is thread-safe, so the query quota
        is enforced exactly; a relation whose queries exhaust it is
        dropped from the result (the algorithm is any-time), and the
        remaining relations keep whatever answers their already-issued
        queries bought.

        Unlike the sequential path, the *pseudo-random sample offsets* of
        concurrent relations interleave nondeterministically — results
        for any single relation remain valid samples, but run-to-run
        reproducibility holds only at ``max_workers=1``.
        """
        if max_workers < 1:
            raise AlignmentError("max_workers must be >= 1")
        if relations is None:
            relations = self.source.client.relations()
        relation_list = list(relations)
        result = AlignmentResult(
            source_kb=self.source.name,
            target_kb=self.target.name,
            config=self.config,
        )
        with ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="align-batch"
        ) as executor:
            futures = [
                executor.submit(self.align_relation, relation)
                for relation in relation_list
            ]
            for future in futures:
                try:
                    result.add(future.result())
                except (QueryBudgetExceeded, EndpointError):
                    continue
        result.query_statistics = self.query_statistics()
        return result

    def query_statistics(self) -> Dict[str, Dict[str, float]]:
        """Per-endpoint accounting snapshots (queries, rows, virtual time)."""
        return {
            self.source.name: self.source.client.endpoint.log.snapshot(),
            self.target.name: self.target.client.endpoint.log.snapshot(),
        }

    # ------------------------------------------------------------------ #
    # Scoring
    # ------------------------------------------------------------------ #
    def _score_candidate(
        self,
        candidate: Candidate,
        relation: IRI,
        conclusion_ref: RelationRef,
    ) -> tuple[ScoredCandidate, List[Term]]:
        """Score one candidate with Simple Sample Extraction.

        Returns the scored candidate plus the sampled subjects (as
        conclusion-KB identities); the equivalence test reuses them as the
        reverse sample so that no extra sampling queries are needed — and so
        that the paper's "composers that only composed" bias is reproduced
        when UBS is disabled.
        """
        evidence = self._forward_sampler.extract(candidate.relation, relation)
        rule = self._build_rule(
            premise=RelationRef(kb=self.target.name, relation=candidate.relation),
            conclusion=conclusion_ref,
            evidence=evidence,
        )
        scored = ScoredCandidate(
            rule=rule,
            evidence_subjects=len(evidence),
            candidate_hits=candidate.hits,
        )
        return scored, evidence.subjects()

    def _build_rule(
        self,
        premise: RelationRef,
        conclusion: RelationRef,
        evidence: EvidenceSet,
    ) -> SubsumptionRule:
        measure = self.config.confidence_measure
        confidence = confidence_of(evidence, measure)
        body_size = (
            evidence.pca_body_pairs() if measure == "pca" else evidence.premise_pairs()
        )
        return SubsumptionRule(
            premise=premise,
            conclusion=conclusion,
            confidence=confidence,
            support=support_of(evidence),
            measure=measure,
            body_size=body_size,
        )

    # ------------------------------------------------------------------ #
    # UBS
    # ------------------------------------------------------------------ #
    def _apply_unbiased_sampling(
        self,
        scored: List[ScoredCandidate],
        relation: IRI,
    ) -> tuple[List[ScoredCandidate], Dict[IRI, List[Term]]]:
        """Run the UBS check on provisionally accepted candidates.

        Only candidates that pass the baseline threshold are worth
        double-checking; the sibling set used to build disagreement samples
        is that same provisional set (the paper's "candidate relations r′
        and r″ subsumed by r for simple samples").

        Returns the re-scored candidates plus, per candidate, the subjects
        of the disagreement samples (reused by the equivalence test).
        """
        threshold = self.config.confidence_threshold
        provisional = {
            candidate.relation
            for candidate in scored
            if candidate.rule.accepted(threshold, self.config.min_support)
        }
        ubs_subjects: Dict[IRI, List[Term]] = {}
        if len(provisional) < 2:
            return scored, ubs_subjects

        sibling_relations = sorted(provisional, key=lambda iri: iri.value)
        updated: List[ScoredCandidate] = []
        for candidate in scored:
            if candidate.relation not in provisional:
                updated.append(candidate)
                continue
            report = self._ubs.check_candidate(
                candidate=candidate.relation,
                siblings=sibling_relations,
                conclusion_relation=relation,
            )
            ubs_subjects[candidate.relation] = list(report.disagreement_subjects)
            updated.append(self._rescore_with_ubs(candidate, report))
        return updated, ubs_subjects

    def _rescore_with_ubs(
        self, candidate: ScoredCandidate, report: UBSReport
    ) -> ScoredCandidate:
        """Merge the unbiased evidence into the rule and apply pruning."""
        pruned = report.prunes(self.config.ubs_contradiction_threshold)
        merged_rule = self._merge_rule_with_ubs(candidate.rule, report, pruned)
        return ScoredCandidate(
            rule=merged_rule,
            evidence_subjects=candidate.evidence_subjects + len(report.extra_evidence),
            candidate_hits=candidate.candidate_hits,
            ubs_contradictions=report.contradictions,
            ubs_confirmations=report.confirmations,
            reverse_rule=candidate.reverse_rule,
        )

    @staticmethod
    def _merge_rule_with_ubs(
        rule: SubsumptionRule, report: UBSReport, pruned: bool
    ) -> SubsumptionRule:
        """Fold the unbiased samples into the rule's confidence counts.

        Confirmations add shared pairs (numerator and denominator);
        contradictions add counter-example pairs whose subject is known to
        have conclusion facts, so they extend the denominator under both
        the CWA and the PCA reading.
        """
        numerator = rule.support + report.confirmations
        denominator = rule.body_size + report.confirmations + report.contradictions
        confidence = (numerator / denominator) if denominator else 0.0
        return SubsumptionRule(
            premise=rule.premise,
            conclusion=rule.conclusion,
            confidence=confidence,
            support=numerator,
            measure=rule.measure,
            body_size=denominator,
            contradictions=report.contradictions,
            pruned_by_ubs=pruned,
        )

    # ------------------------------------------------------------------ #
    # Equivalence (double subsumption)
    # ------------------------------------------------------------------ #
    def _score_reverse(
        self,
        candidate: ScoredCandidate,
        relation: IRI,
        conclusion_ref: RelationRef,
        forward_subjects: List[Term],
        ubs_subjects: List[Term],
    ) -> None:
        """Score the reverse implication ``r ⇒ r′`` for the equivalence test.

        Without UBS the reverse sample simply reuses the subjects of the
        forward check (no extra sampling queries) — which reproduces the
        bias the paper describes: a sample of composers who only composed
        makes ``creatorOf ⇔ composerOf`` look true.  With UBS enabled, the
        translated disagreement subjects (composers who are *also* writers)
        are put at the front of the sample, exposing the counter-examples.
        """
        subjects: List[Term] = []
        if self.config.use_unbiased_sampling:
            for subject in ubs_subjects:
                image = self.links.translate(subject, self.source.namespace)
                if image is not None and image not in subjects:
                    subjects.append(image)
        for subject in forward_subjects:
            if subject not in subjects:
                subjects.append(subject)
        if not subjects:
            subjects = self._reverse_sampler.sample_subjects(relation)

        evidence = self._reverse_sampler.extract(
            relation, candidate.relation, subjects=subjects
        )
        candidate.reverse_rule = self._build_rule(
            premise=conclusion_ref,
            conclusion=RelationRef(kb=self.target.name, relation=candidate.relation),
            evidence=evidence,
        )
