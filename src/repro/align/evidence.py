"""Evidence collected from sampled instances.

The sampler turns raw endpoint answers into an :class:`EvidenceSet`: for
each sampled subject (identified by its representative in the *conclusion*
KB ``K``), it records

* the premise objects — the objects of the candidate relation ``r′`` in
  ``K′``, translated into ``K`` identities via ``sameAs`` (entity objects)
  or kept as literals,
* the conclusion objects — the objects of the query relation ``r`` for the
  same subject in ``K``.

Both confidence measures of the paper are pure functions of this evidence
(:mod:`repro.align.confidence`), so CWA/PCA sweeps never re-query the
endpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.rdf.terms import Literal, Term
from repro.similarity.literal_match import LiteralMatcher


@dataclass
class SubjectEvidence:
    """Evidence for one sampled subject.

    Attributes
    ----------
    subject:
        The subject entity, identified in the conclusion KB ``K``.
    premise_objects:
        Objects of the candidate relation ``r′`` for this subject,
        translated to ``K`` identities (entities) or literal values.
    conclusion_objects:
        Objects of the query relation ``r`` for this subject in ``K``.
    untranslatable_objects:
        Number of premise objects dropped because they had no ``sameAs``
        translation (kept for diagnostics; the paper ignores such facts).
    from_unbiased_sampling:
        Whether this subject was added by the UBS strategy rather than the
        simple sampler.
    """

    subject: Term
    premise_objects: List[Term] = field(default_factory=list)
    conclusion_objects: List[Term] = field(default_factory=list)
    untranslatable_objects: int = 0
    from_unbiased_sampling: bool = False

    def shared_pairs(self, literal_matcher: Optional[LiteralMatcher] = None) -> int:
        """Number of premise objects that also appear as conclusion objects.

        Entity objects are compared by identity (they have already been
        translated to ``K`` identifiers); literal objects are compared with
        the literal matcher when one is supplied, else by exact equality.
        """
        matched = 0
        remaining = list(self.conclusion_objects)
        for premise_object in self.premise_objects:
            index = self._find_match(premise_object, remaining, literal_matcher)
            if index is not None:
                matched += 1
                remaining.pop(index)
        return matched

    def has_conclusion_facts(self) -> bool:
        """Whether the subject has any fact of the conclusion relation."""
        return bool(self.conclusion_objects)

    @staticmethod
    def _find_match(
        premise_object: Term,
        candidates: Sequence[Term],
        literal_matcher: Optional[LiteralMatcher],
    ) -> Optional[int]:
        for index, candidate in enumerate(candidates):
            if premise_object == candidate:
                return index
            if (
                literal_matcher is not None
                and isinstance(premise_object, Literal)
                and isinstance(candidate, Literal)
                and literal_matcher.matches(premise_object, candidate)
            ):
                return index
        return None


@dataclass
class EvidenceSet:
    """Evidence for one candidate rule ``r′ ⇒ r`` over all sampled subjects."""

    records: List[SubjectEvidence] = field(default_factory=list)
    literal_matcher: Optional[LiteralMatcher] = None

    def add(self, record: SubjectEvidence) -> None:
        """Append one subject's evidence."""
        self.records.append(record)

    def extend(self, records: Iterable[SubjectEvidence]) -> None:
        """Append several subjects' evidence."""
        for record in records:
            self.add(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[SubjectEvidence]:
        return iter(self.records)

    def merge(self, other: "EvidenceSet") -> "EvidenceSet":
        """A new evidence set containing the records of both (coalesce).

        Subjects present in both are merged: their premise / conclusion
        object lists are unioned so a subject never appears twice.
        """
        by_subject: Dict[Term, SubjectEvidence] = {}
        for record in list(self.records) + list(other.records):
            existing = by_subject.get(record.subject)
            if existing is None:
                by_subject[record.subject] = SubjectEvidence(
                    subject=record.subject,
                    premise_objects=list(record.premise_objects),
                    conclusion_objects=list(record.conclusion_objects),
                    untranslatable_objects=record.untranslatable_objects,
                    from_unbiased_sampling=record.from_unbiased_sampling,
                )
                continue
            for obj in record.premise_objects:
                if obj not in existing.premise_objects:
                    existing.premise_objects.append(obj)
            for obj in record.conclusion_objects:
                if obj not in existing.conclusion_objects:
                    existing.conclusion_objects.append(obj)
            existing.untranslatable_objects += record.untranslatable_objects
            existing.from_unbiased_sampling = (
                existing.from_unbiased_sampling or record.from_unbiased_sampling
            )
        merged = EvidenceSet(literal_matcher=self.literal_matcher or other.literal_matcher)
        merged.records = list(by_subject.values())
        return merged

    # ------------------------------------------------------------------ #
    # Counts feeding the confidence measures
    # ------------------------------------------------------------------ #
    def positive_pairs(self) -> int:
        """#(x, y) with r′(x, y) ∧ r(x, y) — the numerator of both measures."""
        return sum(record.shared_pairs(self.literal_matcher) for record in self.records)

    def premise_pairs(self) -> int:
        """#(x, y) with r′(x, y) — the CWA denominator (Eq. 1)."""
        return sum(len(record.premise_objects) for record in self.records)

    def pca_body_pairs(self) -> int:
        """#(x, y) with r′(x, y) ∧ ∃y′ r(x, y′) — the PCA denominator (Eq. 2)."""
        return sum(
            len(record.premise_objects)
            for record in self.records
            if record.has_conclusion_facts()
        )

    def subjects(self) -> List[Term]:
        """The sampled subjects (conclusion-KB identities)."""
        return [record.subject for record in self.records]

    def unbiased_record_count(self) -> int:
        """How many records came from the UBS strategy."""
        return sum(1 for record in self.records if record.from_unbiased_sampling)

    def counts(self) -> Tuple[int, int, int]:
        """``(positives, cwa_denominator, pca_denominator)`` in one pass."""
        return (self.positive_pairs(), self.premise_pairs(), self.pca_body_pairs())
