"""Simple Sample Extraction (SSE) — the paper's baseline sampler (§2.2).

Given a candidate relation ``r′`` in the premise KB ``K′`` and the query
relation ``r`` in the conclusion KB ``K``, the extractor:

1. draws a pseudo-random page of subjects of ``r′`` that have ``sameAs``
   images in ``K`` (the set ``S_rsub``),
2. retrieves the ``r′`` facts of those subjects (``K′_rsub_S``),
3. translates subjects and entity objects to ``K`` identities through the
   ``sameAs`` set (``P_rsub_S``), ignoring facts whose links are missing,
4. retrieves **all** ``r`` facts of the translated subjects from ``K``
   (``K_rsub_S`` — all facts per subject are needed by the PCA measure),
5. coalesces everything into an :class:`~repro.align.evidence.EvidenceSet`.

All endpoint access goes through :class:`~repro.endpoint.EndpointClient`,
so the whole extraction costs a handful of queries regardless of KB size.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.endpoint.client import EndpointClient
from repro.kb.sameas import SameAsIndex
from repro.rdf.namespace import Namespace
from repro.rdf.terms import IRI, Literal, Term, is_entity_term
from repro.align.config import AlignmentConfig
from repro.align.evidence import EvidenceSet, SubjectEvidence

#: Maximum number of subject pages fetched while looking for linkable subjects.
_MAX_SAMPLE_PAGES = 4


class SimpleSampleExtractor:
    """Pseudo-random instance sampler for one KB pair.

    Parameters
    ----------
    premise_client:
        Endpoint client of the KB ``K′`` holding the candidate relation.
    conclusion_client:
        Endpoint client of the KB ``K`` holding the query relation.
    links:
        The ``sameAs`` equivalence set between the two KBs.
    conclusion_namespace:
        Namespace of ``K``'s entities (translation target).
    config:
        Alignment configuration.
    """

    def __init__(
        self,
        premise_client: EndpointClient,
        conclusion_client: EndpointClient,
        links: SameAsIndex,
        conclusion_namespace: Namespace,
        config: Optional[AlignmentConfig] = None,
    ):
        self.premise_client = premise_client
        self.conclusion_client = conclusion_client
        self.links = links
        self.conclusion_namespace = conclusion_namespace
        self.config = config or AlignmentConfig()
        self._random = random.Random(self.config.random_seed)

    # ------------------------------------------------------------------ #
    def extract(
        self,
        premise_relation: IRI,
        conclusion_relation: IRI,
        subjects: Optional[Sequence[Term]] = None,
    ) -> EvidenceSet:
        """Build the evidence set for the rule ``premise ⇒ conclusion``.

        Parameters
        ----------
        premise_relation:
            The candidate relation ``r′`` in ``K′``.
        conclusion_relation:
            The query relation ``r`` in ``K``.
        subjects:
            Optional explicit sample (premise-KB subjects); when given the
            pseudo-random sampling step is skipped.  Used by the unbiased
            strategy and by the equivalence test.
        """
        if subjects is None:
            sampled_subjects = self.sample_subjects(premise_relation)
        else:
            sampled_subjects = [s for s in subjects if self._translate_subject(s) is not None]
            sampled_subjects = sampled_subjects[: self.config.sample_size]

        if not sampled_subjects:
            return EvidenceSet(literal_matcher=self.config.literal_matcher)

        premise_facts = self.premise_client.facts_of_subjects(
            sampled_subjects, premise_relation
        )
        records = self._build_records(sampled_subjects, premise_facts)
        self._attach_conclusion_facts(records, conclusion_relation)

        evidence = EvidenceSet(literal_matcher=self.config.literal_matcher)
        evidence.extend(records.values())
        return evidence

    # ------------------------------------------------------------------ #
    # Step 1: subject sampling
    # ------------------------------------------------------------------ #
    def sample_subjects(self, premise_relation: IRI) -> List[Term]:
        """A pseudo-random sample of linkable subjects of ``premise_relation``.

        Subjects without a ``sameAs`` image in the conclusion KB cannot
        contribute evidence and are skipped; additional pages are fetched
        (up to a small bound) until the sample is full or the relation's
        subjects are exhausted.
        """
        sample_size = self.config.sample_size
        page_size = max(sample_size * self.config.oversample_factor, sample_size)
        total_subjects = self.premise_client.count_subjects(premise_relation)
        if total_subjects == 0:
            return []

        max_offset = max(0, total_subjects - page_size)
        offset = self._random.randint(0, max_offset) if max_offset > 0 else 0

        chosen: List[Term] = []
        seen: set = set()
        for page_index in range(_MAX_SAMPLE_PAGES):
            page = self.premise_client.subjects(
                premise_relation, limit=page_size, offset=offset
            )
            if not page:
                break
            for subject in page:
                if subject in seen:
                    continue
                seen.add(subject)
                if self._translate_subject(subject) is not None:
                    chosen.append(subject)
                    if len(chosen) >= sample_size:
                        return chosen
            # Advance to the next page, wrapping around to the start.
            offset += page_size
            if offset >= total_subjects:
                offset = 0
            if len(seen) >= total_subjects:
                break
        return chosen

    # ------------------------------------------------------------------ #
    # Steps 2-3: premise facts and translation
    # ------------------------------------------------------------------ #
    def _build_records(
        self,
        subjects: Sequence[Term],
        premise_facts: Sequence[Tuple[Term, Term]],
    ) -> Dict[Term, SubjectEvidence]:
        """Group premise facts by subject and translate them to ``K`` identities."""
        records: Dict[Term, SubjectEvidence] = {}
        translated_of: Dict[Term, Term] = {}
        for subject in subjects:
            translated = self._translate_subject(subject)
            if translated is None:
                continue
            translated_of[subject] = translated
            records[subject] = SubjectEvidence(subject=translated)

        for subject, obj in premise_facts:
            record = records.get(subject)
            if record is None:
                continue
            translated_object = self._translate_object(obj)
            if translated_object is None:
                if self.config.require_sameas_objects:
                    record.untranslatable_objects += 1
                    continue
                translated_object = obj
            if translated_object not in record.premise_objects:
                record.premise_objects.append(translated_object)
        return records

    # ------------------------------------------------------------------ #
    # Step 4: conclusion facts
    # ------------------------------------------------------------------ #
    def _attach_conclusion_facts(
        self, records: Dict[Term, SubjectEvidence], conclusion_relation: IRI
    ) -> None:
        """Fetch all ``r`` facts of the translated subjects from ``K``."""
        translated_subjects = [record.subject for record in records.values()]
        if not translated_subjects:
            return
        conclusion_facts = self.conclusion_client.facts_of_subjects(
            translated_subjects, conclusion_relation
        )
        by_translated: Dict[Term, List[Term]] = {}
        for subject, obj in conclusion_facts:
            by_translated.setdefault(subject, []).append(obj)
        for record in records.values():
            for obj in by_translated.get(record.subject, []):
                if obj not in record.conclusion_objects:
                    record.conclusion_objects.append(obj)

    # ------------------------------------------------------------------ #
    # Translation helpers
    # ------------------------------------------------------------------ #
    def _translate_subject(self, subject: Term) -> Optional[Term]:
        return self.links.translate(subject, self.conclusion_namespace)

    def _translate_object(self, obj: Term) -> Optional[Term]:
        """Translate an object term; literals pass through unchanged."""
        if isinstance(obj, Literal):
            return obj
        if is_entity_term(obj):
            return self.links.translate(obj, self.conclusion_namespace)
        return None
