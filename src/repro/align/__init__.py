"""SOFYA's core: on-the-fly, instance-based relation alignment.

The package implements the approach of §2 of the paper:

* :mod:`repro.align.rule` — subsumption / equivalence rules,
* :mod:`repro.align.confidence` — the ``cwa_conf`` (Eq. 1) and ``pca_conf``
  (Eq. 2) ILP confidence measures,
* :mod:`repro.align.evidence` — evidence sets built from sampled instances,
* :mod:`repro.align.candidates` — candidate relation discovery,
* :mod:`repro.align.sampling` — Simple Sample Extraction (the baseline),
* :mod:`repro.align.unbiased` — Unbiased Sample Extraction (UBS, the
  contribution),
* :mod:`repro.align.aligner` — the :class:`SofyaAligner` orchestration,
* :mod:`repro.align.config` / :mod:`repro.align.result` — configuration and
  result containers.
"""

from repro.align.config import AlignmentConfig, CONFIDENCE_MEASURES
from repro.align.confidence import (
    confidence_of,
    cwa_confidence,
    cwa_confidence_of,
    pca_confidence,
    pca_confidence_of,
    support_of,
)
from repro.align.evidence import EvidenceSet, SubjectEvidence
from repro.align.rule import EquivalenceRule, RelationRef, SubsumptionRule
from repro.align.candidates import Candidate, CandidateFinder
from repro.align.sampling import SimpleSampleExtractor
from repro.align.unbiased import UBSReport, UnbiasedSampleExtractor
from repro.align.result import AlignmentResult, RelationAlignment, ScoredCandidate
from repro.align.aligner import RemoteDataset, SofyaAligner

__all__ = [
    "AlignmentConfig",
    "CONFIDENCE_MEASURES",
    "cwa_confidence",
    "pca_confidence",
    "cwa_confidence_of",
    "pca_confidence_of",
    "confidence_of",
    "support_of",
    "EvidenceSet",
    "SubjectEvidence",
    "RelationRef",
    "SubsumptionRule",
    "EquivalenceRule",
    "Candidate",
    "CandidateFinder",
    "SimpleSampleExtractor",
    "UnbiasedSampleExtractor",
    "UBSReport",
    "ScoredCandidate",
    "RelationAlignment",
    "AlignmentResult",
    "RemoteDataset",
    "SofyaAligner",
]
