"""Result containers for alignment runs.

The aligner separates *scoring* from *acceptance*: every candidate keeps
its confidence, support and UBS diagnostics, and acceptance at a threshold
``τ`` is a cheap post-processing step.  This is what lets the threshold
sweep benchmark re-use a single expensive sampling run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.rdf.terms import IRI
from repro.align.config import AlignmentConfig
from repro.align.rule import EquivalenceRule, RelationRef, SubsumptionRule


@dataclass
class ScoredCandidate:
    """One candidate relation with its full diagnostics.

    Attributes
    ----------
    rule:
        The scored subsumption ``candidate ⇒ query relation``.
    evidence_subjects:
        Number of sampled subjects behind the score.
    candidate_hits:
        Co-occurrence count from the candidate-discovery phase.
    ubs_contradictions / ubs_confirmations:
        Diagnostics from the unbiased sampling check (0 when disabled).
    reverse_rule:
        The reverse subsumption (query relation ⇒ candidate) when the
        equivalence test was requested, else ``None``.
    """

    rule: SubsumptionRule
    evidence_subjects: int = 0
    candidate_hits: int = 0
    ubs_contradictions: int = 0
    ubs_confirmations: int = 0
    reverse_rule: Optional[SubsumptionRule] = None

    @property
    def relation(self) -> IRI:
        """The candidate relation IRI."""
        return self.rule.premise.relation

    @property
    def confidence(self) -> float:
        """Confidence of the forward rule."""
        return self.rule.confidence

    def equivalence(self) -> Optional[EquivalenceRule]:
        """The equivalence rule when the reverse direction was scored."""
        if self.reverse_rule is None:
            return None
        return EquivalenceRule(forward=self.rule, backward=self.reverse_rule)


@dataclass
class RelationAlignment:
    """All scored candidates for one query relation."""

    relation: RelationRef
    candidates: List[ScoredCandidate] = field(default_factory=list)

    def __iter__(self) -> Iterator[ScoredCandidate]:
        return iter(self.candidates)

    def __len__(self) -> int:
        return len(self.candidates)

    def sorted_candidates(self) -> List[ScoredCandidate]:
        """Candidates by descending confidence, then support."""
        return sorted(
            self.candidates,
            key=lambda c: (-c.rule.confidence, -c.rule.support, c.relation.value),
        )

    def accepted(
        self, threshold: Optional[float] = None, min_support: Optional[int] = None
    ) -> List[SubsumptionRule]:
        """Rules accepted at threshold ``τ`` (defaults from the run config)."""
        rules = []
        for candidate in self.sorted_candidates():
            effective_threshold = threshold if threshold is not None else 0.0
            effective_support = min_support if min_support is not None else 1
            if candidate.rule.accepted(effective_threshold, effective_support):
                rules.append(candidate.rule)
        return rules

    def best(self) -> Optional[ScoredCandidate]:
        """The highest-confidence candidate (``None`` when there is none)."""
        ranked = self.sorted_candidates()
        return ranked[0] if ranked else None

    def equivalences(
        self, threshold: float, min_support: int = 1
    ) -> List[EquivalenceRule]:
        """Accepted equivalence rules (both directions above threshold)."""
        accepted = []
        for candidate in self.candidates:
            equivalence = candidate.equivalence()
            if equivalence is not None and equivalence.accepted(threshold, min_support):
                accepted.append(equivalence)
        return accepted


@dataclass
class AlignmentResult:
    """The outcome of aligning a set of query relations in one direction.

    The *direction label* follows the paper's Table 1 notation:
    ``"<premise KB> ⊂ <conclusion KB>"`` — e.g. ``"yago ⊂ dbpd"`` contains
    rules whose premise relation comes from YAGO.
    """

    source_kb: str
    target_kb: str
    config: AlignmentConfig
    alignments: Dict[IRI, RelationAlignment] = field(default_factory=dict)
    query_statistics: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def direction(self) -> str:
        """Table-1 style direction label (premise ⊂ conclusion)."""
        return f"{self.target_kb} ⊂ {self.source_kb}"

    def __len__(self) -> int:
        return len(self.alignments)

    def __iter__(self) -> Iterator[RelationAlignment]:
        return iter(self.alignments.values())

    def for_relation(self, relation: IRI) -> Optional[RelationAlignment]:
        """The per-relation alignment for ``relation`` (``None`` if absent)."""
        return self.alignments.get(relation)

    def add(self, alignment: RelationAlignment) -> None:
        """Register the alignment of one query relation."""
        self.alignments[alignment.relation.relation] = alignment

    # ------------------------------------------------------------------ #
    def accepted_rules(
        self, threshold: Optional[float] = None, min_support: Optional[int] = None
    ) -> List[SubsumptionRule]:
        """All accepted subsumption rules across query relations."""
        effective_threshold = (
            threshold if threshold is not None else self.config.confidence_threshold
        )
        effective_support = (
            min_support if min_support is not None else self.config.min_support
        )
        rules: List[SubsumptionRule] = []
        for alignment in self.alignments.values():
            rules.extend(alignment.accepted(effective_threshold, effective_support))
        return rules

    def predicted_pairs(
        self, threshold: Optional[float] = None, min_support: Optional[int] = None
    ) -> Set[Tuple[IRI, IRI]]:
        """Accepted ``(premise relation, conclusion relation)`` IRI pairs."""
        return {
            (rule.premise.relation, rule.conclusion.relation)
            for rule in self.accepted_rules(threshold, min_support)
        }

    def scored_pairs(self) -> List[Tuple[IRI, IRI, float]]:
        """Every scored ``(premise, conclusion, confidence)`` triple."""
        scored = []
        for alignment in self.alignments.values():
            for candidate in alignment.candidates:
                scored.append(
                    (
                        candidate.rule.premise.relation,
                        candidate.rule.conclusion.relation,
                        candidate.rule.confidence,
                    )
                )
        return scored

    def equivalences(
        self, threshold: Optional[float] = None, min_support: Optional[int] = None
    ) -> List[EquivalenceRule]:
        """All accepted equivalence rules across query relations."""
        effective_threshold = (
            threshold if threshold is not None else self.config.confidence_threshold
        )
        effective_support = (
            min_support if min_support is not None else self.config.min_support
        )
        equivalences: List[EquivalenceRule] = []
        for alignment in self.alignments.values():
            equivalences.extend(alignment.equivalences(effective_threshold, effective_support))
        return equivalences

    def total_queries(self) -> float:
        """Total endpoint queries issued during the run (both endpoints)."""
        return sum(stats.get("queries", 0.0) for stats in self.query_statistics.values())

    def summary(self) -> str:
        """A small human-readable summary."""
        accepted = self.accepted_rules()
        lines = [
            f"Alignment {self.direction}",
            f"  query relations : {len(self.alignments)}",
            f"  accepted rules  : {len(accepted)} "
            f"(τ > {self.config.confidence_threshold}, {self.config.confidence_measure})",
            f"  endpoint queries: {self.total_queries():.0f}",
        ]
        return "\n".join(lines)
