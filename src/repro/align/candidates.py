"""Candidate relation discovery.

"Candidate relations r′ may be found by sampling r(x, y), then considering
all r′ such that r′(x, y) for some sample." (§2.1)

Concretely: sample facts of the query relation ``r`` from the source KB
``K``, translate both arguments into the target KB ``K′`` through the
``sameAs`` set, and ask ``K′`` which relations hold between the translated
pairs.  For entity-literal relations the object cannot be translated, so
candidates are instead the literal-valued relations of the translated
subjects whose values match under the literal matcher.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.endpoint.client import EndpointClient
from repro.kb.sameas import SameAsIndex
from repro.rdf.namespace import Namespace, SAME_AS
from repro.rdf.terms import IRI, Literal, Term, is_entity_term
from repro.align.config import AlignmentConfig


@dataclass(frozen=True)
class Candidate:
    """A candidate relation with the evidence that proposed it."""

    relation: IRI
    hits: int

    def __str__(self) -> str:
        return f"{self.relation.local_name} (hits={self.hits})"


class CandidateFinder:
    """Finds candidate relations in the target KB for one query relation.

    Parameters
    ----------
    source:
        Client of the source KB ``K`` (where the query relation lives).
    target:
        Client of the target KB ``K′`` (where candidates are searched).
    links:
        The ``sameAs`` entity equivalence set between the two KBs.
    target_namespace:
        Namespace of the target KB's entities, used to pick the right
        representative out of a ``sameAs`` equivalence class.
    config:
        Alignment configuration (sampling sizes, literal matcher, seed).
    """

    def __init__(
        self,
        source: EndpointClient,
        target: EndpointClient,
        links: SameAsIndex,
        target_namespace: Namespace,
        config: Optional[AlignmentConfig] = None,
    ):
        self.source = source
        self.target = target
        self.links = links
        self.target_namespace = target_namespace
        self.config = config or AlignmentConfig()
        self._random = random.Random(self.config.random_seed)

    # ------------------------------------------------------------------ #
    def find(self, relation: IRI) -> List[Candidate]:
        """Candidate target relations for the source relation ``relation``.

        Candidates are ranked by the number of sampled source facts they
        co-occur with ("hits"), descending, and truncated to
        ``config.max_candidates``.
        """
        sample_facts = self._sample_source_facts(relation)
        if not sample_facts:
            return []

        entity_pairs, literal_pairs = self._translate_facts(sample_facts)

        hit_counts: Dict[IRI, int] = {}
        self._count_entity_candidates(entity_pairs, hit_counts)
        self._count_literal_candidates(literal_pairs, hit_counts)
        hit_counts.pop(SAME_AS, None)

        candidates = [
            Candidate(relation=candidate_relation, hits=hits)
            for candidate_relation, hits in hit_counts.items()
        ]
        candidates.sort(key=lambda c: (-c.hits, c.relation.value))
        if self.config.max_candidates is not None:
            candidates = candidates[: self.config.max_candidates]
        return candidates

    # ------------------------------------------------------------------ #
    def _sample_source_facts(self, relation: IRI) -> List[Tuple[Term, Term]]:
        """A pseudo-random sample of facts of the query relation.

        Two pages at independent offsets are fetched so that relations
        whose extension is the union of several underlying populations
        (e.g. ``creatorOf`` = composers ∪ writers) are not sampled from a
        single contiguous region only.
        """
        sample_size = self.config.candidate_sample_size
        total = self.source.count_facts(relation)
        if total == 0:
            return []
        page_size = max(1, sample_size // 2)
        max_offset = max(0, total - page_size)

        facts: List[Tuple[Term, Term]] = []
        seen: set = set()
        for _ in range(2):
            offset = self._random.randint(0, max_offset) if max_offset > 0 else 0
            page = self.source.facts(relation, limit=page_size, offset=offset)
            if not page and offset > 0:
                page = self.source.facts(relation, limit=page_size)
            for fact in page:
                if fact not in seen:
                    seen.add(fact)
                    facts.append(fact)
        return facts

    def _translate_facts(
        self, facts: List[Tuple[Term, Term]]
    ) -> Tuple[List[Tuple[Term, Term]], List[Tuple[Term, Literal]]]:
        """Split sampled facts into translated entity pairs and literal pairs.

        Facts whose subject has no ``sameAs`` image in the target KB are
        dropped (they cannot contribute evidence either way); entity
        objects without an image are likewise dropped, mirroring the
        paper's "do not punish for missing links" rule.
        """
        entity_pairs: List[Tuple[Term, Term]] = []
        literal_pairs: List[Tuple[Term, Literal]] = []
        for subject, obj in facts:
            translated_subject = self.links.translate(subject, self.target_namespace)
            if translated_subject is None:
                continue
            if isinstance(obj, Literal):
                literal_pairs.append((translated_subject, obj))
                continue
            if is_entity_term(obj):
                translated_object = self.links.translate(obj, self.target_namespace)
                if translated_object is not None:
                    entity_pairs.append((translated_subject, translated_object))
        return entity_pairs, literal_pairs

    def _count_entity_candidates(
        self, pairs: List[Tuple[Term, Term]], hit_counts: Dict[IRI, int]
    ) -> None:
        if not pairs:
            return
        for _, relation, _ in self.target.relations_between_batch(pairs):
            hit_counts[relation] = hit_counts.get(relation, 0) + 1

    def _count_literal_candidates(
        self, pairs: List[Tuple[Term, Literal]], hit_counts: Dict[IRI, int]
    ) -> None:
        if not pairs:
            return
        subjects = sorted({subject for subject, _ in pairs}, key=str)
        descriptions = self.target.describe_subjects(subjects)
        by_subject: Dict[Term, List[Tuple[IRI, Term]]] = {}
        for subject, relation, obj in descriptions:
            by_subject.setdefault(subject, []).append((relation, obj))
        matcher = self.config.literal_matcher
        for subject, source_literal in pairs:
            for relation, obj in by_subject.get(subject, []):
                if isinstance(obj, Literal) and matcher.matches(obj, source_literal):
                    hit_counts[relation] = hit_counts.get(relation, 0) + 1
