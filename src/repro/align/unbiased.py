"""Unbiased Sample Extraction (UBS) — the paper's contribution (§2.2).

The PCA measure evaluated on a small random sample is fooled in two ways:

* **Subsumptions mistaken for equivalences** — e.g. ``composerOf ⇒
  creatorOf`` holds, but a random sample of composers who only composed
  makes the reverse implication look true as well.
* **Overlaps mistaken for subsumptions** — e.g. ``hasProducer ⇒
  directedBy`` looks true on a sample of movies whose producer also
  directed.

Both failure modes are cured by *contradiction-seeking* samples built from
two sibling candidates ``r′`` and ``r″`` that are (provisionally) subsumed
by the same query relation ``r``: subjects ``x`` with ``r′(x, y1)``,
``r″(x, y2)`` and ``¬r′(x, y2)``.  A single contradicting sample suffices
to prune a wrong candidate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.endpoint.client import EndpointClient
from repro.kb.sameas import SameAsIndex
from repro.rdf.namespace import Namespace
from repro.rdf.terms import IRI, Literal, Term, is_entity_term
from repro.align.config import AlignmentConfig
from repro.align.evidence import EvidenceSet, SubjectEvidence


@dataclass
class UBSReport:
    """Outcome of the unbiased check for one candidate rule.

    Attributes
    ----------
    candidate:
        The candidate relation ``r″`` that was checked.
    contradictions:
        Number of unbiased samples contradicting ``candidate ⇒ r``:
        samples where ``r`` holds for the sibling's object but not for the
        candidate's object.
    confirmations:
        Number of unbiased samples where the candidate's object *is* an
        ``r`` object (supporting the rule).
    extra_evidence:
        Evidence records contributed by the unbiased samples, to be merged
        into the candidate's evidence set before re-scoring.
    disagreement_subjects:
        The premise-KB subjects of the unbiased samples (used again when
        testing the reverse implication for equivalence).
    """

    candidate: IRI
    contradictions: int = 0
    confirmations: int = 0
    extra_evidence: EvidenceSet = field(default_factory=EvidenceSet)
    disagreement_subjects: List[Term] = field(default_factory=list)

    def prunes(self, contradiction_threshold: int) -> bool:
        """Whether the candidate should be pruned at the given threshold.

        A candidate is pruned when it accumulated at least
        ``contradiction_threshold`` contradicting samples *and* the
        contradictions outnumber the confirmations.  The second condition
        is a robustness addition over the paper's "one case suffices":
        when the conclusion KB is itself incomplete, a single missing fact
        can masquerade as a contradiction against a perfectly correct rule,
        so the decision compares the two signals instead of trusting one
        counter-example blindly.  With clean data (no confirmations for a
        wrong candidate) the behaviour reduces to the paper's rule.
        """
        return (
            self.contradictions >= contradiction_threshold
            and self.contradictions > self.confirmations
        )


class UnbiasedSampleExtractor:
    """Implements the two UBS filtering strategies.

    Parameters
    ----------
    premise_client:
        Client of the KB ``K′`` holding the candidate relations.
    conclusion_client:
        Client of the KB ``K`` holding the query relation.
    links:
        The ``sameAs`` equivalence set between the two KBs.
    conclusion_namespace:
        Namespace of ``K``'s entities (translation target).
    config:
        Alignment configuration (``ubs_sample_size``,
        ``ubs_contradiction_threshold``, literal matcher).
    """

    def __init__(
        self,
        premise_client: EndpointClient,
        conclusion_client: EndpointClient,
        links: SameAsIndex,
        conclusion_namespace: Namespace,
        config: Optional[AlignmentConfig] = None,
    ):
        self.premise_client = premise_client
        self.conclusion_client = conclusion_client
        self.links = links
        self.conclusion_namespace = conclusion_namespace
        self.config = config or AlignmentConfig()

    # ------------------------------------------------------------------ #
    def check_candidate(
        self,
        candidate: IRI,
        siblings: Sequence[IRI],
        conclusion_relation: IRI,
    ) -> UBSReport:
        """Check ``candidate ⇒ conclusion_relation`` against all siblings.

        For every sibling ``r′`` the extractor fetches unbiased samples
        ``r′(x, y1) ∧ candidate(x, y2) ∧ ¬r′(x, y2)`` and looks up the
        ``r`` facts of ``x`` in the conclusion KB:

        * if ``r(x, y1)`` holds but ``r(x, y2)`` does not, the sample
          contradicts the candidate (overlap mistaken for subsumption);
        * if ``r(x, y2)`` holds, the sample supports it.
        """
        report = UBSReport(candidate=candidate)
        for sibling in siblings:
            if sibling == candidate:
                continue
            # One subject can yield many (y1, y2) combinations; fetch a
            # larger page and keep one disagreement per distinct subject so
            # the unbiased sample covers several entities, not one entity
            # many times.
            raw_samples = self.premise_client.disagreement_samples(
                primary=sibling,
                sibling=candidate,
                limit=self.config.ubs_sample_size * 4,
            )
            samples: List[Tuple[Term, Term, Term]] = []
            seen_subjects: Set[Term] = set()
            for sample in raw_samples:
                if sample[0] in seen_subjects:
                    continue
                seen_subjects.add(sample[0])
                samples.append(sample)
                if len(samples) >= self.config.ubs_sample_size:
                    break
            if not samples:
                continue
            self._score_samples(samples, conclusion_relation, report)
            if report.prunes(self.config.ubs_contradiction_threshold):
                # "To eliminate a wrong relation we need only one case" —
                # stop querying as soon as the threshold is reached.
                break
        return report

    # ------------------------------------------------------------------ #
    def _score_samples(
        self,
        samples: Sequence[Tuple[Term, Term, Term]],
        conclusion_relation: IRI,
        report: UBSReport,
    ) -> None:
        """Translate the samples and count contradictions / confirmations."""
        translated: List[Tuple[Term, Term, Optional[Term], Optional[Term]]] = []
        conclusion_subjects: List[Term] = []
        for subject, sibling_object, candidate_object in samples:
            translated_subject = self.links.translate(subject, self.conclusion_namespace)
            if translated_subject is None:
                continue
            translated_sibling = self._translate_object(sibling_object)
            translated_candidate = self._translate_object(candidate_object)
            if translated_candidate is None and self.config.require_sameas_objects:
                # Without a translation for the candidate's object we cannot
                # tell whether K knows the fact; skip rather than punish.
                continue
            translated.append(
                (subject, translated_subject, translated_sibling, translated_candidate)
            )
            conclusion_subjects.append(translated_subject)

        if not translated:
            return

        conclusion_facts = self.conclusion_client.facts_of_subjects(
            sorted(set(conclusion_subjects), key=str), conclusion_relation
        )
        objects_by_subject: Dict[Term, List[Term]] = {}
        for subject, obj in conclusion_facts:
            objects_by_subject.setdefault(subject, []).append(obj)

        matcher = self.config.literal_matcher
        for subject, translated_subject, translated_sibling, translated_candidate in translated:
            conclusion_objects = objects_by_subject.get(translated_subject, [])
            sibling_supported = translated_sibling is not None and self._object_in(
                translated_sibling, conclusion_objects, matcher
            )
            candidate_supported = translated_candidate is not None and self._object_in(
                translated_candidate, conclusion_objects, matcher
            )

            if candidate_supported:
                report.confirmations += 1
            elif sibling_supported and conclusion_objects:
                # K knows r facts for x (including the sibling's object) but
                # not the candidate's object: a genuine counter-example even
                # under the partial-completeness assumption.
                report.contradictions += 1

            record = SubjectEvidence(
                subject=translated_subject,
                premise_objects=(
                    [translated_candidate] if translated_candidate is not None else []
                ),
                conclusion_objects=list(conclusion_objects),
                from_unbiased_sampling=True,
            )
            report.extra_evidence.add(record)
            report.disagreement_subjects.append(subject)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _object_in(
        obj: Term, candidates: Sequence[Term], matcher
    ) -> bool:
        for candidate in candidates:
            if obj == candidate:
                return True
            if (
                isinstance(obj, Literal)
                and isinstance(candidate, Literal)
                and matcher is not None
                and matcher.matches(obj, candidate)
            ):
                return True
        return False

    def _translate_object(self, obj: Term) -> Optional[Term]:
        if isinstance(obj, Literal):
            return obj
        if is_entity_term(obj):
            return self.links.translate(obj, self.conclusion_namespace)
        return None
