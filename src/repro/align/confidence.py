"""The two ILP confidence measures of the paper.

Equation (1), closed world assumption::

    cwa_conf(r′ ⇒ r) = #(x,y): r′(x,y) ∧ r(x,y)  /  #(x,y): r′(x,y)

Equation (2), partial completeness assumption (AMIE-style)::

    pca_conf(r′ ⇒ r) = #(x,y): r′(x,y) ∧ r(x,y)  /  #(x,y): r′(x,y) ∧ ∃y′ r(x,y′)

Both are exposed as plain count-based functions and as helpers taking an
:class:`~repro.align.evidence.EvidenceSet`.
"""

from __future__ import annotations

from repro.errors import AlignmentError
from repro.align.evidence import EvidenceSet


def cwa_confidence(positives: int, premise_pairs: int) -> float:
    """Closed-world confidence from raw counts (Eq. 1).

    Parameters
    ----------
    positives:
        Number of pairs satisfying both the premise and the conclusion.
    premise_pairs:
        Number of pairs satisfying the premise.

    Returns
    -------
    float
        ``positives / premise_pairs``; 0.0 when the denominator is 0.
    """
    _validate_counts(positives, premise_pairs)
    if premise_pairs == 0:
        return 0.0
    return positives / premise_pairs


def pca_confidence(positives: int, pca_body_pairs: int) -> float:
    """Partial-completeness confidence from raw counts (Eq. 2).

    Parameters
    ----------
    positives:
        Number of pairs satisfying both the premise and the conclusion.
    pca_body_pairs:
        Number of premise pairs whose subject has at least one conclusion
        fact (the PCA denominator).

    Returns
    -------
    float
        ``positives / pca_body_pairs``; 0.0 when the denominator is 0.
    """
    _validate_counts(positives, pca_body_pairs)
    if pca_body_pairs == 0:
        return 0.0
    return positives / pca_body_pairs


def cwa_confidence_of(evidence: EvidenceSet) -> float:
    """Eq. 1 evaluated on an evidence set."""
    return cwa_confidence(evidence.positive_pairs(), evidence.premise_pairs())


def pca_confidence_of(evidence: EvidenceSet) -> float:
    """Eq. 2 evaluated on an evidence set."""
    return pca_confidence(evidence.positive_pairs(), evidence.pca_body_pairs())


def confidence_of(evidence: EvidenceSet, measure: str) -> float:
    """Dispatch on the measure name (``"pca"`` or ``"cwa"``)."""
    if measure == "pca":
        return pca_confidence_of(evidence)
    if measure == "cwa":
        return cwa_confidence_of(evidence)
    raise AlignmentError(f"Unknown confidence measure: {measure!r}")


def support_of(evidence: EvidenceSet) -> int:
    """Rule support: the number of shared pairs (the numerator)."""
    return evidence.positive_pairs()


def _validate_counts(positives: int, denominator: int) -> None:
    if positives < 0 or denominator < 0:
        raise AlignmentError("Confidence counts must be non-negative")
    if positives > denominator and denominator > 0:
        raise AlignmentError(
            f"positives ({positives}) cannot exceed the denominator ({denominator})"
        )
