"""Alignment rules: subsumption and equivalence.

A subsumption rule ``r′ ⇒ r`` states that every fact of the *premise*
relation ``r′`` (in one KB) is also a fact of the *conclusion* relation
``r`` (in the other KB), modulo ``sameAs`` identity of the arguments.  An
equivalence ``r′ ⇔ r`` is a double subsumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.rdf.terms import IRI


@dataclass(frozen=True)
class RelationRef:
    """A relation together with the name of the KB it belongs to."""

    kb: str
    relation: IRI

    @property
    def name(self) -> str:
        """Readable ``kb:localName`` form."""
        return f"{self.kb}:{self.relation.local_name}"

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class SubsumptionRule:
    """A scored subsumption ``premise ⇒ conclusion``.

    Attributes
    ----------
    premise:
        The relation on the rule body side (``r′`` in the paper).
    conclusion:
        The relation on the rule head side (``r``).
    confidence:
        Confidence under the configured measure, in [0, 1].
    support:
        Number of sampled ``(x, y)`` pairs satisfying both relations.
    measure:
        ``"pca"`` or ``"cwa"`` — the measure that produced ``confidence``.
    body_size:
        Denominator of the confidence (number of counted premise pairs).
    contradictions:
        Number of contradicting unbiased samples found by UBS (0 when UBS
        was not used or found none).
    pruned_by_ubs:
        True when UBS rejected the rule regardless of its confidence.
    """

    premise: RelationRef
    conclusion: RelationRef
    confidence: float
    support: int
    measure: str
    body_size: int = 0
    contradictions: int = 0
    pruned_by_ubs: bool = False

    def __str__(self) -> str:
        return (
            f"{self.premise} => {self.conclusion} "
            f"[{self.measure}={self.confidence:.3f}, support={self.support}]"
        )

    def accepted(self, threshold: float, min_support: int = 1) -> bool:
        """Whether the rule is accepted at threshold ``τ``.

        A rule is accepted when its confidence is strictly greater than
        ``threshold`` (the paper writes ``τ > 0.3``), its support is at
        least ``min_support`` and UBS did not prune it.
        """
        if self.pruned_by_ubs:
            return False
        if self.support < min_support:
            return False
        return self.confidence > threshold

    def reversed_key(self) -> tuple:
        """Key identifying the reverse rule (used by equivalence tests)."""
        return (self.conclusion, self.premise)


@dataclass(frozen=True)
class EquivalenceRule:
    """An equivalence ``left ⇔ right`` backed by two subsumptions."""

    forward: SubsumptionRule
    backward: SubsumptionRule

    def __post_init__(self) -> None:
        if (
            self.forward.premise != self.backward.conclusion
            or self.forward.conclusion != self.backward.premise
        ):
            raise ValueError("Equivalence requires mutually reversed subsumptions")

    @property
    def left(self) -> RelationRef:
        """The premise of the forward subsumption."""
        return self.forward.premise

    @property
    def right(self) -> RelationRef:
        """The conclusion of the forward subsumption."""
        return self.forward.conclusion

    @property
    def confidence(self) -> float:
        """Conservative confidence: the minimum of the two directions."""
        return min(self.forward.confidence, self.backward.confidence)

    def accepted(self, threshold: float, min_support: int = 1) -> bool:
        """Accepted iff both directions are accepted."""
        return self.forward.accepted(threshold, min_support) and self.backward.accepted(
            threshold, min_support
        )

    def __str__(self) -> str:
        return f"{self.left} <=> {self.right} [confidence={self.confidence:.3f}]"


def make_rule_key(premise: RelationRef, conclusion: RelationRef) -> tuple:
    """Canonical dictionary key for a subsumption."""
    return (premise.kb, premise.relation.value, conclusion.kb, conclusion.relation.value)
