"""Exception hierarchy shared by all repro subpackages.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the layer that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class RDFError(ReproError):
    """Malformed RDF terms, triples, or serialisations."""


class ParseError(ReproError):
    """A document or query could not be parsed.

    Attributes
    ----------
    line, column:
        1-based position of the offending token when known, else ``None``.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" (line {line}" + (f", column {column}" if column is not None else "") + ")"
        super().__init__(message + location)
        self.line = line
        self.column = column


class SparqlError(ReproError):
    """A SPARQL query is invalid or unsupported by the engine subset."""


class ConfigError(ReproError):
    """A ``REPRO_*`` environment variable holds a malformed value.

    Raised by :mod:`repro.obs.config` instead of silently falling back to
    a default, so typos in tuning knobs surface immediately rather than
    as mystery performance regressions.
    """


class StoreError(ReproError):
    """Triple store misuse (e.g. adding malformed triples)."""


class SnapshotCorruptError(StoreError):
    """An on-disk snapshot failed validation and cannot be opened.

    Raised by :mod:`repro.store.persist` when a snapshot file is
    truncated, has a bad magic/version, or any section's checksum does not
    match its header entry.  Every corruption failure mode maps to this
    one exception so callers can fall back to a full rebuild with a single
    ``except`` clause.
    """


class ShardSkewWarning(UserWarning):
    """A sharded store's last shard has grown far beyond its siblings.

    Subject-range boundaries are frozen by the first bulk load, so terms
    interned afterwards always route to the last shard's open-ended range.
    Long-lived mutable stores therefore pile new subjects into that shard;
    once it exceeds the configured skew threshold this warning fires (once
    per store) to point at ``rebalance()``-style re-partitioning.
    """


class EndpointError(ReproError):
    """Base class for endpoint access failures."""


class QueryBudgetExceeded(EndpointError):
    """The access policy's query quota has been exhausted."""


class WorkerCrashError(EndpointError):
    """A shard worker process died while serving a scattered task.

    Raised by :class:`repro.shard.workers.ProcessShardExecutor` when a
    worker exits (or is killed) before completing a dispatched task.  It
    derives from :class:`EndpointError` so the endpoint simulation's wave
    machinery captures it per query — the failed query's budget slot is
    refunded and the rest of the wave proceeds — while the executor
    respawns the dead worker for subsequent waves.
    """


class ResultTruncated(EndpointError):
    """A query produced more rows than the endpoint policy allows.

    This is only raised when the policy is configured to *fail* on
    truncation; by default endpoints silently cap result sizes like public
    SPARQL endpoints do.
    """


class AlignmentError(ReproError):
    """Relation alignment could not be performed."""


class EvaluationError(ReproError):
    """Evaluation harness misuse (e.g. missing gold standard entries)."""


class SyntheticDataError(ReproError):
    """Synthetic dataset generation received inconsistent parameters."""
