"""Set-based similarities: Jaccard and Dice."""

from __future__ import annotations

from typing import Collection, Set

from repro.similarity.normalize import tokenize_words


def jaccard_similarity(left: Collection, right: Collection) -> float:
    """Jaccard similarity of two collections (treated as sets), in [0, 1]."""
    left_set: Set = set(left)
    right_set: Set = set(right)
    if not left_set and not right_set:
        return 1.0
    if not left_set or not right_set:
        return 0.0
    return len(left_set & right_set) / len(left_set | right_set)


def dice_coefficient(left: Collection, right: Collection) -> float:
    """Sørensen-Dice coefficient of two collections, in [0, 1]."""
    left_set: Set = set(left)
    right_set: Set = set(right)
    if not left_set and not right_set:
        return 1.0
    if not left_set or not right_set:
        return 0.0
    return 2 * len(left_set & right_set) / (len(left_set) + len(right_set))


def token_jaccard(left: str, right: str) -> float:
    """Jaccard similarity of the word-token sets of two strings."""
    return jaccard_similarity(tokenize_words(left), tokenize_words(right))
