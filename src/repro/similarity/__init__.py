"""String similarity functions.

SOFYA aligns entity-literal relations by matching literal values across KBs
with string similarity functions (§2.2: "If r_sub is an entity-literal
relation, we retrieve from K facts of the samples S and apply string
similarity functions to align the literals").  This package provides the
classic measures plus a configurable :class:`LiteralMatcher` facade used by
the alignment layer.
"""

from repro.similarity.normalize import normalize_string, tokenize_words
from repro.similarity.levenshtein import levenshtein_distance, levenshtein_similarity
from repro.similarity.jaro import jaro_similarity, jaro_winkler_similarity
from repro.similarity.ngram import ngram_similarity, ngrams, trigram_similarity
from repro.similarity.jaccard import dice_coefficient, jaccard_similarity, token_jaccard
from repro.similarity.literal_match import LiteralMatcher, SIMILARITY_FUNCTIONS

__all__ = [
    "normalize_string",
    "tokenize_words",
    "levenshtein_distance",
    "levenshtein_similarity",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "ngrams",
    "ngram_similarity",
    "trigram_similarity",
    "jaccard_similarity",
    "token_jaccard",
    "dice_coefficient",
    "LiteralMatcher",
    "SIMILARITY_FUNCTIONS",
]
