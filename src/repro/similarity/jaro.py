"""Jaro and Jaro-Winkler similarity."""

from __future__ import annotations


def jaro_similarity(left: str, right: str) -> float:
    """Jaro similarity in [0, 1].

    Counts characters that match within a sliding window of half the longer
    string, then discounts transpositions.
    """
    if left == right:
        return 1.0
    if not left or not right:
        return 0.0

    match_window = max(len(left), len(right)) // 2 - 1
    match_window = max(match_window, 0)

    left_matched = [False] * len(left)
    right_matched = [False] * len(right)
    matches = 0

    for i, left_char in enumerate(left):
        start = max(0, i - match_window)
        end = min(i + match_window + 1, len(right))
        for j in range(start, end):
            if right_matched[j] or right[j] != left_char:
                continue
            left_matched[i] = True
            right_matched[j] = True
            matches += 1
            break

    if matches == 0:
        return 0.0

    transpositions = 0
    j = 0
    for i, matched in enumerate(left_matched):
        if not matched:
            continue
        while not right_matched[j]:
            j += 1
        if left[i] != right[j]:
            transpositions += 1
        j += 1
    transpositions //= 2

    return (
        matches / len(left) + matches / len(right) + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler_similarity(left: str, right: str, prefix_scale: float = 0.1) -> float:
    """Jaro-Winkler similarity: Jaro boosted by the common prefix length.

    ``prefix_scale`` is clamped to the standard maximum of 0.25 to keep the
    result within [0, 1].
    """
    prefix_scale = min(max(prefix_scale, 0.0), 0.25)
    jaro = jaro_similarity(left, right)
    prefix_length = 0
    for left_char, right_char in zip(left[:4], right[:4]):
        if left_char != right_char:
            break
        prefix_length += 1
    return jaro + prefix_length * prefix_scale * (1.0 - jaro)
