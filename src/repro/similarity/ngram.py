"""Character n-gram similarity."""

from __future__ import annotations

from typing import List, Set


def ngrams(text: str, n: int = 3, pad: bool = True) -> List[str]:
    """Character n-grams of ``text``.

    With ``pad=True`` the string is padded with ``n - 1`` boundary markers
    (``#``) on each side so that short strings still produce informative
    grams.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if pad:
        padding = "#" * (n - 1)
        text = f"{padding}{text}{padding}"
    if len(text) < n:
        return [text] if text else []
    return [text[i : i + n] for i in range(len(text) - n + 1)]


def ngram_similarity(left: str, right: str, n: int = 3) -> float:
    """Jaccard similarity of the two strings' n-gram sets, in [0, 1]."""
    left_grams: Set[str] = set(ngrams(left, n))
    right_grams: Set[str] = set(ngrams(right, n))
    if not left_grams and not right_grams:
        return 1.0
    if not left_grams or not right_grams:
        return 0.0
    intersection = len(left_grams & right_grams)
    union = len(left_grams | right_grams)
    return intersection / union


def trigram_similarity(left: str, right: str) -> float:
    """``ngram_similarity`` with ``n=3`` (the most common choice)."""
    return ngram_similarity(left, right, n=3)
