"""String normalisation used before similarity comparison.

Literal values coming from different KBs differ in case, punctuation,
underscores-vs-spaces and diacritics.  Normalising both sides first makes
the similarity scores meaningful.
"""

from __future__ import annotations

import re
import unicodedata
from typing import List

_WHITESPACE_RE = re.compile(r"\s+")
_PUNCTUATION_RE = re.compile(r"[^\w\s]")


def strip_accents(text: str) -> str:
    """Remove diacritical marks (``"Chopin né Szopen"`` → ``"Chopin ne Szopen"``)."""
    decomposed = unicodedata.normalize("NFKD", text)
    return "".join(ch for ch in decomposed if not unicodedata.combining(ch))


def normalize_string(
    text: str,
    lowercase: bool = True,
    remove_punctuation: bool = True,
    collapse_whitespace: bool = True,
    remove_accents: bool = True,
) -> str:
    """Normalise a string for comparison.

    The default pipeline: strip accents, lowercase, replace underscores by
    spaces, drop punctuation, collapse runs of whitespace.
    """
    result = text
    if remove_accents:
        result = strip_accents(result)
    if lowercase:
        result = result.lower()
    result = result.replace("_", " ")
    if remove_punctuation:
        result = _PUNCTUATION_RE.sub(" ", result)
    if collapse_whitespace:
        result = _WHITESPACE_RE.sub(" ", result).strip()
    return result


def tokenize_words(text: str, normalize: bool = True) -> List[str]:
    """Split a string into word tokens (after optional normalisation)."""
    if normalize:
        text = normalize_string(text)
    return [token for token in text.split(" ") if token]
