"""Literal matching facade used for entity-literal relations.

The matcher decides whether two literal values (coming from different KBs)
should be considered "the same value" for the purposes of counting a shared
fact.  Numeric and date-like literals are compared by value with a small
relative tolerance; strings are normalised and compared with a configurable
similarity function against a threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.rdf.terms import Literal
from repro.similarity.jaccard import token_jaccard
from repro.similarity.jaro import jaro_winkler_similarity
from repro.similarity.levenshtein import levenshtein_similarity
from repro.similarity.ngram import trigram_similarity
from repro.similarity.normalize import normalize_string

#: Registry of string similarity functions selectable by name.
SIMILARITY_FUNCTIONS: Dict[str, Callable[[str, str], float]] = {
    "levenshtein": levenshtein_similarity,
    "jaro_winkler": jaro_winkler_similarity,
    "trigram": trigram_similarity,
    "token_jaccard": token_jaccard,
}


@dataclass(frozen=True)
class LiteralMatcher:
    """Configurable equality test for literals across KBs.

    Parameters
    ----------
    similarity:
        Name of the string similarity function (see
        :data:`SIMILARITY_FUNCTIONS`).
    threshold:
        Minimum similarity for two strings to count as matching.
    numeric_tolerance:
        Maximum relative difference for two numeric literals to match.
    normalize:
        Whether to normalise strings before comparison.
    """

    similarity: str = "jaro_winkler"
    threshold: float = 0.9
    numeric_tolerance: float = 0.001
    normalize: bool = True

    def __post_init__(self) -> None:
        if self.similarity not in SIMILARITY_FUNCTIONS:
            raise ValueError(
                f"Unknown similarity function {self.similarity!r}; "
                f"choose one of {sorted(SIMILARITY_FUNCTIONS)}"
            )
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        if self.numeric_tolerance < 0:
            raise ValueError("numeric_tolerance must be non-negative")

    # ------------------------------------------------------------------ #
    def score(self, left: Literal, right: Literal) -> float:
        """Similarity score of two literals in [0, 1]."""
        numeric_score = self._numeric_score(left, right)
        if numeric_score is not None:
            return numeric_score
        left_text = left.lexical
        right_text = right.lexical
        if self.normalize:
            left_text = normalize_string(left_text)
            right_text = normalize_string(right_text)
        if not left_text and not right_text:
            return 1.0
        return SIMILARITY_FUNCTIONS[self.similarity](left_text, right_text)

    def matches(self, left: Literal, right: Literal) -> bool:
        """Whether the two literals should be treated as the same value."""
        return self.score(left, right) >= self.threshold

    # ------------------------------------------------------------------ #
    def _numeric_score(self, left: Literal, right: Literal) -> float | None:
        """Score for numeric pairs (``None`` when not both numeric)."""
        if not (left.is_numeric() and right.is_numeric()):
            return None
        try:
            left_value = float(left.lexical)
            right_value = float(right.lexical)
        except ValueError:
            return None
        if left_value == right_value:
            return 1.0
        scale = max(abs(left_value), abs(right_value))
        if scale == 0:
            return 1.0
        relative_difference = abs(left_value - right_value) / scale
        return 1.0 if relative_difference <= self.numeric_tolerance else 0.0
