"""Levenshtein (edit) distance and the derived similarity."""

from __future__ import annotations


def levenshtein_distance(left: str, right: str) -> int:
    """Minimum number of single-character edits turning ``left`` into ``right``.

    Standard dynamic programming with two rolling rows: O(len(left) *
    len(right)) time, O(min(len)) memory.
    """
    if left == right:
        return 0
    if not left:
        return len(right)
    if not right:
        return len(left)
    # Keep the shorter string in the inner dimension for memory.
    if len(right) < len(left):
        left, right = right, left

    previous = list(range(len(left) + 1))
    for row_index, right_char in enumerate(right, start=1):
        current = [row_index]
        for col_index, left_char in enumerate(left, start=1):
            insert_cost = current[col_index - 1] + 1
            delete_cost = previous[col_index] + 1
            substitute_cost = previous[col_index - 1] + (0 if left_char == right_char else 1)
            current.append(min(insert_cost, delete_cost, substitute_cost))
        previous = current
    return previous[-1]


def levenshtein_similarity(left: str, right: str) -> float:
    """Normalised Levenshtein similarity in [0, 1].

    ``1 - distance / max(len)``; two empty strings are fully similar.
    """
    if not left and not right:
        return 1.0
    longest = max(len(left), len(right))
    return 1.0 - levenshtein_distance(left, right) / longest
