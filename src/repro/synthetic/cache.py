"""On-disk cache of generated scale worlds, keyed by spec hash.

Generating a 10M-triple world takes tens of seconds; benchmark and test
runs want to pay that once.  :func:`load_or_generate` keeps one snapshot
per distinct :class:`~repro.synthetic.stream.ScaleWorldSpec` under a
cache root, each entry a directory::

    <root>/<spec name>-<hash12>/
        manifest.json   spec hash + spec fields + build stats
        world.snap      single-store snapshot (dictionary included)

The entry name embeds the first 12 hex digits of a SHA-256 over the
canonical spec JSON *plus* the snapshot format version and the cache
format version — bumping either library format silently invalidates old
entries (they stop being addressed and age out via eviction).  A cached
entry is only trusted after its manifest hash matches and the snapshot
reopens with checksum verification; stale or corrupt entries are
regenerated in place.

Environment knobs:

* ``REPRO_WORLD_CACHE`` — relocate the cache root, or disable caching
  entirely with ``0`` / ``off`` / ``none`` / ``disabled`` / the empty
  string.
* ``REPRO_WORLD_CACHE_LIMIT`` — soft size cap in bytes; after each
  write, oldest entries (by mtime) are evicted until the cache fits.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.errors import SnapshotCorruptError
from repro.store import persist
from repro.store.triplestore import TripleStore
from repro.synthetic.stream import ScaleWorld, ScaleWorldSpec, generate_scale_world

#: Bumped when the cache layout (manifest fields, entry structure) changes.
CACHE_FORMAT = 1

#: Values of ``REPRO_WORLD_CACHE`` that disable caching.
_DISABLED = {"", "0", "off", "none", "disabled"}

_MANIFEST = "manifest.json"
_SNAPSHOT = "world.snap"


def cache_root() -> Optional[Path]:
    """The cache root directory, or ``None`` when caching is disabled."""
    value = os.environ.get("REPRO_WORLD_CACHE")
    if value is None:
        return Path.home() / ".cache" / "repro-worlds"
    if value.strip().lower() in _DISABLED:
        return None
    return Path(value)


def cache_limit_bytes() -> Optional[int]:
    """The soft cache size cap from ``REPRO_WORLD_CACHE_LIMIT``, if set."""
    value = os.environ.get("REPRO_WORLD_CACHE_LIMIT")
    if not value:
        return None
    try:
        limit = int(value)
    except ValueError:
        return None
    return limit if limit > 0 else None


def spec_cache_key(spec: ScaleWorldSpec) -> str:
    """SHA-256 hex digest identifying ``spec`` under the current formats."""
    payload = {
        "cache_format": CACHE_FORMAT,
        "snapshot_version": persist.VERSION,
        "spec": spec.canonical_dict(),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def entry_path(spec: ScaleWorldSpec, root: Path) -> Path:
    """The cache entry directory for ``spec`` under ``root``."""
    return root / f"{spec.name}-{spec_cache_key(spec)[:12]}"


@dataclass
class CachedWorld:
    """A world plus its cache provenance."""

    world: ScaleWorld
    cache_hit: bool
    path: Optional[Path]

    @property
    def store(self):
        return self.world.store

    @property
    def dictionary(self):
        return self.world.dictionary

    @property
    def spec(self) -> ScaleWorldSpec:
        return self.world.spec


# --------------------------------------------------------------------- #
# Load / store
# --------------------------------------------------------------------- #
def _try_open(spec: ScaleWorldSpec, entry: Path, mmap: bool) -> Optional[ScaleWorld]:
    """Open a cache entry, returning ``None`` when it is stale or corrupt."""
    manifest_path = entry / _MANIFEST
    snapshot_path = entry / _SNAPSHOT
    try:
        manifest = json.loads(manifest_path.read_text("utf-8"))
    except (OSError, ValueError):
        return None
    if manifest.get("spec_hash") != spec_cache_key(spec):
        return None
    try:
        store = TripleStore.open(snapshot_path, mmap=mmap, verify=True)
    except (SnapshotCorruptError, OSError, ValueError):
        return None
    if manifest.get("triples") != len(store):
        return None
    return ScaleWorld(
        spec=spec,
        store=store,
        dictionary=store.dictionary,
        build_seconds=float(manifest.get("build_seconds", 0.0)),
    )


def _write_entry(spec: ScaleWorldSpec, world: ScaleWorld, entry: Path) -> None:
    """Write ``world`` into ``entry`` atomically (stage then rename)."""
    staging = entry.with_name(entry.name + f".tmp-{os.getpid()}")
    if staging.exists():
        shutil.rmtree(staging)
    staging.mkdir(parents=True)
    try:
        world.store.save(staging / _SNAPSHOT)
        manifest = {
            "cache_format": CACHE_FORMAT,
            "snapshot_version": persist.VERSION,
            "spec_hash": spec_cache_key(spec),
            "spec": spec.canonical_dict(),
            "triples": world.triples,
            "terms": len(world.dictionary),
            "build_seconds": round(world.build_seconds, 6),
            "created": time.time(),
        }
        (staging / _MANIFEST).write_text(
            json.dumps(manifest, sort_keys=True, indent=2) + "\n", "utf-8"
        )
        if entry.exists():
            shutil.rmtree(entry)
        os.replace(staging, entry)
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise


def load_or_generate(
    spec: ScaleWorldSpec,
    *,
    mmap: bool = True,
    refresh: bool = False,
    root: Optional[Path] = None,
) -> CachedWorld:
    """Return ``spec``'s world from the cache, generating (and caching) on miss.

    A hit reopens the snapshot (mmap by default, with checksum
    verification) without regenerating anything.  Stale entries (hash
    mismatch after a spec or format change), corrupt snapshots and
    manifest damage all count as misses and are regenerated in place.
    ``refresh=True`` forces regeneration.  With caching disabled
    (``REPRO_WORLD_CACHE=off``) the world is generated directly.
    """
    cache_dir = root if root is not None else cache_root()
    if cache_dir is None:
        return CachedWorld(world=generate_scale_world(spec), cache_hit=False, path=None)
    entry = entry_path(spec, Path(cache_dir))
    if not refresh:
        cached = _try_open(spec, entry, mmap)
        if cached is not None:
            return CachedWorld(world=cached, cache_hit=True, path=entry)
    world = generate_scale_world(spec)
    _write_entry(spec, world, entry)
    evict(Path(cache_dir), keep=entry)
    # Reopen from the snapshot so hit and miss hand back the same kind of
    # store (frozen, snapshot-backed) — a miss differs only in build time.
    reopened = _try_open(spec, entry, mmap)
    if reopened is not None:
        reopened.build_seconds = world.build_seconds
        world = reopened
    return CachedWorld(world=world, cache_hit=False, path=entry)


# --------------------------------------------------------------------- #
# Eviction
# --------------------------------------------------------------------- #
def _entry_size(entry: Path) -> int:
    return sum(child.stat().st_size for child in entry.rglob("*") if child.is_file())


def evict(
    root: Path,
    *,
    limit_bytes: Optional[int] = None,
    keep: Optional[Path] = None,
) -> int:
    """Drop oldest entries until the cache fits ``limit_bytes``.

    The limit defaults to ``REPRO_WORLD_CACHE_LIMIT``; with neither set
    this is a no-op.  ``keep`` protects one entry (typically the one
    just written).  Returns the number of entries removed.  Leftover
    staging directories from interrupted writes are always removed.
    """
    if not root.is_dir():
        return 0
    removed = 0
    entries = []
    for child in sorted(root.iterdir()):
        if not child.is_dir():
            continue
        if ".tmp-" in child.name:
            shutil.rmtree(child, ignore_errors=True)
            removed += 1
            continue
        entries.append(child)
    limit = limit_bytes if limit_bytes is not None else cache_limit_bytes()
    if limit is None:
        return removed
    sized = [(entry.stat().st_mtime, _entry_size(entry), entry) for entry in entries]
    total = sum(size for _, size, _ in sized)
    for _, size, entry in sorted(sized):
        if total <= limit:
            break
        if keep is not None and entry == keep:
            continue
        shutil.rmtree(entry, ignore_errors=True)
        total -= size
        removed += 1
    return removed
