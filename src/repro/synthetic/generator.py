"""Deterministic generation of synthetic KB pairs from a :class:`WorldSpec`."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import SyntheticDataError
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.sameas import SameAsIndex
from repro.shard.sharded_store import ShardedTripleStore
from repro.rdf.terms import IRI, Literal, Term
from repro.rdf.triple import Triple
from repro.synthetic.schema import (
    CanonicalRelation,
    GroundTruth,
    KBSpec,
    RelationMapping,
    WorldSpec,
)

#: Canonical fact objects are either entity identifiers or literal payloads.
CanonicalObject = Union[str, int, float]
CanonicalFact = Tuple[str, CanonicalObject]

_SYLLABLES = [
    "an", "bel", "cor", "dan", "el", "fa", "gor", "hil", "is", "jon",
    "kar", "lu", "mar", "nor", "ol", "pra", "qui", "ros", "sta", "tur",
    "ul", "vin", "wes", "xen", "yor", "zam",
]


def _stable_hash(text: str) -> int:
    """A process-independent hash (Python's ``hash`` is salted per run)."""
    value = 0
    for char in text:
        value = (value * 131 + ord(char)) % 1_000_000_007
    return value


def _entity_display_name(rng: random.Random) -> str:
    """A pronounceable two-word display name (used for literal values)."""
    def word() -> str:
        return "".join(rng.choice(_SYLLABLES) for _ in range(rng.randint(2, 3))).capitalize()

    return f"{word()} {word()}"


@dataclass
class GeneratedWorld:
    """The output of the generator: two KBs, links, gold standard."""

    spec: WorldSpec
    kbs: Dict[str, KnowledgeBase]
    links: SameAsIndex
    ground_truth: GroundTruth
    canonical_facts: Dict[str, List[CanonicalFact]] = field(default_factory=dict)
    entities: Dict[str, List[str]] = field(default_factory=dict)

    def kb(self, name: str) -> KnowledgeBase:
        """Look up one of the generated KBs by name."""
        try:
            return self.kbs[name]
        except KeyError:
            raise SyntheticDataError(f"No generated KB named {name!r}") from None

    def kb_pair(self) -> Tuple[KnowledgeBase, KnowledgeBase]:
        """The two KBs in spec order."""
        first, second = self.spec.kb_specs
        return self.kb(first.name), self.kb(second.name)

    def names(self) -> Tuple[str, str]:
        """The two KB names in spec order."""
        first, second = self.spec.kb_specs
        return first.name, second.name

    def describe(self) -> str:
        """A short text summary (sizes, links, gold size)."""
        lines = []
        for name, kb in self.kbs.items():
            lines.append(
                f"{name}: {len(kb.store)} triples, {kb.relation_count()} relations"
            )
        lines.append(f"sameAs classes: {self.links.class_count()}")
        lines.append(f"gold subsumptions: {len(self.ground_truth)}")
        return "\n".join(lines)


class WorldGenerator:
    """Generates a :class:`GeneratedWorld` from a :class:`WorldSpec`.

    Generation is deterministic: the sequence of random draws depends only
    on the spec contents and its ``seed``.

    Parameters
    ----------
    spec:
        The world specification.
    shard_count:
        When set, each generated KB is backed by a
        :class:`~repro.shard.ShardedTripleStore` with that many
        subject-range shards (built shard-parallel through the columnar
        bulk loader) instead of a single :class:`TripleStore`.  The
        generated data, links and gold standard are identical either way
        — only the storage layout changes.
    """

    def __init__(self, spec: WorldSpec, shard_count: Optional[int] = None):
        if shard_count is not None and shard_count < 1:
            raise SyntheticDataError(f"shard_count must be >= 1, got {shard_count}")
        self.spec = spec
        self.shard_count = shard_count
        self._rng = random.Random(spec.seed)
        self._display_names: Dict[str, str] = {}

    # ------------------------------------------------------------------ #
    def generate(self) -> GeneratedWorld:
        """Run the full generation pipeline."""
        entities = self._generate_entities()
        canonical_facts = self._generate_canonical_facts(entities)
        kbs: Dict[str, KnowledgeBase] = {}
        used_entities: Dict[str, set] = {}
        for kb_spec in self.spec.kb_specs:
            kb, used = self._project_kb(kb_spec, canonical_facts, entities)
            kbs[kb_spec.name] = kb
            used_entities[kb_spec.name] = used
        links = self._generate_links(kbs, used_entities)
        return GeneratedWorld(
            spec=self.spec,
            kbs=kbs,
            links=links,
            ground_truth=self.spec.ground_truth(),
            canonical_facts=canonical_facts,
            entities=entities,
        )

    # ------------------------------------------------------------------ #
    # Canonical layer
    # ------------------------------------------------------------------ #
    def _generate_entities(self) -> Dict[str, List[str]]:
        entities: Dict[str, List[str]] = {}
        for entity_type in self.spec.entity_types:
            identifiers = [
                f"{entity_type.name}_{index:05d}" for index in range(entity_type.count)
            ]
            entities[entity_type.name] = identifiers
            for identifier in identifiers:
                self._display_names[identifier] = _entity_display_name(self._rng)
        return entities

    def _generate_canonical_facts(
        self, entities: Dict[str, List[str]]
    ) -> Dict[str, List[CanonicalFact]]:
        facts: Dict[str, List[CanonicalFact]] = {}
        for relation in self.spec.canonical_relations:
            facts[relation.name] = self._generate_relation_facts(relation, entities, facts)
        return facts

    def _generate_relation_facts(
        self,
        relation: CanonicalRelation,
        entities: Dict[str, List[str]],
        existing: Dict[str, List[CanonicalFact]],
    ) -> List[CanonicalFact]:
        subjects = entities[relation.subject_type]
        participating_count = max(1, int(round(len(subjects) * relation.subject_coverage)))
        participating = self._rng.sample(subjects, participating_count)

        base_objects_by_subject: Dict[str, List[CanonicalObject]] = {}
        if relation.correlated_with:
            for subject, obj in existing.get(relation.correlated_with, []):
                base_objects_by_subject.setdefault(subject, []).append(obj)

        facts: List[CanonicalFact] = []
        for subject in sorted(participating):
            object_count = self._rng.randint(relation.min_objects, relation.max_objects)
            chosen: List[CanonicalObject] = []
            for _ in range(object_count):
                obj = self._choose_object(
                    relation, subject, entities, base_objects_by_subject, chosen
                )
                if obj is not None:
                    chosen.append(obj)
            facts.extend((subject, obj) for obj in chosen)
        return facts

    def _choose_object(
        self,
        relation: CanonicalRelation,
        subject: str,
        entities: Dict[str, List[str]],
        base_objects_by_subject: Dict[str, List[CanonicalObject]],
        already_chosen: Sequence[CanonicalObject],
    ) -> Optional[CanonicalObject]:
        if relation.literal:
            return self._literal_value(relation, subject)

        # Correlated draw: reuse an object of the base relation.
        base_objects = base_objects_by_subject.get(subject, [])
        if base_objects and self._rng.random() < relation.correlation:
            candidate = self._rng.choice(base_objects)
            if candidate not in already_chosen:
                return candidate

        pool = entities[relation.object_type]
        for _ in range(8):
            candidate = self._rng.choice(pool)
            if candidate not in already_chosen:
                return candidate
        return None

    def _literal_value(self, relation: CanonicalRelation, subject: str) -> CanonicalObject:
        if relation.literal_kind == "name":
            return self._display_names[subject]
        if relation.literal_kind == "year":
            return 1900 + (_stable_hash(relation.name + subject) % 120)
        if relation.literal_kind == "number":
            return round(10 + (_stable_hash(relation.name + subject) % 10_000) / 13.7, 2)
        if relation.literal_kind == "code":
            # A name-like value salted by the relation so that different
            # canonical relations over the same subjects have disjoint
            # value spaces (unlike "name", which is a property of the
            # subject itself and therefore shared across relations).
            rng = random.Random(_stable_hash(relation.name + subject))
            return _entity_display_name(rng)
        raise SyntheticDataError(f"Unknown literal_kind {relation.literal_kind!r}")

    # ------------------------------------------------------------------ #
    # Projection into one KB
    # ------------------------------------------------------------------ #
    def _project_kb(
        self,
        kb_spec: KBSpec,
        canonical_facts: Dict[str, List[CanonicalFact]],
        entities: Dict[str, List[str]],
    ) -> Tuple[KnowledgeBase, set]:
        store = (
            ShardedTripleStore(num_shards=self.shard_count, name=kb_spec.name)
            if self.shard_count is not None
            else None
        )
        kb = KnowledgeBase(name=kb_spec.name, namespace=kb_spec.namespace, store=store)
        used_entities: set = set()
        # Facts are accumulated and bulk-loaded in one batch at the end so
        # the store takes its columnar sort-once construction path instead
        # of three index insertions per fact.
        pending: List[Triple] = []

        for mapping in kb_spec.mappings:
            relation_iri = kb_spec.namespace.term(mapping.name)
            if mapping.is_noise:
                self._add_noise_facts(
                    pending, kb_spec, mapping, relation_iri, entities, used_entities
                )
                continue

            retention = (
                mapping.fact_retention
                if mapping.fact_retention is not None
                else kb_spec.fact_retention
            )
            merged: List[CanonicalFact] = []
            seen = set()
            for source in mapping.sources:
                for fact in canonical_facts[source]:
                    if fact not in seen:
                        seen.add(fact)
                        merged.append(fact)

            dropped_subjects: set = set()
            if kb_spec.retention_mode == "subject":
                # Subject-level incompleteness: the KB knows either all or
                # none of a subject's facts for this relation.
                for subject_id in sorted({subject for subject, _ in merged}):
                    if self._rng.random() > retention:
                        dropped_subjects.add(subject_id)

            is_literal = all(
                self.spec.canonical(source).literal for source in mapping.sources
            )
            for subject_id, obj in merged:
                if kb_spec.retention_mode == "subject":
                    if subject_id in dropped_subjects:
                        continue
                elif self._rng.random() > retention:
                    continue
                subject_iri = self._entity_iri(kb_spec, subject_id)
                used_entities.add(subject_id)
                if is_literal:
                    obj_term: Term = self._render_literal(kb_spec, obj)
                else:
                    obj_term = self._entity_iri(kb_spec, str(obj))
                    used_entities.add(str(obj))
                pending.append(Triple(subject_iri, relation_iri, obj_term))
                if kb_spec.add_inverse_relations and not is_literal:
                    inverse_iri = kb_spec.namespace.term(f"inverseOf_{mapping.name}")
                    pending.append(Triple(obj_term, inverse_iri, subject_iri))  # type: ignore[arg-type]

        kb.add_triples(pending)
        return kb, used_entities

    def _add_noise_facts(
        self,
        pending: List[Triple],
        kb_spec: KBSpec,
        mapping: RelationMapping,
        relation_iri: IRI,
        entities: Dict[str, List[str]],
        used_entities: set,
    ) -> None:
        subject_type = mapping.noise_subject_type or self.spec.entity_types[0].name
        object_type = mapping.noise_object_type or self.spec.entity_types[-1].name
        subjects = entities[subject_type]
        objects = entities[object_type]
        for _ in range(mapping.noise_fact_count):
            subject_id = self._rng.choice(subjects)
            subject_iri = self._entity_iri(kb_spec, subject_id)
            used_entities.add(subject_id)
            if mapping.literal:
                obj_term: Term = self._render_literal(
                    kb_spec, f"noise {self._rng.randint(0, 10_000)}"
                )
            else:
                object_id = self._rng.choice(objects)
                obj_term = self._entity_iri(kb_spec, object_id)
                used_entities.add(object_id)
            pending.append(Triple(subject_iri, relation_iri, obj_term))

    # ------------------------------------------------------------------ #
    # Rendering helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _entity_iri(kb_spec: KBSpec, canonical_id: str) -> IRI:
        if kb_spec.entity_style == "plain":
            local = canonical_id
        elif kb_spec.entity_style == "prefixed":
            local = f"res_{canonical_id}"
        elif kb_spec.entity_style == "camel":
            local = "".join(part.capitalize() for part in canonical_id.split("_"))
        else:
            raise SyntheticDataError(f"Unknown entity_style {kb_spec.entity_style!r}")
        return kb_spec.namespace.term(local)

    def _render_literal(self, kb_spec: KBSpec, value: CanonicalObject) -> Literal:
        if isinstance(value, (int, float)):
            return Literal(value)
        text = str(value)
        if kb_spec.literal_style == "plain":
            return Literal(text)
        if kb_spec.literal_style == "underscore":
            return Literal(text.replace(" ", "_"))
        if kb_spec.literal_style == "upper":
            return Literal(text.upper())
        if kb_spec.literal_style == "lang-en":
            return Literal(text, language="en")
        raise SyntheticDataError(f"Unknown literal_style {kb_spec.literal_style!r}")

    # ------------------------------------------------------------------ #
    # sameAs links
    # ------------------------------------------------------------------ #
    def _generate_links(
        self, kbs: Dict[str, KnowledgeBase], used_entities: Dict[str, set]
    ) -> SameAsIndex:
        first_spec, second_spec = self.spec.kb_specs
        shared = sorted(used_entities[first_spec.name] & used_entities[second_spec.name])
        second_pool = sorted(used_entities[second_spec.name])
        links = SameAsIndex()
        for canonical_id in shared:
            if self._rng.random() > self.spec.link_rate:
                continue
            first_iri = self._entity_iri(first_spec, canonical_id)
            partner_id = canonical_id
            if self.spec.link_noise and self._rng.random() < self.spec.link_noise:
                # A wrong link: point to a different entity of the second KB
                # (same type when possible, so the mistake is plausible).
                entity_type = canonical_id.rsplit("_", 1)[0]
                same_type = [
                    identifier
                    for identifier in second_pool
                    if identifier.startswith(entity_type) and identifier != canonical_id
                ]
                if same_type:
                    partner_id = self._rng.choice(same_type)
            second_iri = self._entity_iri(second_spec, partner_id)
            links.add_link(first_iri, second_iri)
            # Also materialise the link in both stores so endpoint-side
            # sameAs queries work, the way DBpedia publishes its links.
            kbs[first_spec.name].add_same_as(first_iri, second_iri)
            kbs[second_spec.name].add_same_as(second_iri, first_iri)
        return links


def generate_world(
    spec: WorldSpec, shard_count: Optional[int] = None
) -> GeneratedWorld:
    """Convenience wrapper: ``WorldGenerator(spec, shard_count).generate()``.

    ``shard_count`` backs every generated KB with a sharded store (same
    data, subject-range-partitioned storage) — the preset build path of
    the endpoint-simulation benchmarks.
    """
    return WorldGenerator(spec, shard_count=shard_count).generate()
