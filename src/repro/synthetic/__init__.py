"""Synthetic KB-pair generation with planted ground truth.

The paper evaluates on YAGO2 (92 relations) and DBpedia (1313 relations).
Those dumps cannot be shipped or downloaded here, so this package builds
deterministic synthetic substitutes that preserve the phenomena the
algorithm is sensitive to:

* two KBs describing the *same underlying world* with different entity
  identifiers, different relation vocabularies and different literal
  formatting,
* incompleteness — each KB only knows a fraction of the true facts,
* partial ``sameAs`` linkage between the two entity sets,
* planted **ground-truth alignments** of three kinds: equivalences, strict
  subsumptions, and *correlated-but-unaligned* relation pairs (the UBS
  failure modes),
* filler ("noise") relations so the relation counts can mirror the paper's
  92 vs 1313.

Everything is seeded and deterministic: the same spec always produces the
same pair of KBs, the same links and the same gold standard.
"""

from repro.synthetic.schema import (
    CanonicalEntityType,
    CanonicalRelation,
    GroundTruth,
    KBSpec,
    RelationMapping,
    WorldSpec,
)
from repro.synthetic.generator import GeneratedWorld, WorldGenerator, generate_world
from repro.synthetic.presets import (
    movie_world_spec,
    music_world_spec,
    yago_dbpedia_spec,
)
from repro.synthetic.stream import (
    SCALE_PRESETS,
    ScaleWorld,
    ScaleWorldSpec,
    generate_scale_world,
    scale_world_spec,
)
from repro.synthetic.cache import CachedWorld, load_or_generate

__all__ = [
    "CanonicalEntityType",
    "CanonicalRelation",
    "RelationMapping",
    "KBSpec",
    "WorldSpec",
    "GroundTruth",
    "WorldGenerator",
    "GeneratedWorld",
    "generate_world",
    "movie_world_spec",
    "music_world_spec",
    "yago_dbpedia_spec",
    "SCALE_PRESETS",
    "ScaleWorld",
    "ScaleWorldSpec",
    "scale_world_spec",
    "generate_scale_world",
    "CachedWorld",
    "load_or_generate",
]
