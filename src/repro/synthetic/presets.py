"""Ready-made world specifications.

Three presets are provided:

* :func:`movie_world_spec` — the paper's *hasDirector / hasProducer /
  directedBy* example (overlap mistaken for subsumption).
* :func:`music_world_spec` — the paper's *composerOf / writerOf /
  creatorOf* example (subsumption mistaken for equivalence).
* :func:`yago_dbpedia_spec` — a parameterised YAGO-like vs DBpedia-like
  pair whose relation counts default to the paper's 92 vs 1313, containing
  a mix of equivalences, strict subsumptions, correlated traps (in both
  orientations) and literal-valued relations, plus filler relations.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import SyntheticDataError
from repro.rdf.namespace import Namespace
from repro.synthetic.schema import (
    CanonicalEntityType,
    CanonicalRelation,
    KBSpec,
    RelationMapping,
    WorldSpec,
)

#: Namespaces of the synthetic datasets.
MOVIE_A_NS = Namespace("http://sofya.repro/imdb/")
MOVIE_B_NS = Namespace("http://sofya.repro/filmdb/")
MUSIC_A_NS = Namespace("http://sofya.repro/musicbrainz/")
MUSIC_B_NS = Namespace("http://sofya.repro/worksdb/")
YAGO_LIKE_NS = Namespace("http://sofya.repro/yago/")
DBPEDIA_LIKE_NS = Namespace("http://sofya.repro/dbpedia/")


def movie_world_spec(
    films: int = 160,
    people: int = 200,
    producer_director_correlation: float = 0.7,
    link_rate: float = 0.95,
    seed: int = 11,
) -> WorldSpec:
    """The movie world of §2.2: producers often direct their own films.

    KB ``imdb`` (premise side) has ``hasDirector`` and ``hasProducer``;
    KB ``filmdb`` (conclusion side) has ``directedBy`` and ``producedBy``.
    The gold standard contains ``hasDirector ⇒ directedBy`` but *not*
    ``hasProducer ⇒ directedBy`` — the trap the UBS strategy must avoid.
    """
    entity_types = [
        CanonicalEntityType("film", films),
        CanonicalEntityType("person", people),
    ]
    canonical = [
        CanonicalRelation("directs", subject_type="film", object_type="person",
                          subject_coverage=0.95),
        CanonicalRelation("produces", subject_type="film", object_type="person",
                          subject_coverage=0.9, correlated_with="directs",
                          correlation=producer_director_correlation),
        CanonicalRelation("filmTitle", subject_type="film", literal=True,
                          literal_kind="name", subject_coverage=1.0),
    ]
    imdb = KBSpec(
        name="imdb",
        namespace=MOVIE_A_NS,
        fact_retention=0.9,
        literal_style="plain",
        mappings=[
            RelationMapping("hasDirector", sources=("directs",)),
            RelationMapping("hasProducer", sources=("produces",)),
            RelationMapping("hasTitle", sources=("filmTitle",)),
        ],
    )
    filmdb = KBSpec(
        name="filmdb",
        namespace=MOVIE_B_NS,
        fact_retention=0.85,
        literal_style="underscore",
        mappings=[
            RelationMapping("directedBy", sources=("directs",)),
            RelationMapping("producedBy", sources=("produces",)),
            RelationMapping("title", sources=("filmTitle",)),
        ],
    )
    return WorldSpec(
        entity_types=entity_types,
        canonical_relations=canonical,
        kb_specs=[imdb, filmdb],
        link_rate=link_rate,
        seed=seed,
    )


def music_world_spec(
    artists: int = 180,
    works: int = 320,
    link_rate: float = 0.95,
    seed: int = 13,
) -> WorldSpec:
    """The music world of §2.2: ``creatorOf`` is the union of composing and writing.

    KB ``musicbrainz`` (premise side) has ``composerOf`` and ``writerOf``;
    KB ``worksdb`` (conclusion side) has ``creatorOf`` = union of both.
    Both premise relations are subsumed by ``creatorOf``, but neither is
    equivalent to it — the equivalence trap of §2.2.
    """
    entity_types = [
        CanonicalEntityType("artist", artists),
        CanonicalEntityType("work", works),
    ]
    canonical = [
        # Most composers only compose; a minority also writes.  That is what
        # makes the equivalence trap of §2.2 realistic: a random sample of
        # composers is likely to miss the writers among them.
        CanonicalRelation("composes", subject_type="artist", object_type="work",
                          subject_coverage=0.55, min_objects=1, max_objects=4),
        CanonicalRelation("writes", subject_type="artist", object_type="work",
                          subject_coverage=0.28, min_objects=1, max_objects=3),
        CanonicalRelation("artistName", subject_type="artist", literal=True,
                          literal_kind="name", subject_coverage=1.0),
    ]
    musicbrainz = KBSpec(
        name="musicbrainz",
        namespace=MUSIC_A_NS,
        fact_retention=0.9,
        mappings=[
            RelationMapping("composerOf", sources=("composes",)),
            RelationMapping("writerOf", sources=("writes",)),
            RelationMapping("artistLabel", sources=("artistName",)),
        ],
    )
    worksdb = KBSpec(
        name="worksdb",
        namespace=MUSIC_B_NS,
        fact_retention=0.85,
        literal_style="upper",
        mappings=[
            RelationMapping("creatorOf", sources=("composes", "writes")),
            RelationMapping("name", sources=("artistName",)),
        ],
    )
    return WorldSpec(
        entity_types=entity_types,
        canonical_relations=canonical,
        kb_specs=[musicbrainz, worksdb],
        link_rate=link_rate,
        seed=seed,
    )


#: The family patterns cycled by :func:`yago_dbpedia_spec`.
FAMILY_PATTERNS = ("equivalent", "subsumption", "trap_premise", "trap_conclusion", "literal")

#: (subject type, object type) combinations cycled across families.
_FAMILY_SIGNATURES = (
    ("person", "place"),
    ("person", "work"),
    ("work", "person"),
    ("person", "org"),
    ("org", "place"),
    ("work", "place"),
)


def yago_dbpedia_spec(
    families: int = 25,
    yago_relation_count: int = 92,
    dbpedia_relation_count: int = 1313,
    people: int = 500,
    works: int = 350,
    places: int = 140,
    orgs: int = 120,
    yago_fact_retention: float = 0.75,
    dbpedia_fact_retention: float = 0.85,
    trap_correlation: float = 0.93,
    link_rate: float = 0.85,
    link_noise: float = 0.06,
    noise_fact_count: int = 12,
    seed: int = 2016,
) -> WorldSpec:
    """A YAGO-like / DBpedia-like pair mirroring the paper's evaluation setup.

    Parameters
    ----------
    families:
        Number of *aligned relation families*.  Each family follows one of
        the patterns in :data:`FAMILY_PATTERNS` (cycled):

        * ``equivalent`` — one YAGO relation equivalent to one DBpedia
          relation;
        * ``subsumption`` — two specific YAGO relations whose union is one
          DBpedia relation (subsumptions that are not equivalences);
        * ``trap_premise`` — a correct YAGO⇒DBpedia pair plus a *correlated
          but unaligned* YAGO relation (the UBS "overlap mistaken for
          subsumption" trap, premise side);
        * ``trap_conclusion`` — the same trap built on the DBpedia side;
        * ``literal`` — an equivalent pair of entity-literal relations with
          different formatting in the two KBs.
    yago_relation_count / dbpedia_relation_count:
        Total relation counts per KB (the paper's 92 and 1313 by default);
        the difference between the total and the aligned relations is
        filled with noise relations.
    """
    if families < len(FAMILY_PATTERNS):
        raise SyntheticDataError(
            f"families must be at least {len(FAMILY_PATTERNS)} to cover all patterns"
        )

    entity_types = [
        CanonicalEntityType("person", people),
        CanonicalEntityType("work", works),
        CanonicalEntityType("place", places),
        CanonicalEntityType("org", orgs),
    ]

    canonical: List[CanonicalRelation] = []
    yago_mappings: List[RelationMapping] = []
    dbpedia_mappings: List[RelationMapping] = []

    def varied_retention(base: float, index: int) -> float:
        """Per-family incompleteness: some relations are well covered, some poorly."""
        offsets = (-0.12, -0.06, 0.0, 0.06, 0.1)
        value = base + offsets[index % len(offsets)]
        return min(0.97, max(0.4, round(value, 3)))

    for index in range(families):
        pattern = FAMILY_PATTERNS[index % len(FAMILY_PATTERNS)]
        subject_type, object_type = _FAMILY_SIGNATURES[index % len(_FAMILY_SIGNATURES)]
        tag = f"{pattern}{index:02d}"
        max_objects = 1 + (index % 3)
        yago_retention = varied_retention(yago_fact_retention, index)
        dbpedia_retention = varied_retention(dbpedia_fact_retention, index + 2)

        if pattern == "equivalent":
            canonical.append(
                CanonicalRelation(f"c_{tag}", subject_type=subject_type,
                                  object_type=object_type, subject_coverage=0.7,
                                  max_objects=max_objects)
            )
            # A premise-side relation correlated with the equivalent pair but
            # aligned to nothing: a false-positive opportunity for both
            # directions' baselines.
            canonical.append(
                CanonicalRelation(f"c_{tag}_shadow", subject_type=subject_type,
                                  object_type=object_type, subject_coverage=0.6,
                                  max_objects=max_objects,
                                  correlated_with=f"c_{tag}",
                                  correlation=trap_correlation)
            )
            yago_mappings.append(
                RelationMapping(f"y_{tag}", sources=(f"c_{tag}",),
                                fact_retention=yago_retention)
            )
            yago_mappings.append(
                RelationMapping(f"y_{tag}_shadow", sources=(f"c_{tag}_shadow",),
                                fact_retention=yago_retention)
            )
            dbpedia_mappings.append(
                RelationMapping(f"d_{tag}", sources=(f"c_{tag}",),
                                fact_retention=dbpedia_retention)
            )

        elif pattern == "subsumption":
            canonical.append(
                CanonicalRelation(f"c_{tag}_a", subject_type=subject_type,
                                  object_type=object_type, subject_coverage=0.55,
                                  max_objects=max_objects)
            )
            canonical.append(
                CanonicalRelation(f"c_{tag}_b", subject_type=subject_type,
                                  object_type=object_type, subject_coverage=0.55,
                                  max_objects=max_objects)
            )
            yago_mappings.append(
                RelationMapping(f"y_{tag}_a", sources=(f"c_{tag}_a",),
                                fact_retention=yago_retention)
            )
            yago_mappings.append(
                RelationMapping(f"y_{tag}_b", sources=(f"c_{tag}_b",),
                                fact_retention=yago_retention)
            )
            dbpedia_mappings.append(
                RelationMapping(f"d_{tag}_union", sources=(f"c_{tag}_a", f"c_{tag}_b"),
                                fact_retention=dbpedia_retention)
            )

        elif pattern == "trap_premise":
            canonical.append(
                CanonicalRelation(f"c_{tag}_base", subject_type=subject_type,
                                  object_type=object_type, subject_coverage=0.75,
                                  max_objects=max_objects)
            )
            canonical.append(
                CanonicalRelation(f"c_{tag}_corr", subject_type=subject_type,
                                  object_type=object_type, subject_coverage=0.7,
                                  max_objects=max_objects,
                                  correlated_with=f"c_{tag}_base",
                                  correlation=trap_correlation)
            )
            yago_mappings.append(
                RelationMapping(f"y_{tag}_true", sources=(f"c_{tag}_base",),
                                fact_retention=yago_retention)
            )
            yago_mappings.append(
                RelationMapping(f"y_{tag}_corr", sources=(f"c_{tag}_corr",),
                                fact_retention=yago_retention)
            )
            dbpedia_mappings.append(
                RelationMapping(f"d_{tag}", sources=(f"c_{tag}_base",),
                                fact_retention=dbpedia_retention)
            )
            dbpedia_mappings.append(
                RelationMapping(f"d_{tag}_corr", sources=(f"c_{tag}_corr",),
                                fact_retention=dbpedia_retention)
            )

        elif pattern == "trap_conclusion":
            canonical.append(
                CanonicalRelation(f"c_{tag}_base", subject_type=subject_type,
                                  object_type=object_type, subject_coverage=0.75,
                                  max_objects=max_objects)
            )
            canonical.append(
                CanonicalRelation(f"c_{tag}_corr", subject_type=subject_type,
                                  object_type=object_type, subject_coverage=0.7,
                                  max_objects=max_objects,
                                  correlated_with=f"c_{tag}_base",
                                  correlation=trap_correlation)
            )
            dbpedia_mappings.append(
                RelationMapping(f"d_{tag}_true", sources=(f"c_{tag}_base",),
                                fact_retention=dbpedia_retention)
            )
            dbpedia_mappings.append(
                RelationMapping(f"d_{tag}_corr", sources=(f"c_{tag}_corr",),
                                fact_retention=dbpedia_retention)
            )
            yago_mappings.append(
                RelationMapping(f"y_{tag}", sources=(f"c_{tag}_base",),
                                fact_retention=yago_retention)
            )
            yago_mappings.append(
                RelationMapping(f"y_{tag}_corr", sources=(f"c_{tag}_corr",),
                                fact_retention=yago_retention)
            )

        elif pattern == "literal":
            # Cycle the value spaces so that two different literal relations
            # over the same subjects are not extensionally identical (a
            # person's name is shared across "label"-like relations, but a
            # motto, a population count and a founding year are not).
            literal_kind = ("name", "year", "code", "number")[(index // len(FAMILY_PATTERNS)) % 4]
            canonical.append(
                CanonicalRelation(f"c_{tag}", subject_type=subject_type, literal=True,
                                  literal_kind=literal_kind, subject_coverage=0.85)
            )
            yago_mappings.append(
                RelationMapping(f"y_{tag}_label", sources=(f"c_{tag}",),
                                fact_retention=yago_retention)
            )
            dbpedia_mappings.append(
                RelationMapping(f"d_{tag}_name", sources=(f"c_{tag}",),
                                fact_retention=dbpedia_retention)
            )

    # ------------------------------------------------------------------ #
    # Pad with noise relations up to the requested totals.
    # ------------------------------------------------------------------ #
    _pad_with_noise(yago_mappings, yago_relation_count, "y_noise", noise_fact_count)
    _pad_with_noise(dbpedia_mappings, dbpedia_relation_count, "d_noise", noise_fact_count)

    yago_like = KBSpec(
        name="yago",
        namespace=YAGO_LIKE_NS,
        mappings=yago_mappings,
        fact_retention=yago_fact_retention,
        entity_style="plain",
        literal_style="underscore",
    )
    dbpedia_like = KBSpec(
        name="dbpedia",
        namespace=DBPEDIA_LIKE_NS,
        mappings=dbpedia_mappings,
        fact_retention=dbpedia_fact_retention,
        entity_style="prefixed",
        literal_style="plain",
    )
    return WorldSpec(
        entity_types=entity_types,
        canonical_relations=canonical,
        kb_specs=[yago_like, dbpedia_like],
        link_rate=link_rate,
        link_noise=link_noise,
        seed=seed,
    )


def _pad_with_noise(
    mappings: List[RelationMapping],
    target_count: int,
    prefix: str,
    noise_fact_count: int,
) -> None:
    """Append noise relations until ``mappings`` has ``target_count`` entries."""
    if target_count < len(mappings):
        raise SyntheticDataError(
            f"Requested {target_count} relations but {len(mappings)} aligned relations "
            "are already defined; increase the relation count or reduce families"
        )
    signatures = _FAMILY_SIGNATURES
    index = 0
    while len(mappings) < target_count:
        subject_type, object_type = signatures[index % len(signatures)]
        mappings.append(
            RelationMapping(
                f"{prefix}{index:04d}",
                sources=(),
                noise_fact_count=noise_fact_count,
                noise_subject_type=subject_type,
                noise_object_type=object_type,
                literal=(index % 7 == 3),
            )
        )
        index += 1
