"""Specifications of synthetic worlds and the derived ground truth.

The model has three layers:

1. A *canonical world*: typed entities and canonical relations between
   them.  This layer is never exposed to the aligner; it is the "real
   world" both KBs describe.
2. Two (or more) *KB specs*: each KB relation is a
   :class:`RelationMapping` whose extension is the union of one or more
   canonical relations, thinned by an incompleteness factor and rendered
   with KB-specific entity IRIs / literal formatting.
3. The :class:`GroundTruth` of relation alignments, derived purely from the
   mappings: KB-A relation ``a`` is subsumed by KB-B relation ``b`` iff the
   canonical sources of ``a`` are a subset of the sources of ``b``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import SyntheticDataError
from repro.rdf.namespace import Namespace
from repro.rdf.terms import IRI


@dataclass(frozen=True)
class CanonicalEntityType:
    """A type of canonical entities (people, films, cities, ...)."""

    name: str
    count: int

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise SyntheticDataError(f"Entity type {self.name!r} must have a positive count")


@dataclass(frozen=True)
class CanonicalRelation:
    """A canonical (world-level) relation.

    Parameters
    ----------
    name:
        Unique canonical name, e.g. ``"directs"``.
    subject_type / object_type:
        Entity types of the arguments.  ``object_type`` is ignored for
        literal relations.
    literal:
        When ``True`` the objects are literal values derived from the
        subject (names, dates, numbers) rather than entities.
    literal_kind:
        ``"name"`` | ``"year"`` | ``"number"`` — what kind of literal to
        generate.
    subject_coverage:
        Fraction of subjects of ``subject_type`` that have at least one
        fact of this relation.
    min_objects / max_objects:
        Range of objects per participating subject (uniform).
    correlated_with:
        Optional name of another canonical relation with the same subject
        type; see ``correlation``.
    correlation:
        Probability that a fact of this relation *reuses an object* of the
        correlated relation for the same subject instead of an independent
        one.  This is how "the director is often also the producer" worlds
        are built.
    """

    name: str
    subject_type: str
    object_type: str = ""
    literal: bool = False
    literal_kind: str = "name"
    subject_coverage: float = 0.8
    min_objects: int = 1
    max_objects: int = 1
    correlated_with: Optional[str] = None
    correlation: float = 0.0

    def __post_init__(self) -> None:
        if not self.literal and not self.object_type:
            raise SyntheticDataError(
                f"Entity-valued canonical relation {self.name!r} needs an object_type"
            )
        if not 0.0 < self.subject_coverage <= 1.0:
            raise SyntheticDataError("subject_coverage must be in (0, 1]")
        if self.min_objects < 1 or self.max_objects < self.min_objects:
            raise SyntheticDataError("invalid min_objects/max_objects range")
        if not 0.0 <= self.correlation <= 1.0:
            raise SyntheticDataError("correlation must be in [0, 1]")
        if self.correlated_with and self.literal:
            raise SyntheticDataError("literal relations cannot be correlated")


@dataclass(frozen=True)
class RelationMapping:
    """One relation of a KB, defined by its canonical sources.

    Parameters
    ----------
    name:
        Local name of the relation in the KB's namespace.
    sources:
        Canonical relation names whose union is this relation's ideal
        extension.  An empty tuple denotes a *noise* relation with random
        facts, unaligned to anything.
    fact_retention:
        Fraction of the ideal extension the KB actually knows (models
        incompleteness).  ``None`` uses the KB-level default.
    noise_fact_count:
        For noise relations: how many random facts to generate.
    noise_subject_type / noise_object_type:
        Types used to draw random facts for noise relations.
    literal:
        Set for noise relations that should be literal-valued.
    """

    name: str
    sources: Tuple[str, ...] = ()
    fact_retention: Optional[float] = None
    noise_fact_count: int = 30
    noise_subject_type: str = ""
    noise_object_type: str = ""
    literal: bool = False

    @property
    def is_noise(self) -> bool:
        """Whether this is an unaligned filler relation."""
        return not self.sources

    def source_set(self) -> FrozenSet[str]:
        """The canonical sources as a frozen set."""
        return frozenset(self.sources)


@dataclass
class KBSpec:
    """Specification of one synthetic KB.

    ``retention_mode`` controls how incompleteness is applied:

    * ``"subject"`` (default) — for each relation, a subject either keeps
      *all* of its facts or loses all of them.  This matches the partial
      completeness assumption the paper's PCA measure (and its UBS
      contradiction test) relies on: "a KB knows either all or none of the
      r-attributes of some x".
    * ``"fact"`` — facts are dropped independently; used as an ablation to
      show how the method degrades when the PCA assumption is violated.
    """

    name: str
    namespace: Namespace
    mappings: List[RelationMapping] = field(default_factory=list)
    fact_retention: float = 0.85
    retention_mode: str = "subject"
    entity_style: str = "plain"
    literal_style: str = "plain"
    add_inverse_relations: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.fact_retention <= 1.0:
            raise SyntheticDataError("fact_retention must be in (0, 1]")
        if self.retention_mode not in ("subject", "fact"):
            raise SyntheticDataError("retention_mode must be 'subject' or 'fact'")
        names = [mapping.name for mapping in self.mappings]
        if len(names) != len(set(names)):
            raise SyntheticDataError(f"KB {self.name!r} has duplicate relation names")

    def relation_names(self) -> List[str]:
        """Local names of all relations of this KB."""
        return [mapping.name for mapping in self.mappings]

    def mapping(self, name: str) -> RelationMapping:
        """Look up a mapping by local name."""
        for candidate in self.mappings:
            if candidate.name == name:
                return candidate
        raise SyntheticDataError(f"KB {self.name!r} has no relation named {name!r}")


@dataclass
class WorldSpec:
    """Full specification of a synthetic two-KB world."""

    entity_types: List[CanonicalEntityType]
    canonical_relations: List[CanonicalRelation]
    kb_specs: List[KBSpec]
    #: Fraction of shared entities that receive a ``sameAs`` link at all.
    link_rate: float = 0.9
    #: Fraction of generated links that point to the *wrong* entity — noisy
    #: interlinking is pervasive in the LOD cloud and is the main reason
    #: correct rules do not score a perfect confidence on real data.
    link_noise: float = 0.0
    seed: int = 7

    def __post_init__(self) -> None:
        if len(self.kb_specs) != 2:
            raise SyntheticDataError("A WorldSpec needs exactly two KB specs")
        if not 0.0 < self.link_rate <= 1.0:
            raise SyntheticDataError("link_rate must be in (0, 1]")
        if not 0.0 <= self.link_noise < 1.0:
            raise SyntheticDataError("link_noise must be in [0, 1)")
        type_names = {entity_type.name for entity_type in self.entity_types}
        canonical_names = set()
        for relation in self.canonical_relations:
            if relation.name in canonical_names:
                raise SyntheticDataError(f"Duplicate canonical relation {relation.name!r}")
            canonical_names.add(relation.name)
            if relation.subject_type not in type_names:
                raise SyntheticDataError(
                    f"Canonical relation {relation.name!r} uses unknown subject type"
                )
            if not relation.literal and relation.object_type not in type_names:
                raise SyntheticDataError(
                    f"Canonical relation {relation.name!r} uses unknown object type"
                )
            if relation.correlated_with and relation.correlated_with not in canonical_names:
                # Correlated relations must be declared after their base.
                raise SyntheticDataError(
                    f"Canonical relation {relation.name!r} correlates with the undeclared "
                    f"relation {relation.correlated_with!r}"
                )
        for kb in self.kb_specs:
            for mapping in kb.mappings:
                unknown = set(mapping.sources) - canonical_names
                if unknown:
                    raise SyntheticDataError(
                        f"Relation {kb.name}:{mapping.name} maps unknown canonical "
                        f"relations {sorted(unknown)}"
                    )

    def canonical(self, name: str) -> CanonicalRelation:
        """Look up a canonical relation by name."""
        for relation in self.canonical_relations:
            if relation.name == name:
                return relation
        raise SyntheticDataError(f"Unknown canonical relation {name!r}")

    def kb(self, name: str) -> KBSpec:
        """Look up a KB spec by name."""
        for kb_spec in self.kb_specs:
            if kb_spec.name == name:
                return kb_spec
        raise SyntheticDataError(f"Unknown KB spec {name!r}")

    def ground_truth(self) -> "GroundTruth":
        """Derive the gold-standard alignment from the mappings."""
        return GroundTruth.from_spec(self)


class GroundTruth:
    """Gold-standard subsumptions and equivalences between two KBs.

    A subsumption ``(premise_kb, premise_relation) ⇒ (conclusion_kb,
    conclusion_relation)`` is in the gold standard iff the canonical
    sources of the premise are a non-empty subset of the sources of the
    conclusion.  Noise relations never participate.
    """

    def __init__(self) -> None:
        self._subsumptions: Set[Tuple[str, IRI, str, IRI]] = set()

    # ------------------------------------------------------------------ #
    @classmethod
    def from_spec(cls, spec: WorldSpec) -> "GroundTruth":
        """Build the gold standard for a two-KB world spec."""
        truth = cls()
        first, second = spec.kb_specs
        truth._add_direction(first, second)
        truth._add_direction(second, first)
        return truth

    def _add_direction(self, premise_kb: KBSpec, conclusion_kb: KBSpec) -> None:
        for premise in premise_kb.mappings:
            if premise.is_noise:
                continue
            premise_sources = premise.source_set()
            for conclusion in conclusion_kb.mappings:
                if conclusion.is_noise:
                    continue
                if premise_sources and premise_sources <= conclusion.source_set():
                    self.add_subsumption(
                        premise_kb.name,
                        premise_kb.namespace.term(premise.name),
                        conclusion_kb.name,
                        conclusion_kb.namespace.term(conclusion.name),
                    )

    # ------------------------------------------------------------------ #
    def add_subsumption(
        self, premise_kb: str, premise: IRI, conclusion_kb: str, conclusion: IRI
    ) -> None:
        """Record one gold subsumption."""
        self._subsumptions.add((premise_kb, premise, conclusion_kb, conclusion))

    def __len__(self) -> int:
        return len(self._subsumptions)

    def contains(
        self, premise_kb: str, premise: IRI, conclusion_kb: str, conclusion: IRI
    ) -> bool:
        """Whether the given subsumption is in the gold standard."""
        return (premise_kb, premise, conclusion_kb, conclusion) in self._subsumptions

    def subsumption_pairs(
        self, premise_kb: str, conclusion_kb: str
    ) -> Set[Tuple[IRI, IRI]]:
        """All gold ``(premise, conclusion)`` pairs for one direction."""
        return {
            (premise, conclusion)
            for kb1, premise, kb2, conclusion in self._subsumptions
            if kb1 == premise_kb and kb2 == conclusion_kb
        }

    def equivalence_pairs(
        self, premise_kb: str, conclusion_kb: str
    ) -> Set[Tuple[IRI, IRI]]:
        """Gold equivalences: subsumptions holding in both directions."""
        forward = self.subsumption_pairs(premise_kb, conclusion_kb)
        backward = self.subsumption_pairs(conclusion_kb, premise_kb)
        return {(p, c) for (p, c) in forward if (c, p) in backward}

    def conclusion_relations(self, premise_kb: str, conclusion_kb: str) -> Set[IRI]:
        """All conclusion-side relations participating in this direction."""
        return {c for (_, c) in self.subsumption_pairs(premise_kb, conclusion_kb)}

    def premise_relations(self, premise_kb: str, conclusion_kb: str) -> Set[IRI]:
        """All premise-side relations participating in this direction."""
        return {p for (p, _) in self.subsumption_pairs(premise_kb, conclusion_kb)}

    def all_pairs(self) -> Set[Tuple[str, IRI, str, IRI]]:
        """The raw gold standard (both directions)."""
        return set(self._subsumptions)
