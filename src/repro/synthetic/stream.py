"""Streaming generation of large-scale synthetic worlds.

The spec-driven generator in :mod:`repro.synthetic.generator` materialises
one :class:`~repro.rdf.triple.Triple` per fact before loading, which is
fine at the 10^4–10^5 triples of the alignment worlds but prohibitive at
the 10^7 scale the endpoint benchmarks want.  This module takes the other
route: it interns the (comparatively small) term vocabulary once, then
draws dictionary **ID columns** directly — in fixed-size chunks, with no
per-fact Python objects — and hands them straight to the columnar bulk
loaders (:meth:`TripleStore.from_id_columns` /
:meth:`ShardedTripleStore.from_id_columns`).

Draws are produced by a counter-based splitmix64 hash rather than a
stateful RNG, so generation is

* **deterministic** — the columns depend only on the spec contents and
  its seed, never on chunk size or backend, and
* **backend-identical** — the NumPy fast path and the pure-Python
  fallback (``REPRO_NO_NUMPY=1`` or NumPy absent) emit byte-identical
  columns, because every draw is the same integer hash mapped through
  the same correctly-rounded float64 arithmetic.

Predicates are drawn from a Zipf-like skewed distribution so the worlds
have a few heavy predicates (dense joins) and a long selective tail —
the shape the join-kernel benchmarks care about.
"""

from __future__ import annotations

import bisect
import os
import time
from array import array
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import SyntheticDataError
from repro.rdf.namespace import Namespace
from repro.store.dictionary import TermDictionary
from repro.store.triplestore import TripleStore
from repro.shard.sharded_store import ShardedTripleStore

try:  # pragma: no cover - exercised via the REPRO_NO_NUMPY suite
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Rows drawn per chunk; bounds the working set independent of world size.
CHUNK_ROWS = 1 << 20

#: Named world sizes of the scale benchmark family.
SCALE_PRESETS: Dict[str, int] = {
    "13k": 13_700,
    "100k": 100_000,
    "1m": 1_000_000,
    "10m": 10_000_000,
}

_MASK64 = (1 << 64) - 1


def _numpy():
    """NumPy, unless absent or disabled via ``REPRO_NO_NUMPY`` (checked per call)."""
    from repro.obs import config as _config

    if _np is None or _config.numpy_disabled():
        return None
    return _np


# --------------------------------------------------------------------- #
# Counter-based hashing (splitmix64)
# --------------------------------------------------------------------- #
def _splitmix64(value: int) -> int:
    """One splitmix64 round over a 64-bit value (pure-Python scalar)."""
    z = (value + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def _splitmix64_np(np, values):
    """Vectorised splitmix64 over a uint64 array (wrapping arithmetic)."""
    z = values + np.uint64(0x9E3779B97F4A7C15)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


def _stream_base(seed: int, column: int) -> int:
    """The per-column hash base: columns are independent splitmix64 streams."""
    return _splitmix64(((seed & _MASK64) * 3 + column) & _MASK64)


# --------------------------------------------------------------------- #
# Spec
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ScaleWorldSpec:
    """A self-contained description of one streamed world.

    Two specs with equal fields always produce identical stores; the
    world cache keys its entries on a hash of :meth:`canonical_dict`.

    ``triples`` is the number of *drawn* facts; the store deduplicates,
    so the loaded store can be marginally smaller (collisions are rare
    while ``entities**2 * predicates >> triples``).
    """

    name: str
    triples: int
    entities: int
    predicates: int = 24
    predicate_skew: float = 0.9
    seed: int = 2016

    def __post_init__(self) -> None:
        if self.triples < 1:
            raise SyntheticDataError(f"triples must be >= 1, got {self.triples}")
        if self.entities < 2:
            raise SyntheticDataError(f"entities must be >= 2, got {self.entities}")
        if self.predicates < 1:
            raise SyntheticDataError(f"predicates must be >= 1, got {self.predicates}")
        if self.predicate_skew < 0:
            raise SyntheticDataError(
                f"predicate_skew must be >= 0, got {self.predicate_skew}"
            )

    @property
    def namespace(self) -> Namespace:
        """The namespace all of the world's terms live in."""
        return Namespace(f"http://sofya.repro/scale/{self.name}/")

    def canonical_dict(self) -> Dict[str, Union[str, int, float]]:
        """The spec as a plain dict with stable key order (cache identity)."""
        return {
            "name": self.name,
            "triples": self.triples,
            "entities": self.entities,
            "predicates": self.predicates,
            "predicate_skew": self.predicate_skew,
            "seed": self.seed,
        }

    def predicate_thresholds(self) -> List[float]:
        """Cumulative draw thresholds of the Zipf-like predicate weights."""
        weights = [1.0 / (rank + 1) ** self.predicate_skew for rank in range(self.predicates)]
        total = sum(weights)
        thresholds: List[float] = []
        running = 0.0
        for weight in weights:
            running += weight / total
            thresholds.append(running)
        thresholds[-1] = 1.0
        return thresholds


def scale_world_spec(size: Union[str, int] = "100k", *, seed: int = 2016) -> ScaleWorldSpec:
    """A preset :class:`ScaleWorldSpec` for a named (or explicit) size.

    ``size`` is one of :data:`SCALE_PRESETS` (``"13k"``, ``"100k"``,
    ``"1m"``, ``"10m"``) or an explicit triple count.  Entity count
    scales as ``triples // 8`` so the average entity degree — and with
    it the join fan-out the kernels face — stays constant across sizes.
    """
    if isinstance(size, str):
        key = size.lower()
        if key not in SCALE_PRESETS:
            known = ", ".join(sorted(SCALE_PRESETS))
            raise SyntheticDataError(f"Unknown scale preset {size!r} (known: {known})")
        triples = SCALE_PRESETS[key]
        name = f"scale-{key}"
    else:
        triples = int(size)
        name = f"scale-{triples}"
    return ScaleWorldSpec(
        name=name,
        triples=triples,
        entities=max(64, triples // 8),
        seed=seed,
    )


# --------------------------------------------------------------------- #
# Generation
# --------------------------------------------------------------------- #
@dataclass
class ScaleWorld:
    """The output of :func:`generate_scale_world`."""

    spec: ScaleWorldSpec
    store: Union[TripleStore, ShardedTripleStore]
    dictionary: TermDictionary
    build_seconds: float = 0.0

    @property
    def triples(self) -> int:
        """Distinct triples actually loaded (after dedupe)."""
        return len(self.store)

    def describe(self) -> str:
        """A short text summary (size, rate)."""
        rate = self.triples / self.build_seconds if self.build_seconds else 0.0
        return (
            f"{self.spec.name}: {self.triples} triples, "
            f"{len(self.dictionary)} terms, {self.build_seconds:.2f}s "
            f"({rate:,.0f} triples/s)"
        )


def _intern_vocabulary(
    spec: ScaleWorldSpec, dictionary: TermDictionary
) -> Tuple[array, array]:
    """Intern the world's entity and predicate IRIs, returning their ID columns."""
    namespace = spec.namespace
    entity_ids = array(
        "q", (dictionary.encode(namespace.term(f"e{index}")) for index in range(spec.entities))
    )
    predicate_ids = array(
        "q", (dictionary.encode(namespace.term(f"p{index}")) for index in range(spec.predicates))
    )
    return entity_ids, predicate_ids


def _draw_columns_np(np, spec: ScaleWorldSpec, entity_ids: array, predicate_ids: array):
    """Chunked vectorised draw of the three ID columns."""
    entities = np.frombuffer(entity_ids, dtype=np.int64)
    predicates = np.frombuffer(predicate_ids, dtype=np.int64)
    thresholds = np.asarray(spec.predicate_thresholds(), dtype=np.float64)
    bases = [np.uint64(_stream_base(spec.seed, column)) for column in range(3)]
    top = np.int64(spec.predicates - 1)

    subjects = np.empty(spec.triples, dtype=np.int64)
    predicate_col = np.empty(spec.triples, dtype=np.int64)
    objects = np.empty(spec.triples, dtype=np.int64)
    for start in range(0, spec.triples, CHUNK_ROWS):
        stop = min(start + CHUNK_ROWS, spec.triples)
        counter = np.arange(start, stop, dtype=np.uint64)
        s_hash = _splitmix64_np(np, counter + bases[0])
        p_hash = _splitmix64_np(np, counter + bases[1])
        o_hash = _splitmix64_np(np, counter + bases[2])
        subjects[start:stop] = entities[
            (s_hash % np.uint64(spec.entities)).astype(np.int64)
        ]
        objects[start:stop] = entities[
            (o_hash % np.uint64(spec.entities)).astype(np.int64)
        ]
        # uint64 -> float64 rounds to nearest; dividing by the exact power
        # of two then matches pure-Python `hash / 2**64` bit-for-bit.
        uniform = p_hash.astype(np.float64) / 2.0**64
        slots = np.minimum(
            np.searchsorted(thresholds, uniform, side="right"), top
        )
        predicate_col[start:stop] = predicates[slots]
    return subjects, predicate_col, objects


def _draw_columns_py(spec: ScaleWorldSpec, entity_ids: array, predicate_ids: array):
    """Pure-Python twin of :func:`_draw_columns_np` (identical output)."""
    thresholds = spec.predicate_thresholds()
    bases = [_stream_base(spec.seed, column) for column in range(3)]
    top = spec.predicates - 1
    entity_count = spec.entities

    subjects = array("q")
    predicate_col = array("q")
    objects = array("q")
    for index in range(spec.triples):
        s_hash = _splitmix64((bases[0] + index) & _MASK64)
        p_hash = _splitmix64((bases[1] + index) & _MASK64)
        o_hash = _splitmix64((bases[2] + index) & _MASK64)
        subjects.append(entity_ids[s_hash % entity_count])
        objects.append(entity_ids[o_hash % entity_count])
        uniform = p_hash / 2**64
        slot = min(bisect.bisect_right(thresholds, uniform), top)
        predicate_col.append(predicate_ids[slot])
    return subjects, predicate_col, objects


def generate_scale_world(
    spec: ScaleWorldSpec,
    *,
    dictionary: Optional[TermDictionary] = None,
    shard_count: Optional[int] = None,
    processes: Optional[int] = None,
    start_method: Optional[str] = None,
) -> ScaleWorld:
    """Generate ``spec``'s world through the streaming ID-column path.

    Terms are interned once, the three ID columns are drawn in
    :data:`CHUNK_ROWS` chunks, and the store is assembled by the
    columnar bulk loader — no per-fact ``Triple`` objects exist at any
    point, so the loaded store starts frozen and lazy.

    Parameters
    ----------
    dictionary:
        Intern into an existing dictionary instead of a fresh one.
    shard_count:
        When set, build a subject-range :class:`ShardedTripleStore`
        with that many shards instead of a single store (same content).
    processes / start_method:
        Forwarded to the sharded loader: with ``processes > 1`` the
        per-shard permutation sorts run in worker processes.
    """
    if shard_count is not None and shard_count < 1:
        raise SyntheticDataError(f"shard_count must be >= 1, got {shard_count}")
    started = time.perf_counter()
    term_dictionary = dictionary if dictionary is not None else TermDictionary()
    entity_ids, predicate_ids = _intern_vocabulary(spec, term_dictionary)
    np = _numpy()
    if np is not None:
        columns = _draw_columns_np(np, spec, entity_ids, predicate_ids)
    else:
        columns = _draw_columns_py(spec, entity_ids, predicate_ids)
    subjects, predicate_col, objects = columns
    if shard_count is not None:
        store: Union[TripleStore, ShardedTripleStore] = ShardedTripleStore.from_id_columns(
            term_dictionary,
            subjects,
            predicate_col,
            objects,
            num_shards=shard_count,
            name=spec.name,
            processes=processes,
            start_method=start_method,
        )
    else:
        store = TripleStore.from_id_columns(
            spec.name, term_dictionary, subjects, predicate_col, objects
        )
    return ScaleWorld(
        spec=spec,
        store=store,
        dictionary=term_dictionary,
        build_seconds=time.perf_counter() - started,
    )
