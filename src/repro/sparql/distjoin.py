"""Cross-shard join shipping: broadcast hash joins for non-co-partitioned BGPs.

The scatter layer can only run a group per shard when every top-level
pattern shares one *subject* variable (subject-range partitioning makes
such groups co-partitioned).  Everything else used to fall back to the
single-threaded merged view.  This module removes that fallback for the
common 2–3 pattern shapes — s–o chains and small star/chain mixes — with
a parent-coordinated **distributed hash join**:

1. Pick a *partition variable* ``?v`` that appears in subject position.
   The patterns anchored on ``?v`` (subject == ``?v``) form a
   co-partitioned sub-group: their join results for a given subject ID
   live entirely on that subject's home shard, so scattering the anchor
   is exact and disjoint across shards.
2. Every remaining pattern's **full global match set** is materialised
   once in the parent as parallel int64 ID columns (the PR 6 kernel
   column builder when numpy is available, a pure-Python twin otherwise)
   and broadcast to the workers inside the (cached, pickled-once) plan.
3. Each worker evaluates the anchor locally and probes the broadcast
   tables with a hash join — the classic broadcast join: correct because
   ``scatter(anchor) ⋈ tables`` over disjoint anchor partitions equals
   the full join, multiset-exact.

Shipping only engages when the broadcast side is small: the candidate
with the cheapest total broadcast rows wins, and a candidate above
:data:`DEFAULT_BROADCAST_LIMIT` rows (override with the
``REPRO_BROADCAST_LIMIT`` environment variable) is rejected with a
reason string that :meth:`ShardedQueryEvaluator.explain` surfaces.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.obs import config as _config
from repro.sparql import kernels
from repro.sparql.ast import GroupGraphPattern, TriplePatternNode
from repro.sparql.bindings import IdBinding, Variable
from repro.sparql.plan import resolve_pattern_ids

#: Largest total broadcast side (rows across all shipped patterns) a ship
#: plan may carry; above this, the merged-view fallback is cheaper than
#: pickling the tables to every worker.
DEFAULT_BROADCAST_LIMIT = _config.DEFAULT_BROADCAST_LIMIT


def broadcast_limit() -> int:
    """The configured broadcast-row ceiling (``REPRO_BROADCAST_LIMIT``)."""
    return _config.broadcast_limit()


class BroadcastTable:
    """One shipped pattern's match set as columnar ID data.

    ``variables`` are the pattern's variables in s, p, o position order;
    ``columns`` hold one little-endian int64 byte string per variable
    (bytes pickle compactly and cross process boundaries without copies
    of Python int objects).  ``join_variables`` are the variables already
    bound when this table is probed — the static hash key.  The probe
    index is built lazily per process and cached on the instance.
    """

    __slots__ = ("variables", "join_variables", "columns", "rows", "_index")

    def __init__(
        self,
        variables: Tuple[Variable, ...],
        join_variables: Tuple[Variable, ...],
        columns: Tuple[bytes, ...],
        rows: int,
    ):
        self.variables = variables
        self.join_variables = join_variables
        self.columns = columns
        self.rows = rows
        self._index = None

    def __getstate__(self):
        return (self.variables, self.join_variables, self.columns, self.rows)

    def __setstate__(self, state):
        self.variables, self.join_variables, self.columns, self.rows = state
        self._index = None

    def index(self) -> Dict[Tuple, List[Tuple]]:
        """``join-key -> [extension assignments]``, built once per process."""
        built = self._index
        if built is None:
            decoded = [_decode_column(col, self.rows) for col in self.columns]
            key_slots = [self.variables.index(v) for v in self.join_variables]
            extension = [
                (variable, slot)
                for slot, variable in enumerate(self.variables)
                if variable not in self.join_variables
            ]
            built = {}
            for row in range(self.rows):
                key = tuple(decoded[slot][row] for slot in key_slots)
                assignment = tuple(
                    (variable, decoded[slot][row]) for variable, slot in extension
                )
                bucket = built.get(key)
                if bucket is None:
                    bucket = built[key] = []
                bucket.append(assignment)
            self._index = built
        return built


def _decode_column(data: bytes, rows: int) -> List[int]:
    if kernels.kernels_available():
        return kernels._np.frombuffer(data, dtype="<i8").tolist()
    column = array("q")
    column.frombytes(data)
    return column.tolist()


def _encode_column(values) -> bytes:
    if isinstance(values, array):
        return values.tobytes()
    return kernels._np.ascontiguousarray(values, dtype="<i8").tobytes()


class ShipPlan:
    """A complete cross-shard join plan: scatter the anchor, probe the rest.

    Picklable and immutable once built; the executor pickles it once per
    query and workers cache the unpickled instance, so broadcast columns
    cross each worker's queue exactly once.
    """

    __slots__ = ("partition_variable", "anchor", "tables", "shipped")

    def __init__(
        self,
        partition_variable: Variable,
        anchor: GroupGraphPattern,
        tables: Tuple[BroadcastTable, ...],
        shipped: Tuple[TriplePatternNode, ...],
    ):
        self.partition_variable = partition_variable
        self.anchor = anchor
        self.tables = tables
        self.shipped = shipped

    def __getstate__(self):
        return (self.partition_variable, self.anchor, self.tables, self.shipped)

    def __setstate__(self, state):
        self.partition_variable, self.anchor, self.tables, self.shipped = state

    @property
    def broadcast_rows(self) -> int:
        """Total rows shipped across all broadcast tables."""
        return sum(table.rows for table in self.tables)

    @property
    def broadcast_bytes(self) -> int:
        """Total encoded column bytes shipped across all broadcast tables."""
        return sum(
            len(column) for table in self.tables for column in table.columns
        )

    def describe(self) -> str:
        anchors = len(self.anchor.elements)
        return (
            f"ship[anchor=?{self.partition_variable.name}({anchors} patterns) "
            f"broadcast={len(self.tables)} tables/{self.broadcast_rows} rows]"
        )


def build_ship_plan(
    store, dictionary, group: GroupGraphPattern, limit: Optional[int] = None
) -> Tuple[Optional[ShipPlan], str]:
    """Try to build a ship plan for ``group``; ``(None, reason)`` on failure.

    Requirements, each yielding a distinct reason for explain output:

    * the group is a pure BGP (triple patterns only) of >= 2 patterns;
    * some subject-position variable anchors a non-empty pattern subset,
      and the remaining patterns connect to the anchor transitively via
      shared variables (a disconnected shipped pattern would broadcast a
      Cartesian product) without repeated variables inside one pattern;
    * the cheapest candidate's total broadcast rows (exact index counts)
      stay within ``limit``.
    """
    if limit is None:
        limit = broadcast_limit()
    elements = group.elements
    if not elements:
        return None, "empty group"
    if not all(isinstance(e, TriplePatternNode) for e in elements):
        return None, "unsupported shape: group mixes non-pattern elements"
    patterns = list(elements)
    if len(patterns) < 2:
        return None, "single pattern without a subject variable"
    candidates = sorted(
        {p.subject for p in patterns if isinstance(p.subject, Variable)},
        key=lambda v: v.name,
    )
    if not candidates:
        return None, "non-co-partitioned: no variable in subject position"

    best: Optional[Tuple[int, Variable, List, List]] = None
    structural = "non-co-partitioned: no anchor candidate connects every pattern"
    for candidate in candidates:
        anchored = [p for p in patterns if p.subject == candidate]
        rest = [p for p in patterns if p.subject != candidate]
        if not rest:
            # Fully co-partitioned on this candidate; the plain scatter
            # path owns that case, shipping would only add overhead.
            continue
        ordered = _order_connected(anchored, rest)
        if ordered is None:
            continue
        total = 0
        for pattern in ordered:
            consts = resolve_pattern_ids(dictionary, pattern)
            if consts is not None:
                total += store.count_ids(*consts)
        if best is None or total < best[0]:
            best = (total, candidate, anchored, ordered)

    if best is None:
        return None, structural
    total, candidate, anchored, ordered = best
    if total > limit:
        return None, (
            f"broadcast side too large ({total} rows > limit {limit}; "
            f"raise REPRO_BROADCAST_LIMIT to override)"
        )

    bound = set()
    for pattern in anchored:
        bound.update(pattern.variables())
    tables: List[BroadcastTable] = []
    for pattern in ordered:
        variables = tuple(dict.fromkeys(pattern.variables()))
        join_variables = tuple(v for v in variables if v in bound)
        consts = resolve_pattern_ids(dictionary, pattern)
        rows, columns = _pattern_table(store, consts, len(variables))
        if not variables:
            # Fully-constant pattern: an existence check. Zero rows make
            # the whole group empty; represent that as an empty keyed
            # table so probes find nothing.  One row is a tautology.
            if rows:
                continue
            tables.append(BroadcastTable((), (), (), 0))
            continue
        tables.append(BroadcastTable(variables, join_variables, columns, rows))
        bound.update(variables)
    return (
        ShipPlan(candidate, GroupGraphPattern(tuple(anchored)), tuple(tables), tuple(ordered)),
        "",
    )


def _order_connected(
    anchored: List[TriplePatternNode], rest: List[TriplePatternNode]
) -> Optional[List[TriplePatternNode]]:
    """Greedy connected ordering of the shipped patterns, or ``None``.

    Each picked pattern must share a variable with what is already bound
    (anchor variables plus previously shipped patterns) and may not repeat
    a variable within itself (the columnar table carries no within-row
    equality check).
    """
    bound = set()
    for pattern in anchored:
        bound.update(pattern.variables())
    ordered: List[TriplePatternNode] = []
    pool = list(rest)
    while pool:
        pick = None
        for pattern in pool:
            variables = pattern.variables()
            if len(set(variables)) != len(variables):
                return None
            if not variables or set(variables) & bound:
                pick = pattern
                break
        if pick is None:
            return None
        pool.remove(pick)
        ordered.append(pick)
        bound.update(pick.variables())
    return ordered


def _pattern_table(store, consts, var_count: int) -> Tuple[int, Tuple[bytes, ...]]:
    """A resolved pattern's full match set as ``(rows, int64 column bytes)``.

    ``consts is None`` (a constant the dictionary never saw) is an empty
    table.  Uses the vectorized kernel column builder when numpy is
    available and an ``array('q')`` accumulation loop otherwise — byte
    layouts are identical, so the ``REPRO_NO_NUMPY`` job exercises the
    same wire format.
    """
    if consts is None:
        return 0, tuple(b"" for _ in range(var_count))
    if kernels.kernels_available():
        rows, columns = kernels.pattern_columns(store, consts)
        return rows, tuple(_encode_column(col) for col in columns)
    positions = [i for i, c in enumerate(consts) if c is None]
    columns = [array("q") for _ in positions]
    rows = 0
    for ids in store.match_ids(*consts):
        for column, position in zip(columns, positions):
            column.append(ids[position])
        rows += 1
    return rows, tuple(column.tobytes() for column in columns)


def execute_ship_plan(
    evaluator, plan: ShipPlan, initial: IdBinding
) -> Iterator[IdBinding]:
    """Run a ship plan against one shard's local evaluator.

    The anchor sub-group streams through the normal (vectorized when
    possible) local pipeline; each broadcast table is then probed with a
    dict hash join.  Extensions go through
    :meth:`IdBinding.extend`'s conflict check, so variables the initial
    binding already pins filter correctly.
    """
    solutions: Iterable[IdBinding] = evaluator._evaluate_group(plan.anchor, initial)
    for table in plan.tables:
        solutions = _probe_table(solutions, table)
    return iter(solutions)


def _probe_table(
    solutions: Iterable[IdBinding], table: BroadcastTable
) -> Iterator[IdBinding]:
    index: Optional[Dict] = None
    join_variables = table.join_variables
    for solution in solutions:
        if index is None:
            index = table.index()
            if not index:
                return
        key = tuple(solution.get(v) for v in join_variables)
        bucket = index.get(key)
        if not bucket:
            continue
        for assignment in bucket:
            extended: Optional[IdBinding] = solution
            for variable, value in assignment:
                extended = extended.extend(variable, value)  # type: ignore[union-attr]
                if extended is None:
                    break
            if extended is not None:
                yield extended
