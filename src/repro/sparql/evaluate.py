"""Query evaluation against a :class:`~repro.store.TripleStore`.

The evaluator walks the AST produced by the parser.  Basic graph patterns
are evaluated by nested-loop joins with a simple selectivity-based pattern
reordering (most-bound patterns first); this is plenty for the KB sizes the
reproduction uses while remaining easy to reason about.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import SparqlError
from repro.rdf.terms import Term
from repro.sparql.ast import (
    AskQuery,
    CountExpression,
    FilterNode,
    GroupGraphPattern,
    OptionalNode,
    ProjectionItem,
    Query,
    SelectQuery,
    TriplePatternNode,
    UnionNode,
    ValuesNode,
)
from repro.sparql.bindings import Binding, Variable
from repro.sparql.functions import EvalError, ExpressionEvaluator, value_to_term
from repro.sparql.parser import parse_query
from repro.sparql.results import AskResult, ResultSet
from repro.store.triplestore import TripleStore


class QueryEvaluator:
    """Evaluates parsed queries against one triple store."""

    def __init__(self, store: TripleStore):
        self.store = store
        self._expressions = ExpressionEvaluator(exists_callback=self._exists)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def evaluate(self, query: Union[Query, str]) -> Union[ResultSet, AskResult]:
        """Evaluate a query (AST or SPARQL text) and return its result."""
        if isinstance(query, str):
            query = parse_query(query)
        if isinstance(query, SelectQuery):
            return self._evaluate_select(query)
        if isinstance(query, AskQuery):
            return self._evaluate_ask(query)
        raise SparqlError(f"Unsupported query type: {type(query).__name__}")

    # ------------------------------------------------------------------ #
    # SELECT / ASK
    # ------------------------------------------------------------------ #
    def _evaluate_select(self, query: SelectQuery) -> ResultSet:
        solutions = list(self._evaluate_group(query.where, Binding.EMPTY))

        if query.is_aggregate:
            return self._evaluate_aggregate(query, solutions)

        if query.select_all:
            variables = query.where.variables()
        else:
            variables = [item.output_variable for item in query.projection]

        rows: List[Binding] = []
        for solution in solutions:
            row = self._project(query, solution, variables)
            rows.append(row)

        if query.order_by:
            rows = self._order_rows(rows, query)
        if query.distinct:
            rows = self._distinct(rows)
        rows = self._slice(rows, query.offset, query.limit)
        return ResultSet(variables, rows)

    def _evaluate_ask(self, query: AskQuery) -> AskResult:
        for _ in self._evaluate_group(query.where, Binding.EMPTY):
            return AskResult(True)
        return AskResult(False)

    def _evaluate_aggregate(self, query: SelectQuery, solutions: List[Binding]) -> ResultSet:
        """Evaluate a COUNT-only aggregate query (optionally GROUP BY)."""
        non_aggregate = [
            item
            for item in query.projection
            if not isinstance(item.expression, CountExpression)
        ]
        group_by = list(query.group_by)
        if not group_by and non_aggregate:
            group_by = [item.output_variable for item in non_aggregate if item.variable]

        groups: dict[Tuple[Optional[Term], ...], List[Binding]] = {}
        if group_by:
            for solution in solutions:
                key = tuple(solution.get_term(v) for v in group_by)
                groups.setdefault(key, []).append(solution)
        else:
            # A COUNT without GROUP BY always yields exactly one row, even
            # over an empty solution sequence (count = 0).
            groups[()] = list(solutions)

        variables = [item.output_variable for item in query.projection]
        rows: List[Binding] = []
        for key, members in groups.items():
            data = {}
            for variable, term in zip(group_by, key):
                if term is not None:
                    data[variable] = term
            for item in query.projection:
                if isinstance(item.expression, CountExpression):
                    count = self._count(item.expression, members)
                    data[item.output_variable] = value_to_term(count)
                elif item.variable is not None and item.variable in data:
                    pass
            rows.append(Binding(data))

        rows = self._slice(rows, query.offset, query.limit)
        return ResultSet(variables, rows)

    @staticmethod
    def _count(expression: CountExpression, solutions: Sequence[Binding]) -> int:
        if expression.counts_all:
            return len(solutions)
        variable = expression.variable
        assert variable is not None
        values = [s.get_term(variable) for s in solutions if s.get_term(variable) is not None]
        if expression.distinct:
            return len(set(values))
        return len(values)

    def _project(
        self, query: SelectQuery, solution: Binding, variables: List[Variable]
    ) -> Binding:
        if query.select_all:
            return solution.project(variables)
        data = {}
        for item in query.projection:
            if item.expression is not None and not isinstance(item.expression, CountExpression):
                try:
                    value = self._expressions.evaluate(item.expression, solution)
                except EvalError:
                    continue
                data[item.output_variable] = value_to_term(value)
            elif item.variable is not None:
                term = solution.get_term(item.variable)
                if term is not None:
                    data[item.output_variable] = term
        return Binding(data)

    def _order_rows(self, rows: List[Binding], query: SelectQuery) -> List[Binding]:
        def key_for(row: Binding) -> Tuple:
            keys: List = []
            for condition in query.order_by:
                try:
                    value = self._expressions.evaluate(condition.expression, row)
                except EvalError:
                    keys.append((0, ""))
                    continue
                from repro.rdf.terms import IRI, Literal

                if isinstance(value, Literal):
                    keys.append((1,) + value.sort_key())
                elif isinstance(value, IRI):
                    keys.append((2, 0.0, value.value))
                elif isinstance(value, bool):
                    keys.append((1, float(value), ""))
                elif isinstance(value, (int, float)):
                    keys.append((1, 0, float(value)))
                else:
                    keys.append((1, 0.0, str(value)))
            return tuple(keys)

        ordered = rows
        # Apply conditions right-to-left so earlier conditions dominate
        # (stable sort); descending handled per condition.
        for index in range(len(query.order_by) - 1, -1, -1):
            condition = query.order_by[index]

            def single_key(row: Binding, idx: int = index) -> Tuple:
                return key_for(row)[idx]

            ordered = sorted(ordered, key=single_key, reverse=condition.descending)
        return ordered

    @staticmethod
    def _distinct(rows: List[Binding]) -> List[Binding]:
        seen = set()
        unique: List[Binding] = []
        for row in rows:
            if row not in seen:
                seen.add(row)
                unique.append(row)
        return unique

    @staticmethod
    def _slice(rows: List[Binding], offset: int, limit: Optional[int]) -> List[Binding]:
        if offset:
            rows = rows[offset:]
        if limit is not None:
            rows = rows[:limit]
        return rows

    # ------------------------------------------------------------------ #
    # Graph pattern evaluation
    # ------------------------------------------------------------------ #
    def _evaluate_group(
        self, group: GroupGraphPattern, initial: Binding
    ) -> Iterator[Binding]:
        solutions: Iterable[Binding] = [initial]
        elements = self._reorder_elements(group)
        for element in elements:
            if isinstance(element, TriplePatternNode):
                solutions = self._join_pattern(solutions, element)
            elif isinstance(element, FilterNode):
                solutions = self._apply_filter(solutions, element)
            elif isinstance(element, OptionalNode):
                solutions = self._apply_optional(solutions, element)
            elif isinstance(element, UnionNode):
                solutions = self._apply_union(solutions, element)
            elif isinstance(element, ValuesNode):
                solutions = self._apply_values(solutions, element)
            elif isinstance(element, GroupGraphPattern):
                solutions = self._apply_subgroup(solutions, element)
            else:  # pragma: no cover - parser prevents this
                raise SparqlError(f"Unsupported group element: {element!r}")
        return iter(list(solutions))

    @staticmethod
    def _reorder_elements(group: GroupGraphPattern) -> List:
        """Order triple patterns before filters applied late, keep others in place.

        Triple patterns are sorted so that patterns with more constant terms
        run first (cheap selectivity heuristic), while FILTER / OPTIONAL /
        UNION keep their relative position *after* all triple patterns of
        the group, matching SPARQL's bottom-up semantics for the subset we
        support.
        """
        triple_patterns = [e for e in group.elements if isinstance(e, TriplePatternNode)]
        values_nodes = [e for e in group.elements if isinstance(e, ValuesNode)]
        others = [
            e
            for e in group.elements
            if not isinstance(e, (TriplePatternNode, ValuesNode))
        ]

        def constants(pattern: TriplePatternNode) -> int:
            return sum(
                0 if isinstance(t, Variable) else 1
                for t in (pattern.subject, pattern.predicate, pattern.object)
            )

        ordered_patterns = sorted(triple_patterns, key=constants, reverse=True)
        return values_nodes + ordered_patterns + others

    def _join_pattern(
        self, solutions: Iterable[Binding], pattern: TriplePatternNode
    ) -> Iterator[Binding]:
        for solution in solutions:
            yield from self._match_pattern(pattern, solution)

    def _match_pattern(
        self, pattern: TriplePatternNode, solution: Binding
    ) -> Iterator[Binding]:
        def resolve(term) -> Optional[Term]:
            if isinstance(term, Variable):
                return solution.get_term(term)
            return term

        subject = resolve(pattern.subject)
        predicate = resolve(pattern.predicate)
        obj = resolve(pattern.object)

        for triple in self.store.match(subject, predicate, obj):
            extended: Optional[Binding] = solution
            for position, value in (
                (pattern.subject, triple.subject),
                (pattern.predicate, triple.predicate),
                (pattern.object, triple.object),
            ):
                if isinstance(position, Variable):
                    extended = extended.extend(position, value)  # type: ignore[union-attr]
                    if extended is None:
                        break
            if extended is not None:
                yield extended

    def _apply_filter(
        self, solutions: Iterable[Binding], node: FilterNode
    ) -> Iterator[Binding]:
        for solution in solutions:
            if self._expressions.evaluate_boolean(node.expression, solution):
                yield solution

    def _apply_optional(
        self, solutions: Iterable[Binding], node: OptionalNode
    ) -> Iterator[Binding]:
        for solution in solutions:
            matched = False
            for extended in self._evaluate_group(node.group, solution):
                matched = True
                yield extended
            if not matched:
                yield solution

    def _apply_union(
        self, solutions: Iterable[Binding], node: UnionNode
    ) -> Iterator[Binding]:
        for solution in solutions:
            for branch in node.branches:
                yield from self._evaluate_group(branch, solution)

    def _apply_values(
        self, solutions: Iterable[Binding], node: ValuesNode
    ) -> Iterator[Binding]:
        for solution in solutions:
            for row in node.rows:
                extended: Optional[Binding] = solution
                for variable, term in zip(node.variables, row):
                    if term is None:
                        continue
                    extended = extended.extend(variable, term)  # type: ignore[union-attr]
                    if extended is None:
                        break
                if extended is not None:
                    yield extended

    def _apply_subgroup(
        self, solutions: Iterable[Binding], group: GroupGraphPattern
    ) -> Iterator[Binding]:
        for solution in solutions:
            yield from self._evaluate_group(group, solution)

    def _exists(self, group: object, binding: Binding) -> bool:
        assert isinstance(group, GroupGraphPattern)
        for _ in self._evaluate_group(group, binding):
            return True
        return False


def evaluate_query(store: TripleStore, query: Union[Query, str]) -> Union[ResultSet, AskResult]:
    """Convenience wrapper: evaluate ``query`` against ``store``."""
    return QueryEvaluator(store).evaluate(query)
