"""Query evaluation against a :class:`~repro.store.TripleStore`.

The evaluator walks the AST produced by the parser.  Basic graph patterns
are evaluated **in ID space**: variables bind to dictionary IDs (plain
ints) straight off the store's :meth:`~repro.store.TripleStore.match_ids`
index scans, so join equality checks compare integers rather than hashing
Term objects.  Evaluation is **streaming**: the whole BGP pipeline is a
chain of generators, so ASK stops at the first solution, LIMIT queries
without ORDER BY stop as soon as the page is full, and COUNT-only
aggregates fold solutions into counters without materialising a solution
list.  Terms are only materialised for FILTER expression evaluation and
for the rows actually returned.

Plan → operator pipeline
------------------------
Each basic graph pattern goes through :func:`repro.sparql.plan.plan_bgp`:
a greedy planner estimates per-pattern cardinalities from the store's
index bookkeeping, orders patterns by estimated output size given the
variables already bound, and labels every step with a physical operator.
The evaluator then assembles the generator chain from those labels:

* ``scan`` / ``nested`` — per-solution index lookups
  (:meth:`_join_pattern`), the cheapest choice for selective patterns;
* ``merge`` — :meth:`_merge_join`, a sort-merge semi-join that walks the
  pattern's sorted third-level ID run in lockstep with the (sorted)
  solution stream;
* ``hash`` — :meth:`_hash_join`, which builds a hash table over the
  smaller estimated side once and probes it per streamed solution (also
  used to avoid rescanning disconnected patterns per solution).

All operators stream left-to-right, so ASK / LIMIT short-circuiting is
preserved; the hash build side is the only materialised piece and the
planner only picks it when that side is the smaller one.  Plans are
cached per (group, bound-variables) and invalidated whenever the store's
``data_version`` mutation stamp changes (every ``add`` / ``remove`` /
``bulk_load`` bumps it, so plans cannot go stale after mutations that
leave the size unchanged); ``QueryEvaluator(store, use_planner=False)``
keeps the original constant-count ordering with nested joins as a
reference implementation (benchmarks and property tests cross-check the
two).
"""

from __future__ import annotations

import heapq
import threading
from itertools import islice
from typing import Iterable, Iterator, List, Optional, Tuple, Union

from repro.errors import SparqlError
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.sparql.ast import (
    AskQuery,
    CountExpression,
    FilterNode,
    GroupGraphPattern,
    OptionalNode,
    Query,
    SelectQuery,
    TriplePatternNode,
    UnionNode,
    ValuesNode,
)
from repro.sparql import kernels
from repro.sparql.bindings import Binding, IdBinding, Variable
from repro.sparql.functions import EvalError, ExpressionEvaluator, value_to_term
from repro.sparql.parser import parse_query
from repro.sparql.plan import (
    HASH,
    MERGE,
    PLAN_CACHE_LIMIT,
    BGPPlan,
    plan_bgp,
    plan_context,
    resolve_pattern_ids,
)
from repro.sparql.results import AskResult, ResultSet
from repro.store.triplestore import TripleStore

#: Sentinel for "constant term unknown to the store's dictionary": the
#: pattern can never match, which is distinct from ``None`` (wildcard).
_MISS = object()


class _Descending:
    """Wraps one ORDER BY sort-key component with inverted comparisons.

    Tuple comparison probes ``==`` to skip the equal prefix and ``<`` to
    decide; inverting both makes a DESC condition sort descending inside a
    single lexicographic key while staying stable (equal keys still compare
    equal), matching the per-condition ``reverse=True`` stable sorts of
    :meth:`QueryEvaluator._order_rows`.
    """

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other: "_Descending") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Descending) and other.value == self.value

    def __hash__(self) -> int:  # pragma: no cover - keys are never hashed
        return hash(self.value)


class QueryEvaluator:
    """Evaluates parsed queries against one triple store.

    Parameters
    ----------
    store:
        The dataset queried.
    use_planner:
        When ``True`` (default), basic graph patterns are ordered and
        joined by the cardinality-driven planner (:mod:`repro.sparql.plan`).
        ``False`` keeps the original constant-count ordering with nested
        index-lookup joins — a reference implementation used by property
        tests and benchmarks to cross-check the planned operators.
    use_vectorized:
        ``None`` (default) runs planned BGPs through the numpy block
        kernels (:mod:`repro.sparql.kernels`) whenever they are available;
        ``False`` keeps the scalar per-row operators as the differential
        reference.  ``True`` still degrades silently to the scalar path
        when numpy is missing or ``REPRO_NO_NUMPY`` is set, so callers
        never need to guard on the environment.
    """

    def __init__(
        self,
        store: TripleStore,
        use_planner: bool = True,
        use_vectorized: Optional[bool] = None,
    ):
        self.store = store
        self._dict = store.dictionary
        self._expressions = ExpressionEvaluator(exists_callback=self._exists)
        self._use_planner = use_planner
        if use_vectorized is None:
            self._use_vectorized = kernels.kernels_available()
        else:
            self._use_vectorized = bool(use_vectorized) and kernels.kernels_available()
        self._metrics = obs_metrics.registry()
        self._tracer = obs_trace.recorder()
        # Per-thread execution-mode note (single / fast-count / fold /
        # scatter / ship / global): first write per query wins, so the
        # top-level routing decision survives nested group evaluations.
        self._mode_local = threading.local()

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def evaluate(self, query: Union[Query, str]) -> Union[ResultSet, AskResult]:
        """Evaluate a query (AST or SPARQL text) and return its result."""
        self._mode_local.mode = None
        if isinstance(query, str):
            query = parse_query(query)
        if isinstance(query, SelectQuery):
            return self._evaluate_select(query)
        if isinstance(query, AskQuery):
            return self._evaluate_ask(query)
        raise SparqlError(f"Unsupported query type: {type(query).__name__}")

    def _note_mode(self, mode: str) -> None:
        """Record this query's execution mode (first write per query wins)."""
        if getattr(self._mode_local, "mode", None) is None:
            self._mode_local.mode = mode

    def last_mode(self) -> str:
        """The execution mode of this thread's most recent query."""
        return getattr(self._mode_local, "mode", None) or "single"

    # ------------------------------------------------------------------ #
    # SELECT / ASK
    # ------------------------------------------------------------------ #
    def _evaluate_select(self, query: SelectQuery) -> ResultSet:
        if query.is_aggregate:
            fast = self._try_fast_count(query)
            if fast is not None:
                return fast

        solutions = self._evaluate_group(query.where, IdBinding.EMPTY)

        if query.is_aggregate:
            return self._evaluate_aggregate(query, solutions)

        if query.select_all:
            variables = query.where.variables()
        else:
            variables = [item.output_variable for item in query.projection]

        if query.order_by:
            # Ordering needs the full solution sequence; decode eagerly.
            decoded = (
                self._project(query, solution, variables).decode(self._dict)
                for solution in solutions
            )
            if query.limit is not None:
                # ORDER BY ... LIMIT k: a bounded heap selects the top
                # offset+k rows in one pass instead of materialising and
                # fully sorting every solution.
                return ResultSet(variables, self._top_rows(decoded, query))
            rows = self._order_rows(list(decoded), query)
            if query.distinct:
                rows = self._distinct_list(rows)
            rows = self._slice(rows, query.offset, query.limit)
            return ResultSet(variables, rows)

        # Streaming path: project, deduplicate and page in ID space, then
        # decode only the rows that survive OFFSET/LIMIT.
        projected: Iterator[IdBinding] = (
            self._project(query, solution, variables) for solution in solutions
        )
        if query.distinct:
            projected = self._distinct_stream(projected)
        if query.offset or query.limit is not None:
            stop = None if query.limit is None else query.offset + query.limit
            projected = islice(projected, query.offset, stop)
        return ResultSet(variables, [row.decode(self._dict) for row in projected])

    def _evaluate_ask(self, query: AskQuery) -> AskResult:
        for _ in self._evaluate_group(query.where, IdBinding.EMPTY):
            return AskResult(True)
        return AskResult(False)

    def _try_fast_count(self, query: SelectQuery) -> Optional[ResultSet]:
        """Answer a single-pattern, non-grouped COUNT query from index counts.

        The typed client's ``count_facts`` / ``count_subjects`` shapes —
        ``SELECT (COUNT(*) AS ?c) WHERE { ?s <p> ?o }`` and the
        ``COUNT(DISTINCT ?v)`` variant — are issued constantly by the
        aligner.  Plain counts are O(1) index lookups; distinct counts
        never materialise solutions but may union per-key ID runs (see
        :meth:`TripleStore.count_distinct_ids`).  Returns ``None`` when
        the query does not fit the shape.
        """
        if query.group_by:
            return None
        elements = query.where.elements
        if len(elements) != 1 or not isinstance(elements[0], TriplePatternNode):
            return None
        if any(
            not isinstance(item.expression, CountExpression) for item in query.projection
        ):
            return None
        pattern = elements[0]

        position_of = {}
        resolved = []
        missing = False
        for position, term in zip(
            "spo", (pattern.subject, pattern.predicate, pattern.object)
        ):
            if isinstance(term, Variable):
                if term in position_of:
                    return None  # repeated variable joins within the pattern
                position_of[term] = position
                resolved.append(None)
            else:
                tid = self._dict.id_for(term)
                if tid is None:
                    missing = True  # constant absent from the store
                resolved.append(tid)
        s, p, o = resolved

        data = {}
        for item in query.projection:
            expression = item.expression
            if missing:
                count = 0
            elif expression.counts_all or (
                not expression.distinct and expression.variable in position_of
            ):
                count = self.store.count_ids(s, p, o)
            elif expression.distinct and expression.variable in position_of:
                count = self.store.count_distinct_ids(
                    position_of[expression.variable], s, p, o
                )
            else:
                count = 0  # COUNT over a variable the pattern never binds
            data[item.output_variable] = value_to_term(count)

        variables = [item.output_variable for item in query.projection]
        rows = self._slice([Binding(data)], query.offset, query.limit)
        return ResultSet(variables, rows)

    def _evaluate_aggregate(
        self, query: SelectQuery, solutions: Iterable[IdBinding]
    ) -> ResultSet:
        """Fold a COUNT-only aggregate query (optionally GROUP BY) in one pass."""
        non_aggregate = [
            item
            for item in query.projection
            if not isinstance(item.expression, CountExpression)
        ]
        count_items = [
            item
            for item in query.projection
            if isinstance(item.expression, CountExpression)
        ]
        group_by = list(query.group_by)
        if not group_by and non_aggregate:
            group_by = [item.output_variable for item in non_aggregate if item.variable]

        def fresh_accumulators() -> list:
            return [
                set() if item.expression.distinct and not item.expression.counts_all else 0
                for item in count_items
            ]

        def accumulate(accumulators: list, solution: IdBinding) -> None:
            for index, item in enumerate(count_items):
                expression = item.expression
                if expression.counts_all:
                    accumulators[index] += 1
                    continue
                value = solution.get(expression.variable)
                if value is None:
                    continue
                if expression.distinct:
                    accumulators[index].add(value)
                else:
                    accumulators[index] += 1

        groups: dict[Tuple, list] = {}
        if group_by:
            for solution in solutions:
                key = tuple(solution.get(v) for v in group_by)
                accumulators = groups.get(key)
                if accumulators is None:
                    accumulators = groups[key] = fresh_accumulators()
                accumulate(accumulators, solution)
        else:
            # A COUNT without GROUP BY always yields exactly one row, even
            # over an empty solution sequence (count = 0).
            accumulators = groups[()] = fresh_accumulators()
            for solution in solutions:
                accumulate(accumulators, solution)

        variables = [item.output_variable for item in query.projection]
        decode = self._dict.decode
        rows: List[Binding] = []
        for key, accumulators in groups.items():
            data = {}
            for variable, value in zip(group_by, key):
                if value is not None:
                    data[variable] = decode(value) if type(value) is int else value
            counters = iter(accumulators)
            for item in query.projection:
                if isinstance(item.expression, CountExpression):
                    counter = next(counters)
                    count = len(counter) if isinstance(counter, set) else counter
                    data[item.output_variable] = value_to_term(count)
            rows.append(Binding(data))

        rows = self._slice(rows, query.offset, query.limit)
        return ResultSet(variables, rows)

    def _project(
        self, query: SelectQuery, solution: IdBinding, variables: List[Variable]
    ) -> IdBinding:
        """Project a solution onto the output variables, staying in ID space.

        Expression projections are evaluated over a decoded Term binding
        and their results stored as Terms (IdBinding values may be either).
        """
        if query.select_all:
            data = {}
            for variable in variables:
                value = solution.get(variable)
                if value is not None:
                    data[variable] = value
            return IdBinding(data)
        data = {}
        decoded: Optional[Binding] = None
        for item in query.projection:
            if item.expression is not None and not isinstance(item.expression, CountExpression):
                if decoded is None:
                    decoded = solution.decode(self._dict)
                try:
                    value = self._expressions.evaluate(item.expression, decoded)
                except EvalError:
                    continue
                data[item.output_variable] = value_to_term(value)
            elif item.variable is not None:
                value = solution.get(item.variable)
                if value is not None:
                    data[item.output_variable] = value
        return IdBinding(data)

    def _condition_keys(self, query: SelectQuery):
        """``row -> (key per ORDER BY condition)`` for sorting decoded rows."""

        def key_for(row: Binding) -> Tuple:
            keys: List = []
            for condition in query.order_by:
                try:
                    value = self._expressions.evaluate(condition.expression, row)
                except EvalError:
                    keys.append((0, ""))
                    continue
                from repro.rdf.terms import IRI, Literal

                if isinstance(value, Literal):
                    keys.append((1,) + value.sort_key())
                elif isinstance(value, IRI):
                    keys.append((2, 0.0, value.value))
                elif isinstance(value, bool):
                    keys.append((1, float(value), ""))
                elif isinstance(value, (int, float)):
                    keys.append((1, 0, float(value)))
                else:
                    keys.append((1, 0.0, str(value)))
            return tuple(keys)

        return key_for

    def _order_rows(self, rows: List[Binding], query: SelectQuery) -> List[Binding]:
        key_for = self._condition_keys(query)
        ordered = rows
        # Apply conditions right-to-left so earlier conditions dominate
        # (stable sort); descending handled per condition.
        for index in range(len(query.order_by) - 1, -1, -1):
            condition = query.order_by[index]

            def single_key(row: Binding, idx: int = index) -> Tuple:
                return key_for(row)[idx]

            ordered = sorted(ordered, key=single_key, reverse=condition.descending)
        return ordered

    def _top_rows(self, rows: Iterable[Binding], query: SelectQuery) -> List[Binding]:
        """The ``ORDER BY ... [OFFSET] LIMIT k`` page via a bounded heap.

        Equivalent to :meth:`_order_rows` + distinct + slice: the heap keeps
        only ``offset + limit`` rows alive, descending conditions compare
        through :class:`_Descending` (stable, like ``reverse=True`` sorts),
        and ``heapq.nsmallest`` preserves first-occurrence order between
        equal keys exactly as the stable full sort would.
        """
        if query.distinct:
            rows = self._distinct_stream(rows)
        keep = query.offset + query.limit
        if keep <= 0:
            return []
        key_for = self._condition_keys(query)
        descending = [condition.descending for condition in query.order_by]
        if any(descending):

            def sort_key(row: Binding) -> Tuple:
                return tuple(
                    _Descending(key) if desc else key
                    for key, desc in zip(key_for(row), descending)
                )

        else:
            sort_key = key_for
        top = heapq.nsmallest(keep, rows, key=sort_key)
        return top[query.offset :]

    @staticmethod
    def _distinct_list(rows: List[Binding]) -> List[Binding]:
        seen = set()
        unique: List[Binding] = []
        for row in rows:
            if row not in seen:
                seen.add(row)
                unique.append(row)
        return unique

    @staticmethod
    def _distinct_stream(rows: Iterable[IdBinding]) -> Iterator[IdBinding]:
        seen = set()
        for row in rows:
            if row not in seen:
                seen.add(row)
                yield row

    @staticmethod
    def _slice(rows: List[Binding], offset: int, limit: Optional[int]) -> List[Binding]:
        if offset:
            rows = rows[offset:]
        if limit is not None:
            rows = rows[:limit]
        return rows

    # ------------------------------------------------------------------ #
    # Graph pattern evaluation (streaming, ID space)
    # ------------------------------------------------------------------ #
    def _evaluate_group(
        self, group: GroupGraphPattern, initial: IdBinding
    ) -> Iterator[IdBinding]:
        """Evaluate one group: VALUES first, then the planned BGP, then the rest.

        FILTER / OPTIONAL / UNION / subgroups keep their relative position
        *after* all triple patterns of the group, matching SPARQL's
        bottom-up semantics for the subset we support.
        """
        values_nodes = [e for e in group.elements if isinstance(e, ValuesNode)]
        patterns = [e for e in group.elements if isinstance(e, TriplePatternNode)]
        others = [
            e
            for e in group.elements
            if not isinstance(e, (TriplePatternNode, ValuesNode))
        ]

        solutions: Iterable[IdBinding] = (initial,)
        for node in values_nodes:
            solutions = self._apply_values(solutions, node)

        if patterns:
            if self._use_planner:
                bound = set(initial)
                bound |= self._values_bound(values_nodes)
                plan = self._plan_for(group, patterns, bound, not values_nodes)
                # Kernel engagement and stage spans are only recorded for
                # root evaluations (empty input binding): OPTIONAL /
                # EXISTS probes re-enter here once per solution, where
                # per-call accounting would swamp both the registry and
                # the trace tree.
                root_call = not len(initial)
                tracer = self._tracer
                trace_steps = root_call and tracer.active
                vectorized = None
                if self._use_vectorized and not values_nodes and root_call:
                    # Kernels compute complete solutions from the store
                    # alone, so they only replace the single-empty-input
                    # case (the top-level group); OPTIONAL / EXISTS inner
                    # groups carry bindings and stay scalar.
                    vectorized = kernels.execute(self, plan)
                    if vectorized is not None:
                        self._metrics.increment("kernel.vectorized")
                    else:
                        self._metrics.increment("kernel.fallback.unsupported-step")
                elif root_call:
                    reason = "disabled" if not self._use_vectorized else "bound-input"
                    self._metrics.increment("kernel.fallback." + reason)
                if vectorized is not None:
                    solutions = vectorized
                    if trace_steps:
                        span = tracer.stream_span(
                            "kernel", steps=len(plan.steps)
                        )
                        if span is not None:
                            solutions = obs_trace.count_rows(span, solutions)
                else:
                    for step in plan.steps:
                        if step.operator == MERGE:
                            solutions = self._merge_join(
                                solutions, step.pattern, step.merge_variable
                            )
                        elif step.operator == HASH:
                            solutions = self._hash_join(
                                solutions, step.pattern, step.join_variables
                            )
                        else:  # scan / nested: per-solution index lookups
                            solutions = self._join_pattern(solutions, step.pattern)
                        if trace_steps:
                            span = tracer.stream_span(
                                "step:" + step.operator,
                                pattern=step.describe(),
                            )
                            if span is not None:
                                solutions = obs_trace.count_rows(span, solutions)
            else:
                for pattern in self._order_by_constants(patterns):
                    solutions = self._join_pattern(solutions, pattern)

        for element in others:
            if isinstance(element, FilterNode):
                solutions = self._apply_filter(solutions, element)
            elif isinstance(element, OptionalNode):
                solutions = self._apply_optional(solutions, element)
            elif isinstance(element, UnionNode):
                solutions = self._apply_union(solutions, element)
            elif isinstance(element, GroupGraphPattern):
                solutions = self._apply_subgroup(solutions, element)
            else:  # pragma: no cover - parser prevents this
                raise SparqlError(f"Unsupported group element: {element!r}")
        return iter(solutions)

    def _plan_for(
        self,
        group: GroupGraphPattern,
        patterns: List[TriplePatternNode],
        bound: set,
        single_input: bool,
    ) -> BGPPlan:
        """Plan (or fetch the cached plan for) one group's BGP.

        Planning state is shared per store (:func:`plan_context`), so even
        throwaway evaluators hit warm caches; the context is replaced when
        the store's mutation stamp changes so estimates track the data
        through any sequence of mutations.  The cache key
        includes the bound-variable set because EXISTS and OPTIONAL
        evaluate the same group under different bindings.
        """
        context = plan_context(self.store)
        key = (group, frozenset(bound), single_input)
        plan = context.plans.get(key)
        if plan is None:
            self._metrics.increment("plan.cache_miss")
            if len(context.plans) >= PLAN_CACHE_LIMIT:
                context.plans.clear()
            with self._tracer.span("plan", patterns=len(patterns)):
                plan = plan_bgp(
                    self.store, patterns, bound, single_input, context.estimator
                )
            for step in plan.steps:
                self._metrics.increment("plan.op." + step.operator)
            context.plans[key] = plan
        else:
            self._metrics.increment("plan.cache_hit")
        return plan

    def explain(self, query: Union[Query, str]) -> BGPPlan:
        """The plan for the query's top-level basic graph pattern.

        For tests and diagnostics: the same plan the evaluator would use,
        including the cache.
        """
        if isinstance(query, str):
            query = parse_query(query)
        group = query.where
        values_nodes = [e for e in group.elements if isinstance(e, ValuesNode)]
        patterns = [e for e in group.elements if isinstance(e, TriplePatternNode)]
        bound = self._values_bound(values_nodes)
        return self._plan_for(group, patterns, bound, not values_nodes)

    @staticmethod
    def _values_bound(values_nodes: List[ValuesNode]) -> set:
        """Variables that VALUES binds in *every* row.

        A variable with an UNDEF row is only bound in some solutions, so
        the planner must treat it as unbound: claiming it bound would let a
        hash join use it as a probe key and silently drop the solutions
        where it is missing (per-solution operators handle the mixed case
        correctly once the pattern owns the variable).
        """
        bound: set = set()
        for node in values_nodes:
            for position, variable in enumerate(node.variables):
                if all(row[position] is not None for row in node.rows):
                    bound.add(variable)
        return bound

    @staticmethod
    def _order_by_constants(patterns: List[TriplePatternNode]) -> List[TriplePatternNode]:
        """The pre-planner ordering: most constant positions first."""

        def constants(pattern: TriplePatternNode) -> int:
            return sum(
                0 if isinstance(t, Variable) else 1
                for t in (pattern.subject, pattern.predicate, pattern.object)
            )

        return sorted(patterns, key=constants, reverse=True)

    def _join_pattern(
        self, solutions: Iterable[IdBinding], pattern: TriplePatternNode
    ) -> Iterator[IdBinding]:
        for solution in solutions:
            yield from self._match_pattern(pattern, solution)

    def _match_pattern(
        self, pattern: TriplePatternNode, solution: IdBinding
    ) -> Iterator[IdBinding]:
        def resolve(term):
            if isinstance(term, Variable):
                value = solution.get(term)
                if value is None:
                    return None  # unbound -> wildcard
                if type(value) is int:
                    return value
                return _MISS  # bound to an out-of-dictionary term
            tid = self._dict.id_for(term)
            return tid if tid is not None else _MISS

        subject = resolve(pattern.subject)
        predicate = resolve(pattern.predicate)
        obj = resolve(pattern.object)
        if subject is _MISS or predicate is _MISS or obj is _MISS:
            return

        for sid, pid, oid in self.store.match_ids(subject, predicate, obj):
            extended: Optional[IdBinding] = solution
            for position, value in (
                (pattern.subject, sid),
                (pattern.predicate, pid),
                (pattern.object, oid),
            ):
                if isinstance(position, Variable):
                    extended = extended.extend(position, value)  # type: ignore[union-attr]
                    if extended is None:
                        break
            if extended is not None:
                yield extended

    def _merge_join(
        self,
        solutions: Iterable[IdBinding],
        pattern: TriplePatternNode,
        variable: Variable,
    ) -> Iterator[IdBinding]:
        """Sort-merge semi-join against a two-constant pattern's sorted run.

        Precondition (guaranteed by the planner): the solution stream is
        nondecreasing on ``variable``, and ``pattern`` has exactly two
        constant positions with ``variable`` in the third.  The pattern
        binds no new variables, so matching solutions pass through
        unchanged; both sides are walked once.
        """
        consts = self._resolve_constants(pattern)
        if consts is None:
            return
        run = iter(self.store.sorted_run_ids(*consts))
        current = next(run, None)
        if current is None:
            return
        for solution in solutions:
            value = solution.get(variable)
            if type(value) is not int:
                continue  # out-of-dictionary term can never match
            while current is not None and current < value:
                current = next(run, None)
            if current is None:
                break  # left keys only grow; nothing further can match
            if current == value:
                yield solution

    def _hash_join(
        self,
        solutions: Iterable[IdBinding],
        pattern: TriplePatternNode,
        join_variables: Tuple[Variable, ...],
    ) -> Iterator[IdBinding]:
        """Hash join: build on the pattern side once, probe per solution.

        The build side is the pattern's full match set keyed on the shared
        variables (the planner picks this operator only when that side is
        the smaller one, or when there are no shared variables and
        rescanning per solution would be worse).  Building happens lazily
        on the first streamed solution, so an empty left side costs
        nothing.
        """
        table: Optional[dict] = None
        for solution in solutions:
            if table is None:
                table = self._build_join_table(pattern, join_variables)
                if not table:
                    return
            if join_variables:
                key = []
                valid = True
                for variable in join_variables:
                    value = solution.get(variable)
                    if type(value) is not int:
                        valid = False  # out-of-dictionary term: no match
                        break
                    key.append(value)
                if not valid:
                    continue
                bucket = table.get(tuple(key))
            else:
                bucket = table.get(())
            if not bucket:
                continue
            for assignment in bucket:
                extended: Optional[IdBinding] = solution
                for variable, value in assignment:
                    extended = extended.extend(variable, value)  # type: ignore[union-attr]
                    if extended is None:
                        break
                if extended is not None:
                    yield extended

    def _resolve_constants(
        self, pattern: TriplePatternNode
    ) -> Optional[List[Optional[int]]]:
        """IDs of the pattern's constant positions (``None`` per variable).

        Returns ``None`` when a constant is unknown to the dictionary — the
        pattern provably matches nothing.
        """
        return resolve_pattern_ids(self._dict, pattern)

    def _build_join_table(
        self, pattern: TriplePatternNode, join_variables: Tuple[Variable, ...]
    ) -> dict:
        """Scan ``pattern`` once into ``join-key -> [variable assignments]``."""
        consts = self._resolve_constants(pattern)
        if consts is None:
            return {}
        positions = (pattern.subject, pattern.predicate, pattern.object)
        table: dict = {}
        for ids in self.store.match_ids(*consts):
            assignment: dict = {}
            consistent = True
            for term, value in zip(positions, ids):
                if isinstance(term, Variable):
                    previous = assignment.get(term)
                    if previous is None:
                        assignment[term] = value
                    elif previous != value:
                        consistent = False  # repeated variable, unequal values
                        break
            if not consistent:
                continue
            key = tuple(assignment[v] for v in join_variables)
            bucket = table.get(key)
            if bucket is None:
                bucket = table[key] = []
            bucket.append(tuple(assignment.items()))
        return table

    def _apply_filter(
        self, solutions: Iterable[IdBinding], node: FilterNode
    ) -> Iterator[IdBinding]:
        for solution in solutions:
            if self._expressions.evaluate_boolean(
                node.expression, solution.decode(self._dict)
            ):
                yield solution

    def _apply_optional(
        self, solutions: Iterable[IdBinding], node: OptionalNode
    ) -> Iterator[IdBinding]:
        for solution in solutions:
            matched = False
            for extended in self._evaluate_group(node.group, solution):
                matched = True
                yield extended
            if not matched:
                yield solution

    def _apply_union(
        self, solutions: Iterable[IdBinding], node: UnionNode
    ) -> Iterator[IdBinding]:
        for solution in solutions:
            for branch in node.branches:
                yield from self._evaluate_group(branch, solution)

    def _apply_values(
        self, solutions: Iterable[IdBinding], node: ValuesNode
    ) -> Iterator[IdBinding]:
        id_for = self._dict.id_for
        for solution in solutions:
            for row in node.rows:
                extended: Optional[IdBinding] = solution
                for variable, term in zip(node.variables, row):
                    if term is None:
                        continue
                    tid = id_for(term)
                    extended = extended.extend(  # type: ignore[union-attr]
                        variable, tid if tid is not None else term
                    )
                    if extended is None:
                        break
                if extended is not None:
                    yield extended

    def _apply_subgroup(
        self, solutions: Iterable[IdBinding], group: GroupGraphPattern
    ) -> Iterator[IdBinding]:
        for solution in solutions:
            yield from self._evaluate_group(group, solution)

    def _exists(self, group: object, binding: Binding) -> bool:
        assert isinstance(group, GroupGraphPattern)
        encoded = IdBinding.encode(binding, self._dict)
        for _ in self._evaluate_group(group, encoded):
            return True
        return False


def evaluate_query(store: TripleStore, query: Union[Query, str]) -> Union[ResultSet, AskResult]:
    """Convenience wrapper: evaluate ``query`` against ``store``."""
    return QueryEvaluator(store).evaluate(query)
