"""Query evaluation against a :class:`~repro.store.TripleStore`.

The evaluator walks the AST produced by the parser.  Basic graph patterns
are evaluated **in ID space**: variables bind to dictionary IDs (plain
ints) straight off the store's :meth:`~repro.store.TripleStore.match_ids`
index scans, so join equality checks compare integers rather than hashing
Term objects.  Evaluation is **streaming**: the whole BGP pipeline is a
chain of generators, so ASK stops at the first solution, LIMIT queries
without ORDER BY stop as soon as the page is full, and COUNT-only
aggregates fold solutions into counters without materialising a solution
list.  Terms are only materialised for FILTER expression evaluation and
for the rows actually returned.

Pattern reordering is a simple selectivity heuristic (most-bound patterns
first); this is plenty for the KB sizes the reproduction uses while
remaining easy to reason about.
"""

from __future__ import annotations

from itertools import islice
from typing import Iterable, Iterator, List, Optional, Tuple, Union

from repro.errors import SparqlError
from repro.sparql.ast import (
    AskQuery,
    CountExpression,
    FilterNode,
    GroupGraphPattern,
    OptionalNode,
    Query,
    SelectQuery,
    TriplePatternNode,
    UnionNode,
    ValuesNode,
)
from repro.sparql.bindings import Binding, IdBinding, Variable
from repro.sparql.functions import EvalError, ExpressionEvaluator, value_to_term
from repro.sparql.parser import parse_query
from repro.sparql.results import AskResult, ResultSet
from repro.store.triplestore import TripleStore

#: Sentinel for "constant term unknown to the store's dictionary": the
#: pattern can never match, which is distinct from ``None`` (wildcard).
_MISS = object()


class QueryEvaluator:
    """Evaluates parsed queries against one triple store."""

    def __init__(self, store: TripleStore):
        self.store = store
        self._dict = store.dictionary
        self._expressions = ExpressionEvaluator(exists_callback=self._exists)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def evaluate(self, query: Union[Query, str]) -> Union[ResultSet, AskResult]:
        """Evaluate a query (AST or SPARQL text) and return its result."""
        if isinstance(query, str):
            query = parse_query(query)
        if isinstance(query, SelectQuery):
            return self._evaluate_select(query)
        if isinstance(query, AskQuery):
            return self._evaluate_ask(query)
        raise SparqlError(f"Unsupported query type: {type(query).__name__}")

    # ------------------------------------------------------------------ #
    # SELECT / ASK
    # ------------------------------------------------------------------ #
    def _evaluate_select(self, query: SelectQuery) -> ResultSet:
        if query.is_aggregate:
            fast = self._try_fast_count(query)
            if fast is not None:
                return fast

        solutions = self._evaluate_group(query.where, IdBinding.EMPTY)

        if query.is_aggregate:
            return self._evaluate_aggregate(query, solutions)

        if query.select_all:
            variables = query.where.variables()
        else:
            variables = [item.output_variable for item in query.projection]

        if query.order_by:
            # Ordering needs the full solution sequence; decode eagerly.
            rows = [
                self._project(query, solution, variables).decode(self._dict)
                for solution in solutions
            ]
            rows = self._order_rows(rows, query)
            if query.distinct:
                rows = self._distinct_list(rows)
            rows = self._slice(rows, query.offset, query.limit)
            return ResultSet(variables, rows)

        # Streaming path: project, deduplicate and page in ID space, then
        # decode only the rows that survive OFFSET/LIMIT.
        projected: Iterator[IdBinding] = (
            self._project(query, solution, variables) for solution in solutions
        )
        if query.distinct:
            projected = self._distinct_stream(projected)
        if query.offset or query.limit is not None:
            stop = None if query.limit is None else query.offset + query.limit
            projected = islice(projected, query.offset, stop)
        return ResultSet(variables, [row.decode(self._dict) for row in projected])

    def _evaluate_ask(self, query: AskQuery) -> AskResult:
        for _ in self._evaluate_group(query.where, IdBinding.EMPTY):
            return AskResult(True)
        return AskResult(False)

    def _try_fast_count(self, query: SelectQuery) -> Optional[ResultSet]:
        """Answer a single-pattern, non-grouped COUNT query from index counts.

        The typed client's ``count_facts`` / ``count_subjects`` shapes —
        ``SELECT (COUNT(*) AS ?c) WHERE { ?s <p> ?o }`` and the
        ``COUNT(DISTINCT ?v)`` variant — are issued constantly by the
        aligner.  Plain counts are O(1) index lookups; distinct counts
        never materialise solutions but may union per-key ID runs (see
        :meth:`TripleStore.count_distinct_ids`).  Returns ``None`` when
        the query does not fit the shape.
        """
        if query.group_by:
            return None
        elements = query.where.elements
        if len(elements) != 1 or not isinstance(elements[0], TriplePatternNode):
            return None
        if any(
            not isinstance(item.expression, CountExpression) for item in query.projection
        ):
            return None
        pattern = elements[0]

        position_of = {}
        resolved = []
        missing = False
        for position, term in zip(
            "spo", (pattern.subject, pattern.predicate, pattern.object)
        ):
            if isinstance(term, Variable):
                if term in position_of:
                    return None  # repeated variable joins within the pattern
                position_of[term] = position
                resolved.append(None)
            else:
                tid = self._dict.id_for(term)
                if tid is None:
                    missing = True  # constant absent from the store
                resolved.append(tid)
        s, p, o = resolved

        data = {}
        for item in query.projection:
            expression = item.expression
            if missing:
                count = 0
            elif expression.counts_all or (
                not expression.distinct and expression.variable in position_of
            ):
                count = self.store.count_ids(s, p, o)
            elif expression.distinct and expression.variable in position_of:
                count = self.store.count_distinct_ids(
                    position_of[expression.variable], s, p, o
                )
            else:
                count = 0  # COUNT over a variable the pattern never binds
            data[item.output_variable] = value_to_term(count)

        variables = [item.output_variable for item in query.projection]
        rows = self._slice([Binding(data)], query.offset, query.limit)
        return ResultSet(variables, rows)

    def _evaluate_aggregate(
        self, query: SelectQuery, solutions: Iterable[IdBinding]
    ) -> ResultSet:
        """Fold a COUNT-only aggregate query (optionally GROUP BY) in one pass."""
        non_aggregate = [
            item
            for item in query.projection
            if not isinstance(item.expression, CountExpression)
        ]
        count_items = [
            item
            for item in query.projection
            if isinstance(item.expression, CountExpression)
        ]
        group_by = list(query.group_by)
        if not group_by and non_aggregate:
            group_by = [item.output_variable for item in non_aggregate if item.variable]

        def fresh_accumulators() -> list:
            return [
                set() if item.expression.distinct and not item.expression.counts_all else 0
                for item in count_items
            ]

        def accumulate(accumulators: list, solution: IdBinding) -> None:
            for index, item in enumerate(count_items):
                expression = item.expression
                if expression.counts_all:
                    accumulators[index] += 1
                    continue
                value = solution.get(expression.variable)
                if value is None:
                    continue
                if expression.distinct:
                    accumulators[index].add(value)
                else:
                    accumulators[index] += 1

        groups: dict[Tuple, list] = {}
        if group_by:
            for solution in solutions:
                key = tuple(solution.get(v) for v in group_by)
                accumulators = groups.get(key)
                if accumulators is None:
                    accumulators = groups[key] = fresh_accumulators()
                accumulate(accumulators, solution)
        else:
            # A COUNT without GROUP BY always yields exactly one row, even
            # over an empty solution sequence (count = 0).
            accumulators = groups[()] = fresh_accumulators()
            for solution in solutions:
                accumulate(accumulators, solution)

        variables = [item.output_variable for item in query.projection]
        decode = self._dict.decode
        rows: List[Binding] = []
        for key, accumulators in groups.items():
            data = {}
            for variable, value in zip(group_by, key):
                if value is not None:
                    data[variable] = decode(value) if type(value) is int else value
            counters = iter(accumulators)
            for item in query.projection:
                if isinstance(item.expression, CountExpression):
                    counter = next(counters)
                    count = len(counter) if isinstance(counter, set) else counter
                    data[item.output_variable] = value_to_term(count)
            rows.append(Binding(data))

        rows = self._slice(rows, query.offset, query.limit)
        return ResultSet(variables, rows)

    def _project(
        self, query: SelectQuery, solution: IdBinding, variables: List[Variable]
    ) -> IdBinding:
        """Project a solution onto the output variables, staying in ID space.

        Expression projections are evaluated over a decoded Term binding
        and their results stored as Terms (IdBinding values may be either).
        """
        if query.select_all:
            data = {}
            for variable in variables:
                value = solution.get(variable)
                if value is not None:
                    data[variable] = value
            return IdBinding(data)
        data = {}
        decoded: Optional[Binding] = None
        for item in query.projection:
            if item.expression is not None and not isinstance(item.expression, CountExpression):
                if decoded is None:
                    decoded = solution.decode(self._dict)
                try:
                    value = self._expressions.evaluate(item.expression, decoded)
                except EvalError:
                    continue
                data[item.output_variable] = value_to_term(value)
            elif item.variable is not None:
                value = solution.get(item.variable)
                if value is not None:
                    data[item.output_variable] = value
        return IdBinding(data)

    def _order_rows(self, rows: List[Binding], query: SelectQuery) -> List[Binding]:
        def key_for(row: Binding) -> Tuple:
            keys: List = []
            for condition in query.order_by:
                try:
                    value = self._expressions.evaluate(condition.expression, row)
                except EvalError:
                    keys.append((0, ""))
                    continue
                from repro.rdf.terms import IRI, Literal

                if isinstance(value, Literal):
                    keys.append((1,) + value.sort_key())
                elif isinstance(value, IRI):
                    keys.append((2, 0.0, value.value))
                elif isinstance(value, bool):
                    keys.append((1, float(value), ""))
                elif isinstance(value, (int, float)):
                    keys.append((1, 0, float(value)))
                else:
                    keys.append((1, 0.0, str(value)))
            return tuple(keys)

        ordered = rows
        # Apply conditions right-to-left so earlier conditions dominate
        # (stable sort); descending handled per condition.
        for index in range(len(query.order_by) - 1, -1, -1):
            condition = query.order_by[index]

            def single_key(row: Binding, idx: int = index) -> Tuple:
                return key_for(row)[idx]

            ordered = sorted(ordered, key=single_key, reverse=condition.descending)
        return ordered

    @staticmethod
    def _distinct_list(rows: List[Binding]) -> List[Binding]:
        seen = set()
        unique: List[Binding] = []
        for row in rows:
            if row not in seen:
                seen.add(row)
                unique.append(row)
        return unique

    @staticmethod
    def _distinct_stream(rows: Iterable[IdBinding]) -> Iterator[IdBinding]:
        seen = set()
        for row in rows:
            if row not in seen:
                seen.add(row)
                yield row

    @staticmethod
    def _slice(rows: List[Binding], offset: int, limit: Optional[int]) -> List[Binding]:
        if offset:
            rows = rows[offset:]
        if limit is not None:
            rows = rows[:limit]
        return rows

    # ------------------------------------------------------------------ #
    # Graph pattern evaluation (streaming, ID space)
    # ------------------------------------------------------------------ #
    def _evaluate_group(
        self, group: GroupGraphPattern, initial: IdBinding
    ) -> Iterator[IdBinding]:
        solutions: Iterable[IdBinding] = (initial,)
        for element in self._reorder_elements(group):
            if isinstance(element, TriplePatternNode):
                solutions = self._join_pattern(solutions, element)
            elif isinstance(element, FilterNode):
                solutions = self._apply_filter(solutions, element)
            elif isinstance(element, OptionalNode):
                solutions = self._apply_optional(solutions, element)
            elif isinstance(element, UnionNode):
                solutions = self._apply_union(solutions, element)
            elif isinstance(element, ValuesNode):
                solutions = self._apply_values(solutions, element)
            elif isinstance(element, GroupGraphPattern):
                solutions = self._apply_subgroup(solutions, element)
            else:  # pragma: no cover - parser prevents this
                raise SparqlError(f"Unsupported group element: {element!r}")
        return iter(solutions)

    @staticmethod
    def _reorder_elements(group: GroupGraphPattern) -> List:
        """Order triple patterns before filters applied late, keep others in place.

        Triple patterns are sorted so that patterns with more constant terms
        run first (cheap selectivity heuristic), while FILTER / OPTIONAL /
        UNION keep their relative position *after* all triple patterns of
        the group, matching SPARQL's bottom-up semantics for the subset we
        support.
        """
        triple_patterns = [e for e in group.elements if isinstance(e, TriplePatternNode)]
        values_nodes = [e for e in group.elements if isinstance(e, ValuesNode)]
        others = [
            e
            for e in group.elements
            if not isinstance(e, (TriplePatternNode, ValuesNode))
        ]

        def constants(pattern: TriplePatternNode) -> int:
            return sum(
                0 if isinstance(t, Variable) else 1
                for t in (pattern.subject, pattern.predicate, pattern.object)
            )

        ordered_patterns = sorted(triple_patterns, key=constants, reverse=True)
        return values_nodes + ordered_patterns + others

    def _join_pattern(
        self, solutions: Iterable[IdBinding], pattern: TriplePatternNode
    ) -> Iterator[IdBinding]:
        for solution in solutions:
            yield from self._match_pattern(pattern, solution)

    def _match_pattern(
        self, pattern: TriplePatternNode, solution: IdBinding
    ) -> Iterator[IdBinding]:
        def resolve(term):
            if isinstance(term, Variable):
                value = solution.get(term)
                if value is None:
                    return None  # unbound -> wildcard
                if type(value) is int:
                    return value
                return _MISS  # bound to an out-of-dictionary term
            tid = self._dict.id_for(term)
            return tid if tid is not None else _MISS

        subject = resolve(pattern.subject)
        predicate = resolve(pattern.predicate)
        obj = resolve(pattern.object)
        if subject is _MISS or predicate is _MISS or obj is _MISS:
            return

        for sid, pid, oid in self.store.match_ids(subject, predicate, obj):
            extended: Optional[IdBinding] = solution
            for position, value in (
                (pattern.subject, sid),
                (pattern.predicate, pid),
                (pattern.object, oid),
            ):
                if isinstance(position, Variable):
                    extended = extended.extend(position, value)  # type: ignore[union-attr]
                    if extended is None:
                        break
            if extended is not None:
                yield extended

    def _apply_filter(
        self, solutions: Iterable[IdBinding], node: FilterNode
    ) -> Iterator[IdBinding]:
        for solution in solutions:
            if self._expressions.evaluate_boolean(
                node.expression, solution.decode(self._dict)
            ):
                yield solution

    def _apply_optional(
        self, solutions: Iterable[IdBinding], node: OptionalNode
    ) -> Iterator[IdBinding]:
        for solution in solutions:
            matched = False
            for extended in self._evaluate_group(node.group, solution):
                matched = True
                yield extended
            if not matched:
                yield solution

    def _apply_union(
        self, solutions: Iterable[IdBinding], node: UnionNode
    ) -> Iterator[IdBinding]:
        for solution in solutions:
            for branch in node.branches:
                yield from self._evaluate_group(branch, solution)

    def _apply_values(
        self, solutions: Iterable[IdBinding], node: ValuesNode
    ) -> Iterator[IdBinding]:
        id_for = self._dict.id_for
        for solution in solutions:
            for row in node.rows:
                extended: Optional[IdBinding] = solution
                for variable, term in zip(node.variables, row):
                    if term is None:
                        continue
                    tid = id_for(term)
                    extended = extended.extend(  # type: ignore[union-attr]
                        variable, tid if tid is not None else term
                    )
                    if extended is None:
                        break
                if extended is not None:
                    yield extended

    def _apply_subgroup(
        self, solutions: Iterable[IdBinding], group: GroupGraphPattern
    ) -> Iterator[IdBinding]:
        for solution in solutions:
            yield from self._evaluate_group(group, solution)

    def _exists(self, group: object, binding: Binding) -> bool:
        assert isinstance(group, GroupGraphPattern)
        encoded = IdBinding.encode(binding, self._dict)
        for _ in self._evaluate_group(group, encoded):
            return True
        return False


def evaluate_query(store: TripleStore, query: Union[Query, str]) -> Union[ResultSet, AskResult]:
    """Convenience wrapper: evaluate ``query`` against ``store``."""
    return QueryEvaluator(store).evaluate(query)
