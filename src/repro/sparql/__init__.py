"""SPARQL subset engine.

SOFYA's on-the-fly alignment only ever talks to remote datasets through
SPARQL endpoints, so this package implements the query subset those
interactions need:

* ``SELECT`` (with ``DISTINCT``, projection, ``*``), ``ASK``,
* aggregate ``COUNT`` (``SELECT (COUNT(*) AS ?c)`` / ``COUNT(DISTINCT ?x)``),
* basic graph patterns with joins on shared variables,
* ``OPTIONAL``, ``UNION``, ``FILTER`` with the common builtins,
* ``VALUES`` inline data,
* ``ORDER BY``, ``LIMIT``, ``OFFSET``.

The engine has four stages: the :mod:`lexer <repro.sparql.lexer>` produces
tokens, the :mod:`parser <repro.sparql.parser>` builds an AST
(:mod:`repro.sparql.ast`), the :mod:`planner <repro.sparql.plan>` orders
each basic graph pattern by estimated cardinality and assigns physical
join operators (index scan, sort-merge join, hash join, nested lookup),
and the :mod:`evaluator <repro.sparql.evaluate>` streams the planned
operator pipeline against a :class:`~repro.store.TripleStore`, producing
a :class:`~repro.sparql.results.ResultSet`.
"""

from repro.sparql.ast import (
    AskQuery,
    CountExpression,
    GroupGraphPattern,
    SelectQuery,
    TriplePatternNode,
)
from repro.sparql.bindings import Binding, Variable
from repro.sparql.evaluate import QueryEvaluator, evaluate_query
from repro.sparql.parser import parse_query
from repro.sparql.plan import BGPPlan, CardinalityEstimator, PlanStep, plan_bgp
from repro.sparql.results import AskResult, ResultSet
from repro.sparql.scatter import (
    ShardedBGPPlan,
    ShardedQueryEvaluator,
    evaluate_sharded,
)

__all__ = [
    "Variable",
    "Binding",
    "parse_query",
    "evaluate_query",
    "QueryEvaluator",
    "BGPPlan",
    "PlanStep",
    "plan_bgp",
    "CardinalityEstimator",
    "ResultSet",
    "AskResult",
    "SelectQuery",
    "AskQuery",
    "GroupGraphPattern",
    "TriplePatternNode",
    "CountExpression",
]
