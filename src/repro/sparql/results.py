"""Query result containers."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.rdf.terms import Literal, Term
from repro.sparql.bindings import Binding, Variable


class ResultSet:
    """The result of a ``SELECT`` query.

    A result set is a sequence of rows; each row maps output variable names
    to RDF terms (or ``None`` for unbound OPTIONAL variables).

    Attributes
    ----------
    variables:
        The projected variables in SELECT-clause order.
    rows:
        The solution rows as :class:`~repro.sparql.bindings.Binding`.
    truncated:
        Set by the endpoint layer when the row count was capped by policy.
    """

    def __init__(self, variables: Sequence[Variable], rows: Sequence[Binding]):
        self.variables: List[Variable] = list(variables)
        self.rows: List[Binding] = list(rows)
        self.truncated: bool = False

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Binding]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __repr__(self) -> str:
        names = ", ".join(f"?{v.name}" for v in self.variables)
        return f"ResultSet(vars=[{names}], rows={len(self.rows)})"

    # ------------------------------------------------------------------ #
    def column(self, variable: Variable | str) -> List[Optional[Term]]:
        """All values of one variable, in row order (``None`` when unbound)."""
        if isinstance(variable, str):
            variable = Variable(variable)
        return [row.get_term(variable) for row in self.rows]

    def distinct_column(self, variable: Variable | str) -> List[Term]:
        """Distinct non-null values of one variable, preserving first-seen order."""
        seen: Dict[Term, None] = {}
        for value in self.column(variable):
            if value is not None and value not in seen:
                seen[value] = None
        return list(seen)

    def to_dicts(self) -> List[Dict[str, Optional[Term]]]:
        """Rows as plain dictionaries keyed by variable name."""
        result = []
        for row in self.rows:
            result.append({v.name: row.get_term(v) for v in self.variables})
        return result

    def scalar(self) -> Optional[Term]:
        """The single value of a one-row, one-variable result (else ``None``)."""
        if len(self.rows) != 1 or len(self.variables) != 1:
            return None
        return self.rows[0].get_term(self.variables[0])

    def scalar_int(self, default: int = 0) -> int:
        """The scalar as an integer — convenient for ``COUNT`` queries."""
        term = self.scalar()
        if isinstance(term, Literal):
            lexical = term.lexical
            # Integer lexicals parse exactly: routing them through float()
            # would lose precision for counts >= 2**53.
            try:
                return int(lexical)
            except ValueError:
                pass
            try:
                return int(float(lexical))
            except (ValueError, OverflowError):
                # "INF" raises OverflowError on int(), "NaN" ValueError.
                return default
        return default

    def to_text(self, max_rows: int = 20) -> str:
        """A small fixed-width text rendering for logs and examples."""
        header = [f"?{v.name}" for v in self.variables]
        body: List[List[str]] = []
        for row in self.rows[:max_rows]:
            body.append(
                [
                    str(row.get_term(v)) if row.get_term(v) is not None else ""
                    for v in self.variables
                ]
            )
        widths = [len(h) for h in header]
        for line in body:
            for i, cell in enumerate(line):
                widths[i] = max(widths[i], len(cell))
        lines = [
            " | ".join(h.ljust(widths[i]) for i, h in enumerate(header)),
            "-+-".join("-" * w for w in widths),
        ]
        for line in body:
            lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
        if len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)


class AskResult:
    """The boolean result of an ``ASK`` query."""

    def __init__(self, value: bool):
        self.value = bool(value)

    def __bool__(self) -> bool:
        return self.value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, AskResult):
            return self.value == other.value
        if isinstance(other, bool):
            return self.value == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("AskResult", self.value))

    def __repr__(self) -> str:
        return f"AskResult({self.value})"
