"""Recursive-descent parser for the supported SPARQL subset.

The parser produces the AST defined in :mod:`repro.sparql.ast`.  It is
deliberately strict: queries that use features outside the supported subset
raise :class:`~repro.errors.SparqlError` rather than being silently
mis-interpreted.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ParseError, SparqlError
from repro.rdf.namespace import RDF, NamespaceManager
from repro.rdf.terms import (
    IRI,
    Literal,
    Term,
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_INTEGER,
)
from repro.sparql.ast import (
    AskQuery,
    BinaryExpression,
    CountExpression,
    ExistsExpression,
    Expression,
    FilterNode,
    FunctionCall,
    GroupGraphPattern,
    InExpression,
    OptionalNode,
    OrderCondition,
    ProjectionItem,
    Query,
    SelectQuery,
    TermExpression,
    TriplePatternNode,
    UnaryExpression,
    UnionNode,
    ValuesNode,
    VariableExpression,
)
from repro.sparql.bindings import PatternTerm, Variable
from repro.sparql.lexer import Token, tokenize


class _Parser:
    """Stateful cursor over the token list."""

    def __init__(self, tokens: List[Token], namespaces: Optional[NamespaceManager] = None):
        self.tokens = tokens
        self.pos = 0
        self.namespaces = namespaces or NamespaceManager.with_defaults()

    # ----------------------------------------------------------------- #
    # Cursor helpers
    # ----------------------------------------------------------------- #
    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.peek()
        if token.kind != "EOF":
            self.pos += 1
        return token

    def error(self, message: str, token: Optional[Token] = None) -> ParseError:
        token = token or self.peek()
        return ParseError(message, line=token.line, column=token.column)

    def expect_punct(self, symbol: str) -> Token:
        token = self.advance()
        if not token.is_punct(symbol):
            raise self.error(f"Expected {symbol!r}, found {token.value!r}", token)
        return token

    def expect_keyword(self, *names: str) -> Token:
        token = self.advance()
        if not token.is_keyword(*names):
            raise self.error(f"Expected {' or '.join(names)}, found {token.value!r}", token)
        return token

    # ----------------------------------------------------------------- #
    # Entry point
    # ----------------------------------------------------------------- #
    def parse_query(self) -> Query:
        self._parse_prologue()
        token = self.peek()
        if token.is_keyword("SELECT"):
            query = self._parse_select()
        elif token.is_keyword("ASK"):
            query = self._parse_ask()
        else:
            raise self.error(f"Expected SELECT or ASK, found {token.value!r}")
        if not self.peek().kind == "EOF":
            raise self.error(f"Unexpected trailing content: {self.peek().value!r}")
        return query

    def _parse_prologue(self) -> None:
        while True:
            token = self.peek()
            if token.is_keyword("PREFIX"):
                self.advance()
                pname = self.advance()
                if pname.kind != "PNAME" or not pname.value.endswith(":"):
                    raise self.error("Expected prefix name ending in ':'", pname)
                iri = self.advance()
                if iri.kind != "IRI":
                    raise self.error("Expected IRI after prefix name", iri)
                self.namespaces.bind(pname.value[:-1], iri.value)
            elif token.is_keyword("BASE"):
                self.advance()
                iri = self.advance()
                if iri.kind != "IRI":
                    raise self.error("Expected IRI after BASE", iri)
                # BASE is accepted but unused: all our IRIs are absolute.
            else:
                return

    # ----------------------------------------------------------------- #
    # SELECT / ASK
    # ----------------------------------------------------------------- #
    def _parse_select(self) -> SelectQuery:
        self.expect_keyword("SELECT")
        distinct = False
        if self.peek().is_keyword("DISTINCT", "REDUCED"):
            distinct = self.advance().value.upper() == "DISTINCT"

        select_all = False
        projection: List[ProjectionItem] = []
        if self.peek().is_punct("*"):
            self.advance()
            select_all = True
        else:
            while True:
                token = self.peek()
                if token.kind == "VAR":
                    self.advance()
                    projection.append(ProjectionItem(variable=Variable(token.value)))
                elif token.is_punct("("):
                    projection.append(self._parse_aliased_projection())
                else:
                    break
            if not projection:
                raise self.error("SELECT clause requires '*' or at least one variable")

        if self.peek().is_keyword("WHERE"):
            self.advance()
        where = self._parse_group_graph_pattern()

        group_by: Tuple[Variable, ...] = ()
        order_by: Tuple[OrderCondition, ...] = ()
        limit: Optional[int] = None
        offset = 0

        while True:
            token = self.peek()
            if token.is_keyword("GROUP"):
                self.advance()
                self.expect_keyword("BY")
                group_vars: List[Variable] = []
                while self.peek().kind == "VAR":
                    group_vars.append(Variable(self.advance().value))
                if not group_vars:
                    raise self.error("GROUP BY requires at least one variable")
                group_by = tuple(group_vars)
            elif token.is_keyword("ORDER"):
                self.advance()
                self.expect_keyword("BY")
                order_by = tuple(self._parse_order_conditions())
            elif token.is_keyword("LIMIT"):
                self.advance()
                limit = self._parse_integer("LIMIT")
            elif token.is_keyword("OFFSET"):
                self.advance()
                offset = self._parse_integer("OFFSET")
            else:
                break

        return SelectQuery(
            projection=tuple(projection),
            where=where,
            distinct=distinct,
            select_all=select_all,
            order_by=order_by,
            group_by=group_by,
            limit=limit,
            offset=offset,
        )

    def _parse_integer(self, clause: str) -> int:
        token = self.advance()
        if token.kind != "NUMBER" or not token.value.lstrip("+-").isdigit():
            raise self.error(f"{clause} requires a non-negative integer", token)
        value = int(token.value)
        if value < 0:
            raise self.error(f"{clause} requires a non-negative integer", token)
        return value

    def _parse_aliased_projection(self) -> ProjectionItem:
        self.expect_punct("(")
        expression = self._parse_expression()
        self.expect_keyword("AS")
        var_token = self.advance()
        if var_token.kind != "VAR":
            raise self.error("Expected variable after AS", var_token)
        self.expect_punct(")")
        return ProjectionItem(expression=expression, alias=Variable(var_token.value))

    def _parse_order_conditions(self) -> List[OrderCondition]:
        conditions: List[OrderCondition] = []
        while True:
            token = self.peek()
            if token.is_keyword("ASC", "DESC"):
                descending = token.value.upper() == "DESC"
                self.advance()
                self.expect_punct("(")
                expression = self._parse_expression()
                self.expect_punct(")")
                conditions.append(OrderCondition(expression, descending))
            elif token.kind == "VAR":
                self.advance()
                conditions.append(OrderCondition(VariableExpression(Variable(token.value))))
            else:
                break
        if not conditions:
            raise self.error("ORDER BY requires at least one condition")
        return conditions

    def _parse_ask(self) -> AskQuery:
        self.expect_keyword("ASK")
        if self.peek().is_keyword("WHERE"):
            self.advance()
        return AskQuery(where=self._parse_group_graph_pattern())

    # ----------------------------------------------------------------- #
    # Group graph patterns
    # ----------------------------------------------------------------- #
    def _parse_group_graph_pattern(self) -> GroupGraphPattern:
        self.expect_punct("{")
        elements: List = []
        while True:
            token = self.peek()
            if token.is_punct("}"):
                self.advance()
                break
            if token.kind == "EOF":
                raise self.error("Unterminated group graph pattern")
            if token.is_keyword("OPTIONAL"):
                self.advance()
                elements.append(OptionalNode(self._parse_group_graph_pattern()))
            elif token.is_keyword("FILTER"):
                self.advance()
                elements.append(FilterNode(self._parse_filter_constraint()))
            elif token.is_keyword("VALUES"):
                self.advance()
                elements.append(self._parse_values())
            elif token.is_punct("{"):
                group = self._parse_group_graph_pattern()
                if self.peek().is_keyword("UNION"):
                    branches = [group]
                    while self.peek().is_keyword("UNION"):
                        self.advance()
                        branches.append(self._parse_group_graph_pattern())
                    elements.append(UnionNode(tuple(branches)))
                else:
                    elements.append(group)
            else:
                elements.extend(self._parse_triples_block())
            # Optional '.' separators between elements.
            while self.peek().is_punct("."):
                self.advance()
        return GroupGraphPattern(tuple(elements))

    def _parse_triples_block(self) -> List[TriplePatternNode]:
        patterns: List[TriplePatternNode] = []
        subject = self._parse_pattern_term(position="subject")
        while True:
            predicate = self._parse_pattern_term(position="predicate")
            while True:
                obj = self._parse_pattern_term(position="object")
                patterns.append(TriplePatternNode(subject, predicate, obj))
                if self.peek().is_punct(","):
                    self.advance()
                    continue
                break
            if self.peek().is_punct(";"):
                self.advance()
                # A dangling ';' before '.' or '}' is allowed.
                if self.peek().is_punct(".", "}"):
                    break
                continue
            break
        return patterns

    def _parse_values(self) -> ValuesNode:
        variables: List[Variable] = []
        token = self.peek()
        single_var = False
        if token.kind == "VAR":
            self.advance()
            variables.append(Variable(token.value))
            single_var = True
        else:
            self.expect_punct("(")
            while self.peek().kind == "VAR":
                variables.append(Variable(self.advance().value))
            self.expect_punct(")")
        if not variables:
            raise self.error("VALUES requires at least one variable")

        self.expect_punct("{")
        rows: List[Tuple[Optional[Term], ...]] = []
        while not self.peek().is_punct("}"):
            if single_var:
                rows.append((self._parse_values_term(),))
            else:
                self.expect_punct("(")
                row: List[Optional[Term]] = []
                while not self.peek().is_punct(")"):
                    row.append(self._parse_values_term())
                self.expect_punct(")")
                if len(row) != len(variables):
                    raise self.error(
                        f"VALUES row has {len(row)} terms but {len(variables)} variables"
                    )
                rows.append(tuple(row))
        self.expect_punct("}")
        return ValuesNode(tuple(variables), tuple(rows))

    def _parse_values_term(self) -> Optional[Term]:
        if self.peek().is_keyword("UNDEF"):
            self.advance()
            return None
        term = self._parse_pattern_term(position="object", allow_variable=False)
        assert not isinstance(term, Variable)
        return term

    # ----------------------------------------------------------------- #
    # Terms
    # ----------------------------------------------------------------- #
    def _parse_pattern_term(
        self, position: str, allow_variable: bool = True
    ) -> PatternTerm:
        token = self.advance()
        if token.kind == "VAR":
            if not allow_variable:
                raise self.error("Variable not allowed here", token)
            return Variable(token.value)
        if token.kind == "IRI":
            return IRI(token.value)
        if token.kind == "PNAME":
            return self._expand_pname(token)
        if token.is_keyword("A"):
            if position != "predicate":
                # 'a' is only rdf:type in predicate position; elsewhere it
                # would have been lexed as a NAME anyway.
                raise self.error("'a' is only valid as a predicate", token)
            return RDF.type
        if token.is_keyword("TRUE", "FALSE"):
            return Literal(token.value.lower(), datatype=XSD_BOOLEAN)
        if token.kind == "NUMBER":
            return self._number_literal(token.value)
        if token.kind == "STRING":
            if position in ("subject", "predicate"):
                raise self.error("Literal not allowed in subject/predicate position", token)
            return self._finish_literal(token.value)
        raise self.error(f"Unexpected token {token.value!r} in {position} position", token)

    def _expand_pname(self, token: Token) -> IRI:
        try:
            return self.namespaces.expand(token.value)
        except Exception as exc:
            raise self.error(str(exc), token) from None

    def _number_literal(self, text: str) -> Literal:
        if any(ch in text for ch in ".eE"):
            datatype = XSD_DOUBLE if ("e" in text or "E" in text) else XSD_DECIMAL
        else:
            datatype = XSD_INTEGER
        return Literal(text, datatype=datatype)

    def _finish_literal(self, lexical: str) -> Literal:
        token = self.peek()
        if token.kind == "LANGTAG":
            self.advance()
            return Literal(lexical, language=token.value)
        if token.is_punct("^^"):
            self.advance()
            dt_token = self.advance()
            if dt_token.kind == "IRI":
                return Literal(lexical, datatype=dt_token.value)
            if dt_token.kind == "PNAME":
                return Literal(lexical, datatype=self._expand_pname(dt_token))
            raise self.error("Expected datatype IRI after '^^'", dt_token)
        return Literal(lexical)

    # ----------------------------------------------------------------- #
    # Expressions (precedence climbing)
    # ----------------------------------------------------------------- #
    def _parse_filter_constraint(self) -> Expression:
        token = self.peek()
        if token.is_punct("("):
            self.advance()
            expression = self._parse_expression()
            self.expect_punct(")")
            return expression
        if token.kind == "BUILTIN" or token.is_keyword("NOT", "EXISTS"):
            return self._parse_expression()
        raise self.error("FILTER requires a parenthesised expression or builtin call")

    def _parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self.peek().is_punct("||"):
            self.advance()
            left = BinaryExpression("||", left, self._parse_and())
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_relational()
        while self.peek().is_punct("&&"):
            self.advance()
            left = BinaryExpression("&&", left, self._parse_relational())
        return left

    def _parse_relational(self) -> Expression:
        left = self._parse_additive()
        token = self.peek()
        if token.is_punct("=", "!=", "<", ">", "<=", ">="):
            operator = self.advance().value
            return BinaryExpression(operator, left, self._parse_additive())
        if token.is_keyword("IN"):
            self.advance()
            return InExpression(left, tuple(self._parse_expression_list()))
        if token.is_keyword("NOT") and self.peek(1).is_keyword("IN"):
            self.advance()
            self.advance()
            return InExpression(left, tuple(self._parse_expression_list()), negated=True)
        return left

    def _parse_expression_list(self) -> List[Expression]:
        self.expect_punct("(")
        items: List[Expression] = []
        if not self.peek().is_punct(")"):
            items.append(self._parse_expression())
            while self.peek().is_punct(","):
                self.advance()
                items.append(self._parse_expression())
        self.expect_punct(")")
        return items

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while self.peek().is_punct("+", "-"):
            operator = self.advance().value
            left = BinaryExpression(operator, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while self.peek().is_punct("*", "/"):
            operator = self.advance().value
            left = BinaryExpression(operator, left, self._parse_unary())
        return left

    def _parse_unary(self) -> Expression:
        token = self.peek()
        if token.is_punct("!"):
            self.advance()
            return UnaryExpression("!", self._parse_unary())
        if token.is_punct("-"):
            self.advance()
            return UnaryExpression("-", self._parse_unary())
        if token.is_punct("+"):
            self.advance()
            return UnaryExpression("+", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self.peek()
        if token.is_punct("("):
            self.advance()
            expression = self._parse_expression()
            self.expect_punct(")")
            return expression
        if token.kind == "VAR":
            self.advance()
            return VariableExpression(Variable(token.value))
        if token.kind == "BUILTIN":
            return self._parse_function_call()
        if token.is_keyword("COUNT"):
            return self._parse_count()
        if token.is_keyword("NOT") and self.peek(1).is_keyword("EXISTS"):
            self.advance()
            self.advance()
            return ExistsExpression(self._parse_group_graph_pattern(), negated=True)
        if token.is_keyword("EXISTS"):
            self.advance()
            return ExistsExpression(self._parse_group_graph_pattern())
        if token.kind in ("IRI", "PNAME", "STRING", "NUMBER") or token.is_keyword(
            "TRUE", "FALSE"
        ):
            term = self._parse_pattern_term(position="object")
            assert not isinstance(term, Variable)
            return TermExpression(term)
        raise self.error(f"Unexpected token {token.value!r} in expression")

    def _parse_function_call(self) -> Expression:
        name_token = self.advance()
        name = name_token.value.upper()
        self.expect_punct("(")
        arguments: List[Expression] = []
        if not self.peek().is_punct(")"):
            arguments.append(self._parse_expression())
            while self.peek().is_punct(","):
                self.advance()
                arguments.append(self._parse_expression())
        self.expect_punct(")")
        return FunctionCall(name, tuple(arguments))

    def _parse_count(self) -> CountExpression:
        self.expect_keyword("COUNT")
        self.expect_punct("(")
        distinct = False
        if self.peek().is_keyword("DISTINCT"):
            self.advance()
            distinct = True
        token = self.peek()
        if token.is_punct("*"):
            self.advance()
            result = CountExpression(variable=None, distinct=distinct)
        elif token.kind == "VAR":
            self.advance()
            result = CountExpression(variable=Variable(token.value), distinct=distinct)
        else:
            raise self.error("COUNT requires '*' or a variable", token)
        self.expect_punct(")")
        return result


def parse_query(query: str, namespaces: Optional[NamespaceManager] = None) -> Query:
    """Parse a SPARQL query string into an AST.

    Parameters
    ----------
    query:
        The SPARQL text.
    namespaces:
        Optional pre-bound prefixes available in addition to any ``PREFIX``
        declarations in the query itself.  Defaults to the library's
        standard bindings (``rdf``, ``rdfs``, ``owl``, ``xsd``, ``yago``,
        ``dbo``, ...).

    Raises
    ------
    ParseError
        If the query text is malformed.
    SparqlError
        If the query uses an unsupported feature.
    """
    if not isinstance(query, str) or not query.strip():
        raise SparqlError("Query must be a non-empty string")
    tokens = tokenize(query)
    parser = _Parser(tokens, namespaces)
    return parser.parse_query()
