"""Scatter/gather query evaluation over a sharded triple store.

:class:`ShardedQueryEvaluator` extends :class:`QueryEvaluator` with two
execution strategies and picks per group, by *structure alone* (so the
choice can cost time, never answers):

**Scatter** — for *co-partitioned* groups: every triple pattern,
recursively through OPTIONAL / UNION / nested groups / FILTER EXISTS,
has the same variable in subject position (the star shape of the
aligner's batched ``VALUES ?s {...} ?s ?p ?o`` probes).  Any solution
then binds that variable to one subject ID, and subject-range
partitioning puts *all* triples of that subject in one shard — so the
whole planned merge/hash/nested pipeline runs per shard against that
shard's local evaluator and the per-shard streams are chained lazily.
ASK and LIMIT short-circuit across shards: trailing shards are never
evaluated once the consumer stops.  The :class:`ShardRouter` prunes
shards first — by the owning shard when the subject is bound (initial
binding or all-constant VALUES rows) and by per-shard pattern counts
(a shard where any required pattern matches zero triples contributes
nothing).

**Join shipping** — a pure-BGP group that is *not* co-partitioned (the
classic s–o chain) can still run sharded when some subject-position
variable anchors part of it: the anchored patterns scatter as usual and
the remaining patterns' full match sets are broadcast to every routed
shard as columnar ID tables, probed there with a hash join (see
:mod:`repro.sparql.distjoin`).  Shipping engages only when the broadcast
side stays under ``REPRO_RESULT_WINDOW``'s sibling knob
``REPRO_BROADCAST_LIMIT``; otherwise the group falls back.

**Global gather** — everything else runs the inherited evaluator against
the :class:`ShardedTripleStore` itself, whose ID-level API merges the
shards: subject-bound lookups route, counts sum, and two-constant
sorted runs concatenate into globally sorted runs the existing
merge-join operators stream directly.  This path is correct for
arbitrary queries (cross-subject chains, FILTER NOT EXISTS, ...).

On top of the per-group strategy, COUNT-only aggregate queries over a
scattered or shipped group push the *fold* down to the shards: each
shard reduces its stream to a small partial (see
:mod:`repro.sparql.fold`) and the parent merges O(shards) partials
instead of streaming O(solutions) rows.  Non-aggregate projections over
process-backed scatters push the projection down instead, so workers
ship only the projected columns (deduplicated shard-locally under
DISTINCT).

:meth:`ShardedQueryEvaluator.explain` returns a :class:`ShardedBGPPlan`
wrapping the ordinary :class:`BGPPlan` with the chosen mode, per planned
pattern the shards probed vs pruned (or its broadcast marker), and — when
a group degrades to the global path or an aggregate cannot fold — the
human-readable ``fallback_reason``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.errors import StoreError
from repro.obs import trace as obs_trace
from repro.shard.router import PatternRoute, ShardRouter
from repro.shard.sharded_store import ShardedTripleStore
from repro.sparql.ast import (
    BinaryExpression,
    ExistsExpression,
    Expression,
    FilterNode,
    FunctionCall,
    GroupGraphPattern,
    InExpression,
    OptionalNode,
    Query,
    SelectQuery,
    TriplePatternNode,
    UnaryExpression,
    UnionNode,
    ValuesNode,
)
from repro.sparql.bindings import IdBinding, Variable
from repro.sparql.distjoin import ShipPlan, build_ship_plan, execute_ship_plan
from repro.sparql.evaluate import QueryEvaluator
from repro.sparql.fold import FoldSpec, build_fold_spec, finalize, fold_local, merge_partial
from repro.sparql.parser import parse_query
from repro.sparql.plan import BGPPlan, PLAN_CACHE_LIMIT
from repro.sparql.results import ResultSet

#: Cache sentinel: the group was analysed and is not co-partitioned.
_NOT_CO_PARTITIONED = object()


def co_partition_subject(group: GroupGraphPattern) -> Optional[Variable]:
    """The single subject variable shared by every pattern of ``group``.

    Returns ``None`` unless the group can be scattered: it must contain
    at least one top-level triple pattern (so every emitted solution is
    pinned to a shard) and every pattern — recursively through OPTIONAL,
    UNION, nested groups and EXISTS filters — must have the same
    :class:`Variable` in subject position.
    """
    if not any(isinstance(e, TriplePatternNode) for e in group.elements):
        return None
    subject, ok = _group_subject(group, None)
    return subject if ok else None


def _group_subject(
    group: GroupGraphPattern, subject: Optional[Variable]
) -> Tuple[Optional[Variable], bool]:
    for element in group.elements:
        if isinstance(element, TriplePatternNode):
            s = element.subject
            if not isinstance(s, Variable):
                return None, False
            if subject is None:
                subject = s
            elif s != subject:
                return None, False
        elif isinstance(element, ValuesNode):
            continue
        elif isinstance(element, FilterNode):
            subject, ok = _expression_subject(element.expression, subject)
            if not ok:
                return None, False
        elif isinstance(element, OptionalNode):
            subject, ok = _group_subject(element.group, subject)
            if not ok:
                return None, False
        elif isinstance(element, UnionNode):
            for branch in element.branches:
                subject, ok = _group_subject(branch, subject)
                if not ok:
                    return None, False
        elif isinstance(element, GroupGraphPattern):
            subject, ok = _group_subject(element, subject)
            if not ok:
                return None, False
        else:  # pragma: no cover - parser prevents this
            return None, False
    return subject, True


def _expression_subject(
    expression: Expression, subject: Optional[Variable]
) -> Tuple[Optional[Variable], bool]:
    """Check EXISTS groups nested inside a filter expression."""
    if isinstance(expression, ExistsExpression):
        return _group_subject(expression.group, subject)
    if isinstance(expression, UnaryExpression):
        return _expression_subject(expression.operand, subject)
    if isinstance(expression, BinaryExpression):
        subject, ok = _expression_subject(expression.left, subject)
        if not ok:
            return None, False
        return _expression_subject(expression.right, subject)
    if isinstance(expression, FunctionCall):
        for argument in expression.arguments:
            subject, ok = _expression_subject(argument, subject)
            if not ok:
                return None, False
        return subject, True
    if isinstance(expression, InExpression):
        subject, ok = _expression_subject(expression.operand, subject)
        if not ok:
            return None, False
        for choice in expression.choices:
            subject, ok = _expression_subject(choice, subject)
            if not ok:
                return None, False
        return subject, True
    return subject, True


def _exists_groups(expression: Expression) -> Iterator[GroupGraphPattern]:
    """Every EXISTS group nested inside a filter expression."""
    if isinstance(expression, ExistsExpression):
        yield expression.group
    elif isinstance(expression, UnaryExpression):
        yield from _exists_groups(expression.operand)
    elif isinstance(expression, BinaryExpression):
        yield from _exists_groups(expression.left)
        yield from _exists_groups(expression.right)
    elif isinstance(expression, FunctionCall):
        for argument in expression.arguments:
            yield from _exists_groups(argument)
    elif isinstance(expression, InExpression):
        yield from _exists_groups(expression.operand)
        for choice in expression.choices:
            yield from _exists_groups(choice)


def _collect_subjects(
    group: GroupGraphPattern, variables: List[Variable], constants: List[bool]
) -> None:
    for element in group.elements:
        if isinstance(element, TriplePatternNode):
            if isinstance(element.subject, Variable):
                variables.append(element.subject)
            else:
                constants[0] = True
        elif isinstance(element, OptionalNode):
            _collect_subjects(element.group, variables, constants)
        elif isinstance(element, UnionNode):
            for branch in element.branches:
                _collect_subjects(branch, variables, constants)
        elif isinstance(element, GroupGraphPattern):
            _collect_subjects(element, variables, constants)
        elif isinstance(element, FilterNode):
            for nested in _exists_groups(element.expression):
                _collect_subjects(nested, variables, constants)


def co_partition_reason(group: GroupGraphPattern) -> str:
    """Why :func:`co_partition_subject` rejected ``group`` (for explain).

    Best-effort diagnostics, never used for execution decisions: the
    returned string names the first structural obstacle found.
    """
    if not any(isinstance(e, TriplePatternNode) for e in group.elements):
        return "not co-partitioned: no top-level triple pattern"
    variables: List[Variable] = []
    constants = [False]
    _collect_subjects(group, variables, constants)
    if constants[0]:
        return "not co-partitioned: a pattern has a constant subject"
    names = sorted({f"?{v.name}" for v in variables})
    if len(names) > 1:
        return (
            "not co-partitioned: patterns bind different subject variables "
            f"({', '.join(names)})"
        )
    return "not co-partitioned"


@dataclass(frozen=True)
class ShardedBGPPlan:
    """A :class:`BGPPlan` plus shard routing for one basic graph pattern.

    Attributes
    ----------
    plan:
        The underlying single-store plan (operator order unchanged — the
        same plan runs per shard on the scatter path, or once against the
        merged view on the global path).
    mode:
        ``"scatter"`` (co-partitioned, pipeline runs per shard),
        ``"ship"`` (anchored patterns scatter, the rest broadcast as hash
        tables) or ``"global"`` (merged-view evaluation).
    subject_variable:
        The common subject variable when scattering, the ship plan's
        partition variable when shipping, else ``None``.
    shards:
        The shards that must run the group (probed by every pattern).
    routing:
        Per plan step, the shards probed vs pruned for that pattern;
        broadcast patterns of a ship plan are marked ``shipped``.
    fallback_reason:
        Why the group degraded — to the global path (mode ``"global"``),
        or, for aggregate queries whose group *is* distributable, why the
        fold could not be pushed to the workers.  ``None`` when nothing
        degraded.
    """

    plan: BGPPlan
    mode: str
    shard_count: int
    subject_variable: Optional[Variable]
    shards: Tuple[int, ...]
    routing: Tuple[PatternRoute, ...]
    fallback_reason: Optional[str] = None

    @property
    def steps(self):
        """The underlying plan steps, in execution order."""
        return self.plan.steps

    def operators(self) -> List[str]:
        """The operator labels in execution order."""
        return self.plan.operators()

    def patterns(self) -> List[TriplePatternNode]:
        """The triple patterns in execution order."""
        return self.plan.patterns()

    def describe(self) -> str:
        """Multi-line rendering: header plus one line per planned pattern."""
        subject = (
            f" on ?{self.subject_variable.name}"
            if self.subject_variable is not None
            else ""
        )
        shards = ",".join(map(str, self.shards)) or "-"
        lines = [
            f"{self.mode}{subject} over {self.shard_count} shards"
            f" (evaluating: [{shards}])"
        ]
        for step, route in zip(self.plan.steps, self.routing):
            lines.append(f"{step.describe()}  {route.describe()}")
        if self.fallback_reason:
            lines.append(f"fallback: {self.fallback_reason}")
        return "\n".join(lines)


class ShardedQueryEvaluator(QueryEvaluator):
    """Evaluates queries against a :class:`ShardedTripleStore`.

    Inherits the full planned-operator machinery from
    :class:`QueryEvaluator` (running it against the merged shard view)
    and adds the per-shard scatter path for co-partitioned groups.

    Parameters
    ----------
    store:
        The sharded dataset.
    use_planner:
        Forwarded to the per-shard and merged-view evaluators.
    backend:
        ``"thread"`` (default) evaluates scattered groups in-process
        against per-shard local evaluators, lazily chained — waves get
        their concurrency from the scheduler's thread pool.
        ``"process"`` ships each scattered group to the shard's worker
        process through ``executor`` and streams the serialized binding
        batches back, lifting the per-shard pipelines out of this
        interpreter's GIL; the global fallback path (non-co-partitioned
        groups) still runs in-process against the merged view.
    executor:
        A :class:`~repro.shard.workers.ProcessShardExecutor` serving a
        snapshot of ``store`` (see
        :meth:`~repro.shard.sharded_store.ShardedTripleStore.serve`).
        Required — and only meaningful — when ``backend="process"``.
    use_vectorized:
        Forwarded to the per-shard and merged-view evaluators: the block
        join kernels run both on the global-gather path (per-shard columns
        concatenate) and inside each shard-local evaluator.
    """

    def __init__(
        self,
        store: ShardedTripleStore,
        use_planner: bool = True,
        backend: str = "thread",
        executor=None,
        use_vectorized=None,
    ):
        if not isinstance(store, ShardedTripleStore):
            raise TypeError(
                "ShardedQueryEvaluator requires a ShardedTripleStore; "
                "use QueryEvaluator for plain stores"
            )
        if backend not in ("thread", "process"):
            raise ValueError(f"backend must be 'thread' or 'process', got {backend!r}")
        if backend == "process":
            if executor is None:
                raise ValueError(
                    "backend='process' requires a ProcessShardExecutor "
                    "(see ShardedTripleStore.serve)"
                )
            if executor.num_shards != store.num_shards:
                raise ValueError(
                    f"executor serves {executor.num_shards} shards but the "
                    f"store has {store.num_shards}"
                )
            # The workers serve the snapshot on disk, so the store must
            # (a) be the store that snapshot was taken of — its tracked
            # snapshot directory is the executor's — and (b) still be at
            # the snapshotted mutation stamp.  Anything else would
            # silently answer from two diverging datasets.
            if (
                store._snapshot_dir is None
                or store._snapshot_dir.resolve() != executor.directory.resolve()
            ):
                raise ValueError(
                    "executor serves a snapshot the store was never "
                    "saved to / opened from; create it via store.serve()"
                )
            if store.data_version != store._snapshot_version:
                raise StoreError(
                    "ShardedTripleStore was mutated after its snapshot "
                    "was written; call serve() again to refresh it"
                )
        super().__init__(store, use_planner=use_planner, use_vectorized=use_vectorized)
        self.backend = backend
        self._executor = executor
        self._router = ShardRouter(store)
        self._locals = tuple(
            QueryEvaluator(shard, use_planner=use_planner, use_vectorized=use_vectorized)
            for shard in store.shards
        )
        self._scatter_cache: Dict[GroupGraphPattern, object] = {}
        self._ship_cache: Dict[GroupGraphPattern, Tuple] = {}
        # Endpoints share one evaluator across wave threads, so the
        # armed-pushdown handoff from _evaluate_select to _evaluate_group
        # must be per thread — a shared slot could hand one query's
        # projection to a concurrent query reusing the same WHERE object.
        self._push_local = threading.local()

    # ------------------------------------------------------------------ #
    # SELECT pushdowns (fold / projection)
    # ------------------------------------------------------------------ #
    def _evaluate_select(self, query: SelectQuery) -> ResultSet:
        if query.is_aggregate:
            fast = self._try_fast_count(query)
            if fast is not None:
                self._note_mode("fast-count")
                self._metrics.increment("scatter.mode.fast-count")
                return fast
            folded = self._fold_pushdown(query)
            if folded is not None:
                self._note_mode("fold")
                self._metrics.increment("scatter.mode.fold")
                return folded
            return super()._evaluate_select(query)
        if not self._stash_projection(query):
            return super()._evaluate_select(query)
        try:
            return super()._evaluate_select(query)
        finally:
            self._push_local.spec = None

    def _fold_pushdown(self, query: SelectQuery) -> Optional[ResultSet]:
        """Aggregate the query with worker-side partial folds, or ``None``.

        Engages when the WHERE group is distributable (scatter or ship)
        and every projection item is a plain variable or COUNT — the
        shapes :func:`repro.sparql.fold.build_fold_spec` mirrors exactly.
        Transfer is one partial per routed shard.
        """
        self._require_fresh_snapshot()
        group = query.where
        ship: Optional[ShipPlan] = None
        subject = self._scatter_subject(group)
        if subject is None:
            ship, _ = self._ship_plan(group)
            if ship is None:
                return None
            partition = ship.partition_variable
        else:
            partition = subject
        spec = build_fold_spec(query, partition)
        if spec is None:
            return None
        if spec.group_by and (query.limit is not None or query.offset):
            # Which grouped rows survive OFFSET/LIMIT depends on the row
            # order the fold merge does not reproduce; stream instead.
            return None
        if ship is None:
            shards = self._route(group, subject, IdBinding.EMPTY)
            work = group
        else:
            shards = self._route_ship(ship, IdBinding.EMPTY)
            work = ship
        merged: Dict = {}
        if shards:
            with self._tracer.span(
                "fold", shards=len(shards), backend=self.backend
            ):
                if self.backend == "process":
                    merged = self._executor.run_fold(shards, work, spec)
                else:
                    for index in shards:
                        local = self._locals[index]
                        if ship is None:
                            solutions = local._evaluate_group(
                                group, IdBinding.EMPTY
                            )
                        else:
                            solutions = execute_ship_plan(
                                local, ship, IdBinding.EMPTY
                            )
                        partial = fold_local(solutions, spec)
                        merge_partial(spec, merged, partial)
        return finalize(query, spec, merged, self._dict)

    def _stash_projection(self, query: SelectQuery) -> bool:
        """Arm worker-side projection pushdown for this query's top group.

        Only the process backend benefits (threads share the heap), and
        only plain-variable projections are restrictable: workers then
        ship just the projected columns and, under DISTINCT, pre-dedup
        shard-locally (sound — the parent's projection is the identity on
        restricted rows, and its own DISTINCT still runs globally).
        """
        if self.backend != "process" or query.select_all:
            return False
        names = []
        for item in query.projection:
            if item.expression is not None or item.variable is None:
                return False
            names.append(item.variable.name)
        self._push_local.spec = (query.where, tuple(names), bool(query.distinct))
        return True

    def _consume_push(self, group: GroupGraphPattern, initial: IdBinding) -> Dict:
        """The armed projection-pushdown kwargs for this exact dispatch.

        Applies once, to the top-level evaluation of the stashed query's
        WHERE group with an empty initial binding — re-entrant calls
        (OPTIONAL probes, EXISTS groups) must ship full rows.
        """
        spec = getattr(self._push_local, "spec", None)
        if spec is not None and spec[0] is group and not initial:
            self._push_local.spec = None
            return {"project": spec[1], "distinct": spec[2]}
        return {}

    # ------------------------------------------------------------------ #
    # Scatter dispatch
    # ------------------------------------------------------------------ #
    def _require_fresh_snapshot(self) -> None:
        if (
            self.backend == "process"
            and self.store.data_version != self.store._snapshot_version
            # During a generation handover the endpoint layer deliberately
            # keeps the outgoing executor answering while the store is
            # already mutated: its workers serve a consistent (old)
            # snapshot from their own mmaps, which is exactly the
            # zero-downtime contract.  The freshness pin re-arms the
            # moment the handover completes.
            and not getattr(self.store, "_refresh_serving", 0)
        ):
            # Checked before any routing or fallback: a mutated store
            # must never answer — not even with an empty routing result
            # or through the in-process global path — while the workers
            # still serve the pre-mutation snapshot.
            raise StoreError(
                "ShardedTripleStore was mutated after its process "
                "executor booted; call serve() again to refresh the "
                "workers' snapshot"
            )

    def _evaluate_group(
        self, group: GroupGraphPattern, initial: IdBinding
    ) -> Iterator[IdBinding]:
        self._require_fresh_snapshot()
        # Mode counters and scatter spans only fire for root evaluations
        # (empty initial binding) — OPTIONAL / EXISTS probes re-enter here
        # once per solution.
        root_call = not len(initial)
        subject = self._scatter_subject(group)
        if subject is None:
            shipped = self._try_ship(group, initial)
            if shipped is not None:
                return shipped
            if root_call:
                self._note_mode("global")
                self._metrics.increment("scatter.mode.global")
            return super()._evaluate_group(group, initial)
        shards = self._route(group, subject, initial)
        if root_call:
            self._note_mode("scatter")
            self._metrics.increment("scatter.mode.scatter")
        if not shards:
            return iter(())
        span = None
        if root_call and self._tracer.active:
            span = self._tracer.stream_span(
                "scatter", shards=len(shards), backend=self.backend
            )
        if self.backend == "process":
            stream = self._executor.run_group(
                shards, group, initial, trace_parent=span,
                **self._consume_push(group, initial)
            )
        elif len(shards) == 1:
            stream = self._locals[shards[0]]._evaluate_group(group, initial)
        else:
            stream = self._gather(group, initial, shards)
        if span is not None:
            stream = obs_trace.count_rows(span, stream)
        return stream

    def _gather(
        self,
        group: GroupGraphPattern,
        initial: IdBinding,
        shards: Tuple[int, ...],
    ) -> Iterator[IdBinding]:
        """Chain per-shard streams lazily: a satisfied ASK/LIMIT consumer
        stops before the trailing shards are ever planned or scanned."""
        for index in shards:
            yield from self._locals[index]._evaluate_group(group, initial)

    # ------------------------------------------------------------------ #
    # Join shipping
    # ------------------------------------------------------------------ #
    def _try_ship(
        self, group: GroupGraphPattern, initial: IdBinding
    ) -> Optional[Iterator[IdBinding]]:
        """Run ``group`` as a broadcast hash join, or ``None`` to fall back."""
        plan, _ = self._ship_plan(group)
        if plan is None:
            return None
        root_call = not len(initial)
        if root_call:
            self._note_mode("ship")
            self._metrics.increment("scatter.mode.ship")
        shards = self._route_ship(plan, initial)
        if not shards:
            return iter(())
        span = None
        if root_call and self._tracer.active:
            span = self._tracer.stream_span(
                "scatter",
                shards=len(shards),
                backend=self.backend,
                shipped=True,
                broadcast_rows=plan.broadcast_rows,
            )
        if self.backend == "process":
            stream = self._executor.run_group(
                shards, plan, initial, trace_parent=span,
                **self._consume_push(group, initial)
            )
        elif len(shards) == 1:
            stream = execute_ship_plan(self._locals[shards[0]], plan, initial)
        else:
            stream = self._ship_gather(plan, initial, shards)
        if span is not None:
            stream = obs_trace.count_rows(span, stream)
        return stream

    def _ship_gather(
        self, plan: ShipPlan, initial: IdBinding, shards: Tuple[int, ...]
    ) -> Iterator[IdBinding]:
        for index in shards:
            yield from execute_ship_plan(self._locals[index], plan, initial)

    def _ship_plan(self, group: GroupGraphPattern) -> Tuple[Optional[ShipPlan], str]:
        """Build (or reuse) the ship plan for ``group``.

        Cached per group *and* store version — the broadcast tables are
        materialised data, so a mutation invalidates them even though the
        AST key is unchanged.
        """
        version = self.store.data_version
        cached = self._ship_cache.get(group)
        if cached is not None and cached[0] == version:
            return cached[1], cached[2]
        if len(self._ship_cache) >= PLAN_CACHE_LIMIT:
            self._ship_cache.clear()
        with self._tracer.span("ship:broadcast-build"):
            plan, reason = build_ship_plan(self.store, self._dict, group)
        if plan is not None:
            self._metrics.increment("ship.plans_built")
            self._metrics.increment("ship.broadcast_rows", plan.broadcast_rows)
            self._metrics.increment("ship.broadcast_bytes", plan.broadcast_bytes)
        self._ship_cache[group] = (version, plan, reason)
        return plan, reason

    def _route_ship(
        self, plan: ShipPlan, initial: IdBinding
    ) -> Tuple[int, ...]:
        """The shards that must run a ship plan's anchor (may be empty)."""
        bound = initial.get(plan.partition_variable)
        if bound is not None:
            if type(bound) is not int:
                return ()
            candidates: Optional[List[int]] = [
                self.store.shard_index_for_subject(bound)
            ]
        else:
            candidates = None
        id_patterns = []
        for pattern in plan.anchor.elements:
            consts = self._resolve_constants(pattern)
            if consts is None:  # a constant unknown to the dictionary
                return ()
            id_patterns.append(tuple(consts))
        shards, _ = self._router.route_group(id_patterns, candidates)
        return shards

    def _scatter_subject(self, group: GroupGraphPattern) -> Optional[Variable]:
        cached = self._scatter_cache.get(group)
        if cached is None:
            if len(self._scatter_cache) >= PLAN_CACHE_LIMIT:
                self._scatter_cache.clear()
            subject = co_partition_subject(group)
            self._scatter_cache[group] = (
                subject if subject is not None else _NOT_CO_PARTITIONED
            )
            return subject
        return None if cached is _NOT_CO_PARTITIONED else cached  # type: ignore[return-value]

    def _route(
        self,
        group: GroupGraphPattern,
        subject: Variable,
        initial: IdBinding,
    ) -> Tuple[int, ...]:
        """The shards that must evaluate ``group`` (may be empty)."""
        shards, _ = self._route_with_details(group, subject, initial)
        return shards

    def _route_with_details(
        self,
        group: GroupGraphPattern,
        subject: Variable,
        initial: IdBinding,
    ) -> Tuple[Tuple[int, ...], Tuple[PatternRoute, ...]]:
        candidates = self._candidate_shards(group, subject, initial)
        if candidates is not None and not candidates:
            return (), ()
        patterns = [e for e in group.elements if isinstance(e, TriplePatternNode)]
        id_patterns = []
        for pattern in patterns:
            consts = self._resolve_constants(pattern)
            if consts is None:  # a constant unknown to the dictionary
                return (), ()
            id_patterns.append(tuple(consts))
        return self._router.route_group(id_patterns, candidates)

    def _candidate_shards(
        self,
        group: GroupGraphPattern,
        subject: Variable,
        initial: IdBinding,
    ) -> Optional[List[int]]:
        """Shards the subject variable can land in, or ``None`` for all.

        An initial binding pins one shard; VALUES nodes binding the
        subject in *every* row restrict to the rows' owning shards (rows
        whose term is unknown to the dictionary can never join a
        pattern, so they restrict too).
        """
        bound = initial.get(subject)
        if bound is not None:
            if type(bound) is not int:
                return []  # out-of-dictionary term: no pattern can match
            return [self.store.shard_index_for_subject(bound)]
        candidates: Optional[set] = None
        id_for = self._dict.id_for
        for node in group.elements:
            if not isinstance(node, ValuesNode) or subject not in node.variables:
                continue
            position = node.variables.index(subject)
            if any(row[position] is None for row in node.rows):
                continue  # an UNDEF row leaves the subject open: all shards
            owners = set()
            for row in node.rows:
                tid = id_for(row[position])
                if tid is not None:
                    owners.add(self.store.shard_index_for_subject(tid))
            candidates = owners if candidates is None else candidates & owners
        return sorted(candidates) if candidates is not None else None

    # ------------------------------------------------------------------ #
    # Explain
    # ------------------------------------------------------------------ #
    def explain(self, query: Union[Query, str]) -> ShardedBGPPlan:
        """The sharded plan for the query's top-level basic graph pattern.

        Extends :meth:`QueryEvaluator.explain`: the underlying
        :class:`BGPPlan` is wrapped with the execution mode and, per
        planned pattern, the shards probed vs pruned by the router.
        """
        if isinstance(query, str):
            query = parse_query(query)
        base = super().explain(query)
        group = query.where
        subject = self._scatter_subject(group)
        ship: Optional[ShipPlan] = None
        fallback_reason: Optional[str] = None
        if subject is not None:
            candidates = self._candidate_shards(group, subject, IdBinding.EMPTY)
            mode = "scatter"
        else:
            candidates = None
            ship, ship_reason = self._ship_plan(group)
            if ship is not None:
                mode = "ship"
                subject = ship.partition_variable
            else:
                mode = "global"
                fallback_reason = (
                    f"{co_partition_reason(group)}; "
                    f"join shipping rejected: {ship_reason}"
                )
        if (
            mode != "global"
            and isinstance(query, SelectQuery)
            and query.is_aggregate
            and self._try_fast_count(query) is None
        ):
            spec = build_fold_spec(query, subject)
            if spec is None:
                fallback_reason = (
                    "aggregate projection cannot fold worker-side "
                    "(non-COUNT expression); rows stream to the parent"
                )
            elif spec.group_by and (query.limit is not None or query.offset):
                fallback_reason = (
                    "grouped aggregate with LIMIT/OFFSET folds in the "
                    "parent (merge order is not deterministic)"
                )
        shipped = ship.shipped if ship is not None else ()
        routing: List[PatternRoute] = []
        surviving = (
            set(candidates) if candidates is not None else set(self._router.all_shards())
        )
        for step in base.steps:
            consts = self._resolve_constants(step.pattern)
            if step.pattern in shipped:
                # Broadcast to every routed worker: shard routing does
                # not apply and the pattern never constrains `surviving`.
                routing.append(
                    PatternRoute(
                        pattern=tuple(consts) if consts else (None, None, None),
                        probed=(),
                        pruned=(),
                        shipped=True,
                    )
                )
                continue
            if consts is None:
                route = PatternRoute(
                    pattern=(None, None, None),
                    probed=(),
                    pruned=self._router.all_shards(),
                )
            else:
                route = self._router.route_pattern(tuple(consts), candidates)
            routing.append(route)
            surviving &= set(route.probed)
        return ShardedBGPPlan(
            plan=base,
            mode=mode,
            shard_count=self.store.num_shards,
            subject_variable=subject,
            shards=tuple(sorted(surviving)),
            routing=tuple(routing),
            fallback_reason=fallback_reason,
        )


def evaluate_sharded(
    store: ShardedTripleStore, query: Union[Query, str]
):
    """Convenience wrapper: evaluate ``query`` with scatter/gather."""
    return ShardedQueryEvaluator(store).evaluate(query)
