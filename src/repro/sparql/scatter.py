"""Scatter/gather query evaluation over a sharded triple store.

:class:`ShardedQueryEvaluator` extends :class:`QueryEvaluator` with two
execution strategies and picks per group, by *structure alone* (so the
choice can cost time, never answers):

**Scatter** — for *co-partitioned* groups: every triple pattern,
recursively through OPTIONAL / UNION / nested groups / FILTER EXISTS,
has the same variable in subject position (the star shape of the
aligner's batched ``VALUES ?s {...} ?s ?p ?o`` probes).  Any solution
then binds that variable to one subject ID, and subject-range
partitioning puts *all* triples of that subject in one shard — so the
whole planned merge/hash/nested pipeline runs per shard against that
shard's local evaluator and the per-shard streams are chained lazily.
ASK and LIMIT short-circuit across shards: trailing shards are never
evaluated once the consumer stops.  The :class:`ShardRouter` prunes
shards first — by the owning shard when the subject is bound (initial
binding or all-constant VALUES rows) and by per-shard pattern counts
(a shard where any required pattern matches zero triples contributes
nothing).

**Global gather** — everything else runs the inherited evaluator against
the :class:`ShardedTripleStore` itself, whose ID-level API merges the
shards: subject-bound lookups route, counts sum, and two-constant
sorted runs concatenate into globally sorted runs the existing
merge-join operators stream directly.  This path is correct for
arbitrary queries (cross-subject chains, FILTER NOT EXISTS, ...).

:meth:`ShardedQueryEvaluator.explain` returns a :class:`ShardedBGPPlan`
wrapping the ordinary :class:`BGPPlan` with the chosen mode and, per
planned pattern, the shards probed vs pruned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.errors import StoreError
from repro.shard.router import PatternRoute, ShardRouter
from repro.shard.sharded_store import ShardedTripleStore
from repro.sparql.ast import (
    BinaryExpression,
    ExistsExpression,
    Expression,
    FilterNode,
    FunctionCall,
    GroupGraphPattern,
    InExpression,
    OptionalNode,
    Query,
    TriplePatternNode,
    UnaryExpression,
    UnionNode,
    ValuesNode,
)
from repro.sparql.bindings import IdBinding, Variable
from repro.sparql.evaluate import QueryEvaluator
from repro.sparql.parser import parse_query
from repro.sparql.plan import BGPPlan, PLAN_CACHE_LIMIT

#: Cache sentinel: the group was analysed and is not co-partitioned.
_NOT_CO_PARTITIONED = object()


def co_partition_subject(group: GroupGraphPattern) -> Optional[Variable]:
    """The single subject variable shared by every pattern of ``group``.

    Returns ``None`` unless the group can be scattered: it must contain
    at least one top-level triple pattern (so every emitted solution is
    pinned to a shard) and every pattern — recursively through OPTIONAL,
    UNION, nested groups and EXISTS filters — must have the same
    :class:`Variable` in subject position.
    """
    if not any(isinstance(e, TriplePatternNode) for e in group.elements):
        return None
    subject, ok = _group_subject(group, None)
    return subject if ok else None


def _group_subject(
    group: GroupGraphPattern, subject: Optional[Variable]
) -> Tuple[Optional[Variable], bool]:
    for element in group.elements:
        if isinstance(element, TriplePatternNode):
            s = element.subject
            if not isinstance(s, Variable):
                return None, False
            if subject is None:
                subject = s
            elif s != subject:
                return None, False
        elif isinstance(element, ValuesNode):
            continue
        elif isinstance(element, FilterNode):
            subject, ok = _expression_subject(element.expression, subject)
            if not ok:
                return None, False
        elif isinstance(element, OptionalNode):
            subject, ok = _group_subject(element.group, subject)
            if not ok:
                return None, False
        elif isinstance(element, UnionNode):
            for branch in element.branches:
                subject, ok = _group_subject(branch, subject)
                if not ok:
                    return None, False
        elif isinstance(element, GroupGraphPattern):
            subject, ok = _group_subject(element, subject)
            if not ok:
                return None, False
        else:  # pragma: no cover - parser prevents this
            return None, False
    return subject, True


def _expression_subject(
    expression: Expression, subject: Optional[Variable]
) -> Tuple[Optional[Variable], bool]:
    """Check EXISTS groups nested inside a filter expression."""
    if isinstance(expression, ExistsExpression):
        return _group_subject(expression.group, subject)
    if isinstance(expression, UnaryExpression):
        return _expression_subject(expression.operand, subject)
    if isinstance(expression, BinaryExpression):
        subject, ok = _expression_subject(expression.left, subject)
        if not ok:
            return None, False
        return _expression_subject(expression.right, subject)
    if isinstance(expression, FunctionCall):
        for argument in expression.arguments:
            subject, ok = _expression_subject(argument, subject)
            if not ok:
                return None, False
        return subject, True
    if isinstance(expression, InExpression):
        subject, ok = _expression_subject(expression.operand, subject)
        if not ok:
            return None, False
        for choice in expression.choices:
            subject, ok = _expression_subject(choice, subject)
            if not ok:
                return None, False
        return subject, True
    return subject, True


@dataclass(frozen=True)
class ShardedBGPPlan:
    """A :class:`BGPPlan` plus shard routing for one basic graph pattern.

    Attributes
    ----------
    plan:
        The underlying single-store plan (operator order unchanged — the
        same plan runs per shard on the scatter path, or once against the
        merged view on the global path).
    mode:
        ``"scatter"`` (co-partitioned, pipeline runs per shard) or
        ``"global"`` (merged-view evaluation).
    subject_variable:
        The common subject variable when scattering, else ``None``.
    shards:
        The shards that must run the group (probed by every pattern).
    routing:
        Per plan step, the shards probed vs pruned for that pattern.
    """

    plan: BGPPlan
    mode: str
    shard_count: int
    subject_variable: Optional[Variable]
    shards: Tuple[int, ...]
    routing: Tuple[PatternRoute, ...]

    @property
    def steps(self):
        """The underlying plan steps, in execution order."""
        return self.plan.steps

    def operators(self) -> List[str]:
        """The operator labels in execution order."""
        return self.plan.operators()

    def patterns(self) -> List[TriplePatternNode]:
        """The triple patterns in execution order."""
        return self.plan.patterns()

    def describe(self) -> str:
        """Multi-line rendering: header plus one line per planned pattern."""
        subject = (
            f" on ?{self.subject_variable.name}"
            if self.subject_variable is not None
            else ""
        )
        shards = ",".join(map(str, self.shards)) or "-"
        lines = [
            f"{self.mode}{subject} over {self.shard_count} shards"
            f" (evaluating: [{shards}])"
        ]
        for step, route in zip(self.plan.steps, self.routing):
            lines.append(f"{step.describe()}  {route.describe()}")
        return "\n".join(lines)


class ShardedQueryEvaluator(QueryEvaluator):
    """Evaluates queries against a :class:`ShardedTripleStore`.

    Inherits the full planned-operator machinery from
    :class:`QueryEvaluator` (running it against the merged shard view)
    and adds the per-shard scatter path for co-partitioned groups.

    Parameters
    ----------
    store:
        The sharded dataset.
    use_planner:
        Forwarded to the per-shard and merged-view evaluators.
    backend:
        ``"thread"`` (default) evaluates scattered groups in-process
        against per-shard local evaluators, lazily chained — waves get
        their concurrency from the scheduler's thread pool.
        ``"process"`` ships each scattered group to the shard's worker
        process through ``executor`` and streams the serialized binding
        batches back, lifting the per-shard pipelines out of this
        interpreter's GIL; the global fallback path (non-co-partitioned
        groups) still runs in-process against the merged view.
    executor:
        A :class:`~repro.shard.workers.ProcessShardExecutor` serving a
        snapshot of ``store`` (see
        :meth:`~repro.shard.sharded_store.ShardedTripleStore.serve`).
        Required — and only meaningful — when ``backend="process"``.
    use_vectorized:
        Forwarded to the per-shard and merged-view evaluators: the block
        join kernels run both on the global-gather path (per-shard columns
        concatenate) and inside each shard-local evaluator.
    """

    def __init__(
        self,
        store: ShardedTripleStore,
        use_planner: bool = True,
        backend: str = "thread",
        executor=None,
        use_vectorized=None,
    ):
        if not isinstance(store, ShardedTripleStore):
            raise TypeError(
                "ShardedQueryEvaluator requires a ShardedTripleStore; "
                "use QueryEvaluator for plain stores"
            )
        if backend not in ("thread", "process"):
            raise ValueError(f"backend must be 'thread' or 'process', got {backend!r}")
        if backend == "process":
            if executor is None:
                raise ValueError(
                    "backend='process' requires a ProcessShardExecutor "
                    "(see ShardedTripleStore.serve)"
                )
            if executor.num_shards != store.num_shards:
                raise ValueError(
                    f"executor serves {executor.num_shards} shards but the "
                    f"store has {store.num_shards}"
                )
            # The workers serve the snapshot on disk, so the store must
            # (a) be the store that snapshot was taken of — its tracked
            # snapshot directory is the executor's — and (b) still be at
            # the snapshotted mutation stamp.  Anything else would
            # silently answer from two diverging datasets.
            if (
                store._snapshot_dir is None
                or store._snapshot_dir.resolve() != executor.directory.resolve()
            ):
                raise ValueError(
                    "executor serves a snapshot the store was never "
                    "saved to / opened from; create it via store.serve()"
                )
            if store.data_version != store._snapshot_version:
                raise StoreError(
                    "ShardedTripleStore was mutated after its snapshot "
                    "was written; call serve() again to refresh it"
                )
        super().__init__(store, use_planner=use_planner, use_vectorized=use_vectorized)
        self.backend = backend
        self._executor = executor
        self._router = ShardRouter(store)
        self._locals = tuple(
            QueryEvaluator(shard, use_planner=use_planner, use_vectorized=use_vectorized)
            for shard in store.shards
        )
        self._scatter_cache: Dict[GroupGraphPattern, object] = {}

    # ------------------------------------------------------------------ #
    # Scatter dispatch
    # ------------------------------------------------------------------ #
    def _evaluate_group(
        self, group: GroupGraphPattern, initial: IdBinding
    ) -> Iterator[IdBinding]:
        if (
            self.backend == "process"
            and self.store.data_version != self.store._snapshot_version
        ):
            # Checked before any routing or fallback: a mutated store
            # must never answer — not even with an empty routing result
            # or through the in-process global path — while the workers
            # still serve the pre-mutation snapshot.
            raise StoreError(
                "ShardedTripleStore was mutated after its process "
                "executor booted; call serve() again to refresh the "
                "workers' snapshot"
            )
        subject = self._scatter_subject(group)
        if subject is None:
            return super()._evaluate_group(group, initial)
        shards = self._route(group, subject, initial)
        if not shards:
            return iter(())
        if self.backend == "process":
            return self._executor.run_group(shards, group, initial)
        if len(shards) == 1:
            return self._locals[shards[0]]._evaluate_group(group, initial)
        return self._gather(group, initial, shards)

    def _gather(
        self,
        group: GroupGraphPattern,
        initial: IdBinding,
        shards: Tuple[int, ...],
    ) -> Iterator[IdBinding]:
        """Chain per-shard streams lazily: a satisfied ASK/LIMIT consumer
        stops before the trailing shards are ever planned or scanned."""
        for index in shards:
            yield from self._locals[index]._evaluate_group(group, initial)

    def _scatter_subject(self, group: GroupGraphPattern) -> Optional[Variable]:
        cached = self._scatter_cache.get(group)
        if cached is None:
            if len(self._scatter_cache) >= PLAN_CACHE_LIMIT:
                self._scatter_cache.clear()
            subject = co_partition_subject(group)
            self._scatter_cache[group] = (
                subject if subject is not None else _NOT_CO_PARTITIONED
            )
            return subject
        return None if cached is _NOT_CO_PARTITIONED else cached  # type: ignore[return-value]

    def _route(
        self,
        group: GroupGraphPattern,
        subject: Variable,
        initial: IdBinding,
    ) -> Tuple[int, ...]:
        """The shards that must evaluate ``group`` (may be empty)."""
        shards, _ = self._route_with_details(group, subject, initial)
        return shards

    def _route_with_details(
        self,
        group: GroupGraphPattern,
        subject: Variable,
        initial: IdBinding,
    ) -> Tuple[Tuple[int, ...], Tuple[PatternRoute, ...]]:
        candidates = self._candidate_shards(group, subject, initial)
        if candidates is not None and not candidates:
            return (), ()
        patterns = [e for e in group.elements if isinstance(e, TriplePatternNode)]
        id_patterns = []
        for pattern in patterns:
            consts = self._resolve_constants(pattern)
            if consts is None:  # a constant unknown to the dictionary
                return (), ()
            id_patterns.append(tuple(consts))
        return self._router.route_group(id_patterns, candidates)

    def _candidate_shards(
        self,
        group: GroupGraphPattern,
        subject: Variable,
        initial: IdBinding,
    ) -> Optional[List[int]]:
        """Shards the subject variable can land in, or ``None`` for all.

        An initial binding pins one shard; VALUES nodes binding the
        subject in *every* row restrict to the rows' owning shards (rows
        whose term is unknown to the dictionary can never join a
        pattern, so they restrict too).
        """
        bound = initial.get(subject)
        if bound is not None:
            if type(bound) is not int:
                return []  # out-of-dictionary term: no pattern can match
            return [self.store.shard_index_for_subject(bound)]
        candidates: Optional[set] = None
        id_for = self._dict.id_for
        for node in group.elements:
            if not isinstance(node, ValuesNode) or subject not in node.variables:
                continue
            position = node.variables.index(subject)
            if any(row[position] is None for row in node.rows):
                continue  # an UNDEF row leaves the subject open: all shards
            owners = set()
            for row in node.rows:
                tid = id_for(row[position])
                if tid is not None:
                    owners.add(self.store.shard_index_for_subject(tid))
            candidates = owners if candidates is None else candidates & owners
        return sorted(candidates) if candidates is not None else None

    # ------------------------------------------------------------------ #
    # Explain
    # ------------------------------------------------------------------ #
    def explain(self, query: Union[Query, str]) -> ShardedBGPPlan:
        """The sharded plan for the query's top-level basic graph pattern.

        Extends :meth:`QueryEvaluator.explain`: the underlying
        :class:`BGPPlan` is wrapped with the execution mode and, per
        planned pattern, the shards probed vs pruned by the router.
        """
        if isinstance(query, str):
            query = parse_query(query)
        base = super().explain(query)
        group = query.where
        subject = self._scatter_subject(group)
        if subject is not None:
            candidates = self._candidate_shards(group, subject, IdBinding.EMPTY)
            mode = "scatter"
        else:
            candidates = None
            mode = "global"
        routing: List[PatternRoute] = []
        surviving = (
            set(candidates) if candidates is not None else set(self._router.all_shards())
        )
        for step in base.steps:
            consts = self._resolve_constants(step.pattern)
            if consts is None:
                route = PatternRoute(
                    pattern=(None, None, None),
                    probed=(),
                    pruned=self._router.all_shards(),
                )
            else:
                route = self._router.route_pattern(tuple(consts), candidates)
            routing.append(route)
            surviving &= set(route.probed)
        return ShardedBGPPlan(
            plan=base,
            mode=mode,
            shard_count=self.store.num_shards,
            subject_variable=subject,
            shards=tuple(sorted(surviving)),
            routing=tuple(routing),
        )


def evaluate_sharded(
    store: ShardedTripleStore, query: Union[Query, str]
):
    """Convenience wrapper: evaluate ``query`` with scatter/gather."""
    return ShardedQueryEvaluator(store).evaluate(query)
