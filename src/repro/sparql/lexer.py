"""SPARQL tokenizer.

The lexer turns a query string into a flat list of :class:`Token` objects.
It understands the lexical forms needed by the supported subset: IRIs,
prefixed names, variables, string literals (with language tags and
datatypes), numbers, booleans, keywords, punctuation, and comments.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

from repro.errors import ParseError

#: Keywords recognised by the parser (upper-cased for comparison).
KEYWORDS = frozenset(
    {
        "SELECT",
        "ASK",
        "WHERE",
        "DISTINCT",
        "REDUCED",
        "OPTIONAL",
        "FILTER",
        "UNION",
        "PREFIX",
        "BASE",
        "LIMIT",
        "OFFSET",
        "ORDER",
        "GROUP",
        "BY",
        "ASC",
        "DESC",
        "AS",
        "COUNT",
        "VALUES",
        "UNDEF",
        "IN",
        "NOT",
        "EXISTS",
        "A",
        "TRUE",
        "FALSE",
    }
)

#: Builtin function names.
BUILTINS = frozenset(
    {
        "REGEX",
        "BOUND",
        "STR",
        "LANG",
        "LANGMATCHES",
        "DATATYPE",
        "ISIRI",
        "ISURI",
        "ISBLANK",
        "ISLITERAL",
        "ISNUMERIC",
        "SAMETERM",
        "CONTAINS",
        "STRSTARTS",
        "STRENDS",
        "STRLEN",
        "LCASE",
        "UCASE",
        "ABS",
        "IF",
        "COALESCE",
    }
)


@dataclass(frozen=True)
class Token:
    """A lexical token.

    ``kind`` is one of: ``IRI``, ``PNAME``, ``VAR``, ``STRING``, ``LANGTAG``,
    ``NUMBER``, ``KEYWORD``, ``BUILTIN``, ``NAME``, ``PUNCT``, ``EOF``.
    ``value`` keeps the raw text except for IRIs (angle brackets stripped)
    and strings (quotes stripped, escapes resolved).
    """

    kind: str
    value: str
    line: int
    column: int

    def is_keyword(self, *names: str) -> bool:
        """Whether this token is a keyword with one of the given names."""
        return self.kind == "KEYWORD" and self.value.upper() in {n.upper() for n in names}

    def is_punct(self, *symbols: str) -> bool:
        """Whether this token is one of the given punctuation symbols."""
        return self.kind == "PUNCT" and self.value in symbols


_TOKEN_PATTERNS = [
    ("IRI", re.compile(r"<([^<>\"{}|^`\\\s]*)>")),
    ("VAR", re.compile(r"[?$]([A-Za-z_][A-Za-z0-9_]*)")),
    ("STRING", re.compile(r'"((?:[^"\\]|\\.)*)"' + r"|'((?:[^'\\]|\\.)*)'")),
    ("LANGTAG", re.compile(r"@([A-Za-z]+(?:-[A-Za-z0-9]+)*)")),
    ("NUMBER", re.compile(r"[+-]?(?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?")),
    ("PNAME", re.compile(r"[A-Za-z_][A-Za-z0-9_.-]*:[A-Za-z0-9_.%-]*|:[A-Za-z0-9_.%-]+")),
    ("NAME", re.compile(r"[A-Za-z_][A-Za-z0-9_]*")),
    (
        "PUNCT",
        re.compile(
            r"\^\^|&&|\|\||!=|<=|>=|[{}().,;*=<>!+/\-\[\]]"
        ),
    ),
]

_ESCAPE_MAP = {"\\n": "\n", "\\t": "\t", "\\r": "\r", '\\"': '"', "\\'": "'", "\\\\": "\\"}


def _unescape(text: str) -> str:
    out = []
    i = 0
    while i < len(text):
        if text[i] == "\\" and i + 1 < len(text):
            pair = text[i : i + 2]
            if pair in _ESCAPE_MAP:
                out.append(_ESCAPE_MAP[pair])
                i += 2
                continue
            if pair == "\\u" and i + 6 <= len(text):
                out.append(chr(int(text[i + 2 : i + 6], 16)))
                i += 6
                continue
        out.append(text[i])
        i += 1
    return "".join(out)


def tokenize(query: str) -> List[Token]:
    """Tokenize a SPARQL query string.

    Raises
    ------
    ParseError
        On any character that does not start a valid token.
    """
    tokens: List[Token] = []
    line = 1
    line_start = 0
    pos = 0
    length = len(query)

    while pos < length:
        ch = query[pos]
        if ch == "\n":
            line += 1
            pos += 1
            line_start = pos
            continue
        if ch in " \t\r":
            pos += 1
            continue
        if ch == "#":
            while pos < length and query[pos] != "\n":
                pos += 1
            continue

        column = pos - line_start + 1
        matched = False

        # '<' is ambiguous between IRI and less-than: try IRI first, and if
        # it fails fall through to punctuation.
        for kind, pattern in _TOKEN_PATTERNS:
            match = pattern.match(query, pos)
            if match is None:
                continue
            text = match.group(0)
            if kind == "IRI":
                value = match.group(1)
            elif kind == "VAR":
                value = match.group(1)
            elif kind == "STRING":
                raw = match.group(1) if match.group(1) is not None else match.group(2)
                value = _unescape(raw)
            elif kind == "LANGTAG":
                value = match.group(1)
            elif kind == "NAME":
                upper = text.upper()
                if upper in KEYWORDS:
                    kind = "KEYWORD"
                    value = text
                elif upper in BUILTINS:
                    kind = "BUILTIN"
                    value = upper
                else:
                    value = text
            else:
                value = text
            tokens.append(Token(kind, value, line, column))
            pos = match.end()
            matched = True
            break

        if not matched:
            raise ParseError(f"Unexpected character {ch!r}", line=line, column=column)

    tokens.append(Token("EOF", "", line, length - line_start + 1))
    return tokens
