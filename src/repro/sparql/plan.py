"""Cardinality-driven planning of basic graph patterns.

The evaluator used to order triple patterns by a constant-count heuristic
and join them with nested index lookups only.  This module replaces the
ordering step with a *greedy cost-based planner* and decides, per pattern,
which physical join operator the evaluator should run:

1. **Estimation.**  :class:`CardinalityEstimator` turns a triple pattern
   into a row estimate using only the bookkeeping the ID indexes already
   maintain (``count_for_key`` / ``third_count`` / ``distinct_third_count``
   behind :meth:`TripleStore.count_ids` and
   :meth:`TripleStore.count_distinct_ids`).  Constants are counted
   exactly; a variable that an earlier pattern has already bound divides
   the estimate by the number of distinct values in that position
   (uniformity assumption).

2. **Ordering.**  :func:`plan_bgp` greedily picks, at every step, the
   remaining pattern with the smallest estimated output given the
   variables bound so far, preferring patterns connected to the current
   partial solution so Cartesian products are deferred to last.

3. **Operator selection.**  Each planned step is annotated with the
   physical operator the evaluator should use:

   * ``scan`` — the first pattern: stream matches straight off an index.
   * ``merge`` — a sort-merge semi-join against the sorted third-level
     run of a two-constant pattern, when the solution stream is known to
     be nondecreasing on the pattern's single variable (the first scan
     establishes this order; left-streaming joins preserve it).
   * ``hash`` — build a hash table over the pattern's matches (the
     smaller estimated side), probe with the streamed solutions.  Also
     used for disconnected patterns so a Cartesian product scans the
     store once instead of once per solution.
   * ``nested`` — the classic per-solution index lookup, kept for
     selective patterns where probing the index directly is cheapest.

Plans are plain data (:class:`BGPPlan` / :class:`PlanStep`), so tests and
diagnostics can inspect the chosen order and operators without running
the query.  Planning never affects correctness — operators are chosen
only from structural facts (shared variables, constant positions,
sortedness) — so a stale estimate can cost time but not answers.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.sparql.ast import TriplePatternNode
from repro.sparql.bindings import Variable
from repro.store.triplestore import TripleStore

#: Physical operator labels used in :class:`PlanStep`.
SCAN = "scan"
MERGE = "merge"
HASH = "hash"
NESTED = "nested"

#: Cap on cached plans per store (the cache is cleared wholesale when full).
PLAN_CACHE_LIMIT = 512


def resolve_pattern_ids(
    dictionary, pattern: TriplePatternNode
) -> Optional[List[Optional[int]]]:
    """The pattern's positions as dictionary IDs (``None`` per variable).

    Returns ``None`` when a constant term is unknown to the dictionary —
    the pattern provably matches nothing.  Shared by the evaluator, the
    shard router's callers and the cross-shard join shipper so every layer
    resolves constants identically.
    """
    id_for = dictionary.id_for
    consts: List[Optional[int]] = []
    for term in (pattern.subject, pattern.predicate, pattern.object):
        if isinstance(term, Variable):
            consts.append(None)
        else:
            tid = id_for(term)
            if tid is None:
                return None
            consts.append(tid)
    return consts


class PlanContext:
    """Shared planning state for one store: estimator + plan cache.

    Keyed weakly by store (see :func:`plan_context`) so every evaluator —
    including the throwaway instances :func:`evaluate_query` creates per
    call — reuses the same cached estimates and plans.  The context is
    replaced whenever the store's ``data_version`` stamp changes — the
    stamp is bumped by *every* mutation, so an add+remove pair that
    leaves the size unchanged still drops stale plans.  Plans depend on
    the data only through estimates, so a stale context could only ever
    cost time, never answers — but fresh estimates keep the operator
    choices honest as the store evolves.
    """

    __slots__ = ("version", "estimator", "plans")

    def __init__(self, store: TripleStore):
        self.version = store.data_version
        # The estimator must not keep the store alive: this context lives
        # in a WeakKeyDictionary keyed by the store, and a strong reference
        # from the value back to the key would pin the entry forever.
        self.estimator = CardinalityEstimator(weakref.proxy(store))
        self.plans: Dict = {}


_CONTEXTS: "weakref.WeakKeyDictionary[TripleStore, PlanContext]" = (
    weakref.WeakKeyDictionary()
)


def plan_context(store: TripleStore) -> PlanContext:
    """The shared :class:`PlanContext` for ``store`` (fresh after mutation)."""
    context = _CONTEXTS.get(store)
    if context is None or context.version != store.data_version:
        context = PlanContext(store)
        _CONTEXTS[store] = context
    return context


class CardinalityEstimator:
    """Estimates triple-pattern cardinalities from index bookkeeping.

    All estimates come from O(1) index counts except the distinct-value
    counts used for bound variables, which may union per-key ID runs; those
    are cached for the lifetime of the estimator (the shared plan context
    drops its estimator whenever the store's ``data_version`` mutation
    stamp changes).
    """

    __slots__ = ("_store", "_distinct_cache")

    def __init__(self, store: TripleStore):
        self._store = store
        self._distinct_cache: Dict[Tuple, int] = {}

    def pattern_estimate(
        self, pattern: TriplePatternNode, bound: Set[Variable]
    ) -> float:
        """Estimated matches of ``pattern`` per solution with ``bound`` vars.

        Constants unknown to the store's dictionary make the estimate 0
        (the pattern provably matches nothing).
        """
        store = self._store
        id_for = store.dictionary.id_for
        consts: List[Optional[int]] = []
        bound_positions: List[str] = []
        for position, term in zip(
            "spo", (pattern.subject, pattern.predicate, pattern.object)
        ):
            if isinstance(term, Variable):
                consts.append(None)
                if term in bound:
                    bound_positions.append(position)
            else:
                tid = id_for(term)
                if tid is None:
                    return 0.0
                consts.append(tid)
        s, p, o = consts
        estimate = float(store.count_ids(s, p, o))
        if not estimate:
            return 0.0
        for position in bound_positions:
            estimate /= max(1, self._distinct(position, s, p, o))
        return estimate

    def _distinct(self, position: str, s, p, o) -> int:
        key = (position, s, p, o)
        cached = self._distinct_cache.get(key)
        if cached is None:
            if len(self._distinct_cache) >= PLAN_CACHE_LIMIT * 4:
                # Distinct constants can be unbounded on a static store
                # (one entry per queried subject/object); cap like plans.
                self._distinct_cache.clear()
            cached = self._store.count_distinct_ids(position, s, p, o)
            self._distinct_cache[key] = cached
        return cached


@dataclass(frozen=True)
class PlanStep:
    """One planned pattern: its physical operator and cost annotations."""

    pattern: TriplePatternNode
    operator: str
    estimate: float
    join_variables: Tuple[Variable, ...] = ()
    merge_variable: Optional[Variable] = None
    #: The pattern's standalone match estimate (no bound variables) — what a
    #: hash/scan build of this pattern alone would materialise.  The
    #: vectorized kernels use it to decide whether upgrading a ``nested``
    #: step to a block probe-join is worth the build cost.
    build_estimate: float = 0.0

    def describe(self) -> str:
        """One-line human-readable rendering (used by ``BGPPlan.describe``)."""
        parts = [self.operator, f"est={self.estimate:.1f}"]
        if self.join_variables:
            joined = ", ".join(f"?{v.name}" for v in self.join_variables)
            parts.append(f"on [{joined}]")
        pattern = " ".join(
            f"?{t.name}" if isinstance(t, Variable) else str(t)
            for t in (self.pattern.subject, self.pattern.predicate, self.pattern.object)
        )
        return f"{' '.join(parts)}  {{ {pattern} }}"


@dataclass(frozen=True)
class BGPPlan:
    """An ordered sequence of :class:`PlanStep` for one basic graph pattern."""

    steps: Tuple[PlanStep, ...]

    def operators(self) -> List[str]:
        """The operator labels in execution order."""
        return [step.operator for step in self.steps]

    def patterns(self) -> List[TriplePatternNode]:
        """The triple patterns in execution order."""
        return [step.pattern for step in self.steps]

    def describe(self) -> str:
        """A multi-line rendering of the plan for logs and debugging."""
        return "\n".join(step.describe() for step in self.steps)


def _constant_count(pattern: TriplePatternNode) -> int:
    return sum(
        0 if isinstance(term, Variable) else 1
        for term in (pattern.subject, pattern.predicate, pattern.object)
    )


def plan_bgp(
    store: TripleStore,
    patterns: Sequence[TriplePatternNode],
    bound: Iterable[Variable] = (),
    single_input: bool = True,
    estimator: Optional[CardinalityEstimator] = None,
) -> BGPPlan:
    """Plan a basic graph pattern: order patterns and pick join operators.

    Parameters
    ----------
    patterns:
        The group's triple patterns in syntactic order.
    bound:
        Variables already bound before the BGP runs (initial binding of a
        nested group / EXISTS, or VALUES rows).
    single_input:
        Whether the BGP starts from exactly one input solution.  Only then
        can the first scan establish a global sort order that merge joins
        may rely on (VALUES rows fan the input out, so blocks of sorted
        output would interleave).
    """
    estimator = estimator if estimator is not None else CardinalityEstimator(store)
    bound_now: Set[Variable] = set(bound)
    remaining: List[Tuple[int, TriplePatternNode]] = list(enumerate(patterns))
    steps: List[PlanStep] = []
    cardinality = 1.0
    sorted_by: Optional[Variable] = None

    while remaining:
        best = None
        best_key = None
        for index, pattern in remaining:
            per_solution = estimator.pattern_estimate(pattern, bound_now)
            connected = not steps or bool(set(pattern.variables()) & bound_now)
            key = (0 if connected else 1, cardinality * per_solution, index)
            if best_key is None or key < best_key:
                best_key = key
                best = (index, pattern, per_solution)
        index, pattern, per_solution = best  # type: ignore[misc]
        remaining.remove((index, pattern))

        pattern_vars = set(pattern.variables())
        shared = tuple(sorted(pattern_vars & bound_now, key=lambda v: v.name))
        two_consts = _constant_count(pattern) == 2
        merge_variable: Optional[Variable] = None
        build_estimate = estimator.pattern_estimate(pattern, set())

        if not steps:
            operator = SCAN
            if single_input and two_consts and len(pattern_vars) == 1 and not shared:
                # The scan streams the pattern's sorted third-level run, so
                # the whole solution stream is nondecreasing on this var.
                sorted_by = next(iter(pattern_vars))
        elif sorted_by is not None and two_consts and pattern_vars == {sorted_by}:
            operator = MERGE
            merge_variable = sorted_by
        elif shared:
            operator = HASH if build_estimate < cardinality else NESTED
        else:
            # Disconnected pattern: materialise it once and cross, instead
            # of rescanning the index for every streamed solution.
            operator = HASH

        cardinality = cardinality * per_solution
        steps.append(
            PlanStep(
                pattern=pattern,
                operator=operator,
                estimate=cardinality,
                join_variables=shared,
                merge_variable=merge_variable,
                build_estimate=build_estimate,
            )
        )
        bound_now |= pattern_vars

    return BGPPlan(tuple(steps))
