"""Expression evaluation for FILTERs and projections.

SPARQL expression evaluation has the notion of an *error* value (type
errors, unbound variables); an error in a FILTER makes the solution fail
rather than aborting the whole query.  We model errors with the
:class:`EvalError` sentinel exception, caught by the evaluator.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Union

from repro.errors import SparqlError
from repro.rdf.terms import (
    IRI,
    BlankNode,
    Literal,
    Term,
    XSD_BOOLEAN,
    XSD_DOUBLE,
    XSD_INTEGER,
    XSD_STRING,
)
from repro.sparql.ast import (
    BinaryExpression,
    CountExpression,
    ExistsExpression,
    Expression,
    FunctionCall,
    InExpression,
    TermExpression,
    UnaryExpression,
    VariableExpression,
)
from repro.sparql.bindings import Binding


class EvalError(Exception):
    """SPARQL expression evaluation error (not a Python bug).

    A raised :class:`EvalError` means "this expression has no value for
    this solution"; FILTERs treat it as ``False``.
    """


#: Values produced by expression evaluation: either an RDF term or a plain
#: Python value (bool / int / float / str) for intermediate results.
Value = Union[Term, bool, int, float, str]


def term_to_value(term: Term) -> Value:
    """Convert an RDF term to the native value used for arithmetic/comparison."""
    if isinstance(term, Literal):
        if term.datatype == XSD_BOOLEAN:
            return term.lexical.strip().lower() in ("true", "1")
        if term.is_numeric():
            try:
                value = float(term.lexical)
            except ValueError as exc:
                raise EvalError(f"Invalid numeric literal: {term.lexical!r}") from exc
            return int(value) if value.is_integer() and term.datatype == XSD_INTEGER else value
        return term.lexical
    return term


def effective_boolean_value(value: Value) -> bool:
    """SPARQL effective boolean value (EBV) of ``value``."""
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    if isinstance(value, str):
        return len(value) > 0
    if isinstance(value, Literal):
        return effective_boolean_value(term_to_value(value))
    raise EvalError(f"No effective boolean value for {value!r}")


def _string_value(value: Value) -> str:
    if isinstance(value, Literal):
        return value.lexical
    if isinstance(value, IRI):
        return value.value
    if isinstance(value, BlankNode):
        raise EvalError("STR of a blank node is undefined")
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _numeric_value(value: Value) -> Union[int, float]:
    if isinstance(value, bool):
        raise EvalError("Boolean used where a number is required")
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, Literal):
        inner = term_to_value(value)
        if isinstance(inner, (int, float)) and not isinstance(inner, bool):
            return inner
    raise EvalError(f"Not a numeric value: {value!r}")


def _compare(left: Value, right: Value, operator: str) -> bool:
    """SPARQL value comparison with type promotion."""
    # Term identity comparisons for IRIs / blank nodes.
    if isinstance(left, (IRI, BlankNode)) or isinstance(right, (IRI, BlankNode)):
        if operator == "=":
            return left == right
        if operator == "!=":
            return left != right
        raise EvalError("Ordering comparison on IRIs / blank nodes")

    left_value = term_to_value(left) if isinstance(left, Literal) else left
    right_value = term_to_value(right) if isinstance(right, Literal) else right

    numeric = isinstance(left_value, (int, float)) and isinstance(right_value, (int, float)) and (
        not isinstance(left_value, bool) and not isinstance(right_value, bool)
    )
    if not numeric:
        left_value = _string_value(left) if isinstance(left, Literal) else str(left_value)
        right_value = _string_value(right) if isinstance(right, Literal) else str(right_value)

    if operator == "=":
        return left_value == right_value
    if operator == "!=":
        return left_value != right_value
    if operator == "<":
        return left_value < right_value
    if operator == ">":
        return left_value > right_value
    if operator == "<=":
        return left_value <= right_value
    if operator == ">=":
        return left_value >= right_value
    raise EvalError(f"Unknown comparison operator {operator!r}")


class ExpressionEvaluator:
    """Evaluates :class:`~repro.sparql.ast.Expression` trees over bindings.

    Parameters
    ----------
    exists_callback:
        Callable used to evaluate ``EXISTS { ... }`` sub-patterns; injected
        by the query evaluator to avoid a circular import.
    """

    def __init__(self, exists_callback: Callable[[object, Binding], bool] | None = None):
        self._exists_callback = exists_callback
        self._builtins: Dict[str, Callable[[List[Value]], Value]] = {
            "BOUND": self._fn_bound_placeholder,
            "STR": lambda args: _string_value(args[0]),
            "STRLEN": lambda args: len(_string_value(args[0])),
            "LCASE": lambda args: _string_value(args[0]).lower(),
            "UCASE": lambda args: _string_value(args[0]).upper(),
            "ABS": lambda args: abs(_numeric_value(args[0])),
            "CONTAINS": lambda args: _string_value(args[1]) in _string_value(args[0]),
            "STRSTARTS": lambda args: _string_value(args[0]).startswith(_string_value(args[1])),
            "STRENDS": lambda args: _string_value(args[0]).endswith(_string_value(args[1])),
            "ISIRI": lambda args: isinstance(args[0], IRI),
            "ISURI": lambda args: isinstance(args[0], IRI),
            "ISBLANK": lambda args: isinstance(args[0], BlankNode),
            "ISLITERAL": lambda args: isinstance(args[0], Literal),
            "ISNUMERIC": lambda args: isinstance(args[0], Literal) and args[0].is_numeric(),
            "SAMETERM": lambda args: args[0] == args[1],
            "LANG": self._fn_lang,
            "LANGMATCHES": self._fn_langmatches,
            "DATATYPE": self._fn_datatype,
            "REGEX": self._fn_regex,
            "IF": self._fn_if,
            "COALESCE": self._fn_coalesce,
        }

    # -------------------------------------------------------------- #
    def evaluate(self, expression: Expression, binding: Binding) -> Value:
        """Evaluate ``expression`` under ``binding``.

        Raises
        ------
        EvalError
            When the expression has no value (unbound variable, type error).
        """
        if isinstance(expression, VariableExpression):
            term = binding.get_term(expression.variable)
            if term is None:
                raise EvalError(f"Unbound variable ?{expression.variable.name}")
            return term
        if isinstance(expression, TermExpression):
            return expression.term
        if isinstance(expression, UnaryExpression):
            return self._evaluate_unary(expression, binding)
        if isinstance(expression, BinaryExpression):
            return self._evaluate_binary(expression, binding)
        if isinstance(expression, FunctionCall):
            return self._evaluate_function(expression, binding)
        if isinstance(expression, InExpression):
            return self._evaluate_in(expression, binding)
        if isinstance(expression, ExistsExpression):
            return self._evaluate_exists(expression, binding)
        if isinstance(expression, CountExpression):
            raise EvalError("COUNT is only valid in the SELECT clause")
        raise SparqlError(f"Unknown expression node: {expression!r}")

    def evaluate_boolean(self, expression: Expression, binding: Binding) -> bool:
        """Evaluate an expression to its effective boolean value.

        FILTER semantics: evaluation errors yield ``False``.
        """
        try:
            return effective_boolean_value(self.evaluate(expression, binding))
        except EvalError:
            return False

    # -------------------------------------------------------------- #
    def _evaluate_unary(self, expression: UnaryExpression, binding: Binding) -> Value:
        if expression.operator == "!":
            return not effective_boolean_value(self.evaluate(expression.operand, binding))
        value = _numeric_value(self.evaluate(expression.operand, binding))
        return -value if expression.operator == "-" else +value

    def _evaluate_binary(self, expression: BinaryExpression, binding: Binding) -> Value:
        operator = expression.operator
        if operator == "&&":
            return self.evaluate_boolean(expression.left, binding) and self.evaluate_boolean(
                expression.right, binding
            )
        if operator == "||":
            return self.evaluate_boolean(expression.left, binding) or self.evaluate_boolean(
                expression.right, binding
            )
        left = self.evaluate(expression.left, binding)
        right = self.evaluate(expression.right, binding)
        if operator in ("=", "!=", "<", ">", "<=", ">="):
            return _compare(left, right, operator)
        left_number = _numeric_value(left)
        right_number = _numeric_value(right)
        if operator == "+":
            return left_number + right_number
        if operator == "-":
            return left_number - right_number
        if operator == "*":
            return left_number * right_number
        if operator == "/":
            if right_number == 0:
                raise EvalError("Division by zero")
            return left_number / right_number
        raise SparqlError(f"Unknown binary operator {operator!r}")

    def _evaluate_function(self, call: FunctionCall, binding: Binding) -> Value:
        name = call.name.upper()
        if name == "BOUND":
            return self._fn_bound(call, binding)
        if name == "COALESCE":
            return self._fn_coalesce_lazy(call, binding)
        if name == "IF":
            return self._fn_if_lazy(call, binding)
        handler = self._builtins.get(name)
        if handler is None:
            raise SparqlError(f"Unsupported builtin function {name}")
        arguments = [self.evaluate(arg, binding) for arg in call.arguments]
        return handler(arguments)

    def _evaluate_in(self, expression: InExpression, binding: Binding) -> bool:
        value = self.evaluate(expression.operand, binding)
        found = False
        for choice in expression.choices:
            try:
                if _compare(value, self.evaluate(choice, binding), "="):
                    found = True
                    break
            except EvalError:
                continue
        return (not found) if expression.negated else found

    def _evaluate_exists(self, expression: ExistsExpression, binding: Binding) -> bool:
        if self._exists_callback is None:
            raise SparqlError("EXISTS is not available in this context")
        result = self._exists_callback(expression.group, binding)
        return (not result) if expression.negated else result

    # -------------------------------------------------------------- #
    # Builtins that need the raw AST or binding
    # -------------------------------------------------------------- #
    def _fn_bound(self, call: FunctionCall, binding: Binding) -> bool:
        if len(call.arguments) != 1 or not isinstance(call.arguments[0], VariableExpression):
            raise EvalError("BOUND requires a single variable argument")
        variable = call.arguments[0].variable
        return binding.get_term(variable) is not None

    def _fn_bound_placeholder(self, args: List[Value]) -> Value:  # pragma: no cover
        raise EvalError("BOUND must be evaluated lazily")

    def _fn_coalesce_lazy(self, call: FunctionCall, binding: Binding) -> Value:
        for argument in call.arguments:
            try:
                return self.evaluate(argument, binding)
            except EvalError:
                continue
        raise EvalError("COALESCE: all arguments errored")

    def _fn_coalesce(self, args: List[Value]) -> Value:  # pragma: no cover
        raise EvalError("COALESCE must be evaluated lazily")

    def _fn_if_lazy(self, call: FunctionCall, binding: Binding) -> Value:
        if len(call.arguments) != 3:
            raise EvalError("IF requires exactly three arguments")
        condition = effective_boolean_value(self.evaluate(call.arguments[0], binding))
        chosen = call.arguments[1] if condition else call.arguments[2]
        return self.evaluate(chosen, binding)

    def _fn_if(self, args: List[Value]) -> Value:  # pragma: no cover
        raise EvalError("IF must be evaluated lazily")

    @staticmethod
    def _fn_lang(args: List[Value]) -> str:
        value = args[0]
        if isinstance(value, Literal):
            return value.language or ""
        raise EvalError("LANG requires a literal")

    @staticmethod
    def _fn_langmatches(args: List[Value]) -> bool:
        tag = _string_value(args[0]).lower()
        pattern = _string_value(args[1]).lower()
        if pattern == "*":
            return bool(tag)
        return tag == pattern or tag.startswith(pattern + "-")

    @staticmethod
    def _fn_datatype(args: List[Value]) -> IRI:
        value = args[0]
        if isinstance(value, Literal):
            if value.language:
                return IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#langString")
            return IRI(value.datatype or XSD_STRING)
        raise EvalError("DATATYPE requires a literal")

    @staticmethod
    def _fn_regex(args: List[Value]) -> bool:
        if len(args) < 2:
            raise EvalError("REGEX requires at least two arguments")
        text = _string_value(args[0])
        pattern = _string_value(args[1])
        flags = 0
        if len(args) >= 3:
            flag_text = _string_value(args[2])
            if "i" in flag_text:
                flags |= re.IGNORECASE
            if "s" in flag_text:
                flags |= re.DOTALL
            if "m" in flag_text:
                flags |= re.MULTILINE
        try:
            return re.search(pattern, text, flags) is not None
        except re.error as exc:
            raise EvalError(f"Invalid regular expression: {exc}") from exc


def value_to_term(value: Value) -> Term:
    """Convert a native value back to an RDF term (for projection aliases)."""
    if isinstance(value, (IRI, Literal, BlankNode)):
        return value
    if isinstance(value, bool):
        return Literal("true" if value else "false", datatype=XSD_BOOLEAN)
    if isinstance(value, int):
        return Literal(str(value), datatype=XSD_INTEGER)
    if isinstance(value, float):
        return Literal(repr(value), datatype=XSD_DOUBLE)
    return Literal(str(value))
