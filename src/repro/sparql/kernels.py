"""Vectorized block join kernels over the store's CSR ID columns.

The scalar evaluator (:mod:`repro.sparql.evaluate`) streams one
:class:`~repro.sparql.bindings.IdBinding` at a time through per-row index
probes.  At paper scale (~14k triples) that is fine; at the 1M–10M-triple
worlds the scale presets build, the per-row Python dominates end-to-end
latency.  This module replaces the hot inner loops with numpy block
operations over the very same CSR columns the indexes already keep:

* **Scan** — a pattern's whole match set materialises as parallel int64
  columns straight off the index (``sorted_run_ids`` for two-constant
  patterns, :meth:`~repro.store.index.FrozenIdIndex.key_columns` for
  one-constant, the full five-column CSR for zero-constant), then streams
  out in bounded blocks.
* **Merge** — the sort-merge semi-join becomes one ``np.searchsorted``
  probe of the block's join column against the pattern's sorted run.
* **Probe** — hash joins on a single shared variable (and ``nested``
  steps cheap enough to build) become a sorted-build + ``searchsorted``
  range expansion: the classic ``repeat``/``cumsum`` gather that emits
  every (left row, build row) match pair without a Python loop.
* **Cartesian** — disconnected patterns cross in ``repeat``/``tile``
  chunks.

Everything stays *streaming at block granularity*: blocks are produced
lazily, so ASK stops after the first emitted row and LIMIT after the
first full page, paying at most one block (:data:`BLOCK_ROWS` rows) of
slack.  Kernels preserve the left stream's row order, so a scalar
``merge`` operator running after the vectorized prefix still sees the
nondecreasing stream the planner promised it.  Results are multiset-
identical to the scalar operators — the differential harnesses pin this
across warm, cold-mmap and sharded stores.

The kernels are generic over index forms: warm ``array('q')`` columns,
frozen snapshot ``memoryview`` windows (mmap included) and sharded
stores (per-shard columns concatenate; subject-range partitioning keeps
concatenated subject runs sorted).  When numpy is missing — or
``REPRO_NO_NUMPY`` is set — :func:`kernels_available` is ``False`` and
the evaluator keeps its pure-Python operators.
"""

from __future__ import annotations

from array import array
from typing import Iterator, List, Optional, Tuple

from repro.obs import config as _config
from repro.sparql.ast import TriplePatternNode
from repro.sparql.bindings import IdBinding, Variable
from repro.sparql.plan import HASH, MERGE, NESTED, SCAN, BGPPlan, PlanStep
from repro.store.index import ColumnView

try:  # numpy is an optional accelerator throughout the library
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

#: Rows per emitted block: large enough to amortise per-block Python,
#: small enough that ASK / LIMIT early exits waste little work.
BLOCK_ROWS = 4096

#: A ``nested`` step is upgraded to a block probe-join only while the
#: pattern's standalone build estimate stays within this factor of the
#: incoming stream's estimated cardinality (plus a flat allowance) —
#: building a huge table to probe it with a handful of rows would trade
#: the scalar path's selectivity away.
NESTED_BUILD_FACTOR = 16.0
NESTED_BUILD_MIN = 4096.0


def kernels_available() -> bool:
    """Whether the block kernels can run (numpy importable and not
    disabled via the ``REPRO_NO_NUMPY`` environment variable)."""
    return _np is not None and not _config.numpy_disabled()


# --------------------------------------------------------------------- #
# Column adaptation
# --------------------------------------------------------------------- #
def _as_array(run):
    """``run`` as an int64 ndarray, zero-copy for buffer-backed forms.

    Accepts every third-level run container the store hands out: the
    writable index's ``SortedList``, the frozen index's :class:`ColumnView`
    / raw ``memoryview`` (bytes- or mmap-backed), ``array('q')`` columns,
    and plain sequences.
    """
    if isinstance(run, ColumnView):
        return _np.frombuffer(run.mv, dtype=_np.int64)
    if isinstance(run, (memoryview, array)):
        return _np.frombuffer(run, dtype=_np.int64)
    if isinstance(run, _np.ndarray):
        return run
    return _np.fromiter(run, dtype=_np.int64, count=len(run))


def _empty_cols(count: int) -> List:
    return [_np.empty(0, dtype=_np.int64) for _ in range(count)]


# --------------------------------------------------------------------- #
# Pattern tables: a pattern's match set as parallel ID columns
# --------------------------------------------------------------------- #
def _pattern_columns(store, consts) -> Tuple[int, List]:
    """The match set of a resolved pattern as ``(row_count, columns)``.

    ``consts`` is the ``[s, p, o]`` list from ``_resolve_constants``
    (``None`` per variable position); the returned columns align with the
    variable positions in s, p, o order.  Sharded stores concatenate
    per-shard columns — subjects partition by ID range, so concatenated
    subject runs remain sorted and fully-constant probes hit exactly one
    shard.
    """
    shards = getattr(store, "shards", None)
    if shards is not None:
        var_count = sum(1 for c in consts if c is None)
        total = 0
        parts: Optional[List[List]] = None
        for shard in shards:
            n, cols = _pattern_columns(shard, consts)
            if not n:
                continue
            total += n
            if parts is None:
                parts = [[] for _ in cols]
            for bucket, col in zip(parts, cols):
                bucket.append(col)
        if not total:
            return 0, _empty_cols(var_count)
        assert parts is not None
        return total, [
            part[0] if len(part) == 1 else _np.concatenate(part) for part in parts
        ]

    s, p, o = consts
    bound = sum(1 for c in consts if c is not None)
    if bound == 3:
        return (1 if store.contains_ids(s, p, o) else 0), []
    if bound == 2:
        run = _as_array(store.sorted_run_ids(s, p, o))
        return run.size, [run]
    if bound == 1:
        # One constant: one key of the matching index, expanded from its
        # per-key CSR runs.  seconds/thirds map back to pattern positions
        # according to the index permutation.
        if s is not None:
            seconds, bounds, thirds = store._spo.key_columns(s)
            second_col, third_col = _expand_key(seconds, bounds, thirds)
            return third_col.size, [second_col, third_col]  # [p, o]
        if p is not None:
            seconds, bounds, thirds = store._pos.key_columns(p)
            second_col, third_col = _expand_key(seconds, bounds, thirds)
            return third_col.size, [third_col, second_col]  # [s, o]
        seconds, bounds, thirds = store._osp.key_columns(o)
        second_col, third_col = _expand_key(seconds, bounds, thirds)
        return third_col.size, [second_col, third_col]  # [s, p]
    # Zero constants: the full SPO CSR expands to three columns.
    index = store._spo
    if hasattr(index, "columns"):
        keys, key_groups, seconds, group_starts, thirds = index.columns()
    else:
        keys, key_groups, seconds, group_starts, thirds = index.csr_columns()
    keys = _as_array(keys)
    key_groups = _as_array(key_groups)
    seconds = _as_array(seconds)
    group_starts = _as_array(group_starts)
    thirds = _as_array(thirds)
    if not thirds.size:
        return 0, _empty_cols(3)
    per_key = group_starts[key_groups[1:]] - group_starts[key_groups[:-1]]
    s_col = _np.repeat(keys, per_key)
    p_col = _np.repeat(seconds, _np.diff(group_starts))
    return thirds.size, [s_col, p_col, thirds]


def _expand_key(seconds, bounds, thirds):
    """Expand one key's ``key_columns`` runs to aligned (second, third)
    columns.  ``bounds`` may carry absolute snapshot offsets (the frozen
    index's zero-copy windows); only the deltas matter here."""
    seconds = _as_array(seconds)
    bounds = _as_array(bounds)
    thirds = _as_array(thirds)
    if not thirds.size:
        return _np.empty(0, dtype=_np.int64), thirds
    return _np.repeat(seconds, _np.diff(bounds)), thirds


def pattern_columns(store, consts) -> Tuple[int, List]:
    """Public wrapper over :func:`_pattern_columns` for other modules.

    The cross-shard join shipper (:mod:`repro.sparql.distjoin`) uses it to
    materialise a broadcast side's ID columns in one vectorized pass.
    Callers must check :func:`kernels_available` first.
    """
    return _pattern_columns(store, consts)


def _pattern_run(store, consts):
    """A two-constant pattern's sorted third-level run as one array."""
    shards = getattr(store, "shards", None)
    if shards is None:
        return _as_array(store.sorted_run_ids(*consts))
    parts = [_as_array(shard.sorted_run_ids(*consts)) for shard in shards]
    parts = [part for part in parts if part.size]
    if not parts:
        return _np.empty(0, dtype=_np.int64)
    if len(parts) == 1:
        return parts[0]
    # Subject-range sharding keeps subject runs globally sorted across the
    # shard order; patterns with a constant subject live in one shard.
    return _np.concatenate(parts)


def _pattern_variables(pattern: TriplePatternNode) -> Tuple[Variable, ...]:
    """The pattern's variables in s, p, o position order (with repeats)."""
    return tuple(
        term
        for term in (pattern.subject, pattern.predicate, pattern.object)
        if isinstance(term, Variable)
    )


# --------------------------------------------------------------------- #
# Block operators
# --------------------------------------------------------------------- #
# A block is ``(vars, cols, n)``: ``cols[i]`` is the int64 column of
# ``vars[i]`` and every column has ``n`` rows.  ``vars`` may be empty
# (fully-constant patterns) with ``n`` still carrying the multiplicity.


def _scan_blocks(store, pattern, consts) -> Iterator[Tuple]:
    variables = _pattern_variables(pattern)
    n, cols = _pattern_columns(store, consts)
    if not n:
        return
    for start in range(0, n, BLOCK_ROWS):
        stop = min(n, start + BLOCK_ROWS)
        yield variables, [col[start:stop] for col in cols], stop - start


def _merge_blocks(blocks, run, variable) -> Iterator[Tuple]:
    """Semi-join each block against a sorted run on ``variable``."""
    if not run.size:
        return
    for variables, cols, n in blocks:
        probe = cols[variables.index(variable)]
        pos = _np.searchsorted(run, probe)
        hits = run[_np.minimum(pos, run.size - 1)] == probe
        kept = int(_np.count_nonzero(hits))
        if not kept:
            continue
        if kept == n:
            yield variables, cols, n
        else:
            yield variables, [col[hits] for col in cols], kept


def _probe_blocks(blocks, build_vars, build_cols, join_variable) -> Iterator[Tuple]:
    """Join each block against a built pattern table on one shared variable.

    The build side is sorted by its join column once; every block then
    probes with two ``searchsorted`` calls and expands the matching ranges
    with the ``repeat``/``cumsum`` gather.  Left row order is preserved.
    """
    slot = build_vars.index(join_variable)
    order = _np.argsort(build_cols[slot], kind="stable")
    sorted_keys = build_cols[slot][order]
    new_vars = tuple(v for i, v in enumerate(build_vars) if i != slot)
    new_cols = [build_cols[i][order] for i, v in enumerate(build_vars) if i != slot]
    for variables, cols, n in blocks:
        probe = cols[variables.index(join_variable)]
        left = _np.searchsorted(sorted_keys, probe, side="left")
        counts = _np.searchsorted(sorted_keys, probe, side="right") - left
        total = int(counts.sum())
        if not total:
            continue
        rows = _np.repeat(_np.arange(n), counts)
        offsets = _np.concatenate(([0], _np.cumsum(counts)[:-1]))
        within = _np.arange(total) - offsets[rows]
        positions = left[rows] + within
        out = [col[rows] for col in cols]
        out.extend(col[positions] for col in new_cols)
        yield variables + new_vars, out, total


def _cross_blocks(blocks, build_vars, build_cols, build_n) -> Iterator[Tuple]:
    """Cartesian-product each block with a built pattern table, chunked so
    no emitted block exceeds ~:data:`BLOCK_ROWS` rows."""
    if not build_n:
        return
    left_chunk = max(1, BLOCK_ROWS // build_n)
    for variables, cols, n in blocks:
        for start in range(0, n, left_chunk):
            stop = min(n, start + left_chunk)
            span = stop - start
            rows = _np.repeat(_np.arange(start, stop), build_n)
            positions = _np.tile(_np.arange(build_n), span)
            out = [col[rows] for col in cols]
            out.extend(col[positions] for col in build_cols)
            yield variables + build_vars, out, span * build_n


def _emit(blocks) -> Iterator[IdBinding]:
    """Stream blocks out as :class:`IdBinding` rows (plain-int values)."""
    for variables, cols, n in blocks:
        if not variables:
            for _ in range(n):
                yield IdBinding.EMPTY
            continue
        columns = [col.tolist() for col in cols]
        for values in zip(*columns):
            yield IdBinding(dict(zip(variables, values)))


# --------------------------------------------------------------------- #
# Plan execution
# --------------------------------------------------------------------- #
def _vectorizable_prefix(steps: Tuple[PlanStep, ...]) -> int:
    """How many leading plan steps the block kernels can run.

    A step qualifies structurally: no repeated variables inside the
    pattern (the columns carry no within-row equality check), and the
    operator must map onto a kernel — ``merge`` always does, ``hash``
    needs at most one join variable, ``nested`` exactly one plus a build
    side the estimates call affordable.  Suffix steps run through the
    scalar operators unchanged.
    """
    prefix = 0
    for index, step in enumerate(steps):
        variables = _pattern_variables(step.pattern)
        if len(set(variables)) != len(variables):
            break
        if index == 0:
            if step.operator != SCAN:
                break
            prefix = 1
            continue
        if step.operator == MERGE:
            prefix = index + 1
            continue
        if step.operator == HASH:
            if len(step.join_variables) > 1:
                break
            prefix = index + 1
            continue
        if step.operator == NESTED:
            if len(step.join_variables) != 1:
                break
            allowance = (
                NESTED_BUILD_FACTOR * steps[index - 1].estimate + NESTED_BUILD_MIN
            )
            if step.build_estimate > allowance:
                break
            prefix = index + 1
            continue
        break
    return prefix


def execute(evaluator, plan: BGPPlan) -> Optional[Iterator[IdBinding]]:
    """Run ``plan`` with block kernels where possible.

    Returns a lazy :class:`IdBinding` iterator covering the *whole* plan —
    the vectorized prefix feeds any remaining steps through the
    evaluator's scalar operators — or ``None`` when not even the first
    scan vectorizes (the caller keeps its scalar pipeline).  Only called
    for single-input groups (empty initial binding, no VALUES): kernels
    compute complete solutions from the store alone.
    """
    steps = plan.steps
    prefix = _vectorizable_prefix(steps)
    if not prefix:
        return None
    return _execute(evaluator, steps, prefix)


def _execute(evaluator, steps, prefix) -> Iterator[IdBinding]:
    store = evaluator.store
    consts = evaluator._resolve_constants(steps[0].pattern)
    if consts is None:
        return  # a constant the dictionary never saw: provably empty
    blocks = _scan_blocks(store, steps[0].pattern, consts)
    for step in steps[1:prefix]:
        consts = evaluator._resolve_constants(step.pattern)
        if consts is None:
            return
        if step.operator == MERGE:
            blocks = _merge_blocks(blocks, _pattern_run(store, consts), step.merge_variable)
        elif step.join_variables:
            build_n, build_cols = _pattern_columns(store, consts)
            if not build_n:
                return
            blocks = _probe_blocks(
                blocks,
                _pattern_variables(step.pattern),
                build_cols,
                step.join_variables[0],
            )
        else:
            build_n, build_cols = _pattern_columns(store, consts)
            blocks = _cross_blocks(
                blocks, _pattern_variables(step.pattern), build_cols, build_n
            )
    solutions: Iterator[IdBinding] = _emit(blocks)
    for step in steps[prefix:]:
        if step.operator == MERGE:
            solutions = evaluator._merge_join(
                solutions, step.pattern, step.merge_variable
            )
        elif step.operator == HASH:
            solutions = evaluator._hash_join(
                solutions, step.pattern, step.join_variables
            )
        else:
            solutions = evaluator._join_pattern(solutions, step.pattern)
    yield from solutions
