"""Fold plans: worker-side partial aggregation for scattered COUNT queries.

A *fold plan* (:class:`FoldSpec`) describes how one shard can reduce its
solution stream for a COUNT-only aggregate query into a small partial
result that the parent merges exactly:

* ``COUNT(*)`` and ``COUNT(?v)`` fold to per-group integers — shards hold
  disjoint solutions (subject-range partitioning), so the parent simply
  sums the partials.
* ``COUNT(DISTINCT ?v)`` where ``?v`` is the partition variable (the
  shared subject / ship anchor) also folds to an integer: every subject ID
  lives on exactly one shard, so the per-shard distinct sets are disjoint
  and their sizes sum.
* ``COUNT(DISTINCT ?v)`` over any other variable ships the per-shard
  distinct ID *set* and the parent unions them (the hybrid merge) — still
  O(distinct values) transfer instead of O(solutions).

The fold must be observationally identical to running
:meth:`QueryEvaluator._evaluate_aggregate` over the concatenated shard
streams; :func:`build_fold_spec` therefore refuses (returns ``None``) any
projection shape whose parent-side semantics it cannot mirror exactly,
and the caller falls back to streaming rows and folding in the parent.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.sparql.ast import CountExpression, SelectQuery
from repro.sparql.bindings import Binding, IdBinding, Variable
from repro.sparql.functions import value_to_term
from repro.sparql.results import ResultSet

#: One merged/partial accumulator entry: ``{group-key: [counter-per-item]}``
#: where a counter is an ``int`` (summable) or a ``set`` (unionable).
Partial = Dict[Tuple, List]

#: How many solutions a worker folds between cancellation checks.
FOLD_CHECK_INTERVAL = 1024


class FoldItem:
    """One COUNT item of a fold plan.

    ``variable`` is ``None`` for ``COUNT(*)``.  ``local`` marks a DISTINCT
    item whose variable is the partition variable: its per-shard set can be
    collapsed to its size before leaving the worker.
    """

    __slots__ = ("variable", "distinct", "local")

    def __init__(self, variable: Optional[Variable], distinct: bool, local: bool):
        self.variable = variable
        self.distinct = distinct
        self.local = local

    def __getstate__(self):
        return (self.variable, self.distinct, self.local)

    def __setstate__(self, state):
        self.variable, self.distinct, self.local = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FoldItem({self.variable!r}, distinct={self.distinct}, local={self.local})"


class FoldSpec:
    """A complete fold plan: grouping variables plus one entry per COUNT item.

    Instances are pickled into worker eval tasks; they carry only
    :class:`Variable` references and flags, never store state.
    """

    __slots__ = ("group_by", "items")

    def __init__(self, group_by: Tuple[Variable, ...], items: Tuple[FoldItem, ...]):
        self.group_by = group_by
        self.items = items

    def __getstate__(self):
        return (self.group_by, self.items)

    def __setstate__(self, state):
        self.group_by, self.items = state

    def describe(self) -> str:
        parts = []
        for item in self.items:
            if item.variable is None:
                parts.append("count(*)")
            elif not item.distinct:
                parts.append(f"count(?{item.variable.name})")
            elif item.local:
                parts.append(f"count(distinct ?{item.variable.name})/sum")
            else:
                parts.append(f"count(distinct ?{item.variable.name})/union")
        grouped = ",".join(f"?{v.name}" for v in self.group_by) or "-"
        return f"fold[group={grouped} items={' '.join(parts)}]"


def build_fold_spec(
    query: SelectQuery, partition_variable: Variable
) -> Optional[FoldSpec]:
    """The fold plan for ``query``, or ``None`` when it cannot be pushed down.

    Only projections made of plain variables and ``COUNT`` expressions are
    supported — exactly the shapes :meth:`_evaluate_aggregate` folds — so a
    ``None`` return means "stream rows and fold in the parent", never a
    semantic change.  ``partition_variable`` is the variable whose values
    are disjoint across shards (the scatter subject or ship anchor), which
    decides whether a DISTINCT set may collapse to its size worker-side.
    """
    items: List[FoldItem] = []
    plain: List[Variable] = []
    for item in query.projection:
        expression = item.expression
        if isinstance(expression, CountExpression):
            items.append(
                FoldItem(
                    expression.variable,
                    bool(expression.distinct and not expression.counts_all),
                    bool(
                        expression.distinct
                        and expression.variable == partition_variable
                    ),
                )
            )
        elif expression is None and item.variable is not None:
            plain.append(item.output_variable)
        else:
            return None  # non-COUNT expression: parent-side fold only
    if not items:
        return None
    group_by = tuple(query.group_by) if query.group_by else tuple(plain)
    return FoldSpec(group_by, tuple(items))


def fold_local(
    solutions: Iterable[IdBinding],
    spec: FoldSpec,
    should_stop=None,
) -> Optional[Partial]:
    """Fold one shard's solution stream into an encoded partial.

    Mirrors the accumulate loop of ``_evaluate_aggregate``; DISTINCT sets
    for the partition variable leave as their size (disjointness makes the
    sizes summable).  ``should_stop`` is polled every
    :data:`FOLD_CHECK_INTERVAL` solutions so cancelled worker tasks abort
    promptly; a stop returns ``None``.
    """
    group_by = spec.group_by
    items = spec.items
    groups: Partial = {}
    pending = FOLD_CHECK_INTERVAL
    for solution in solutions:
        key = tuple(solution.get(v) for v in group_by)
        accumulators = groups.get(key)
        if accumulators is None:
            accumulators = groups[key] = [
                set() if item.distinct else 0 for item in items
            ]
        for index, item in enumerate(items):
            variable = item.variable
            if variable is None:
                accumulators[index] += 1
                continue
            value = solution.get(variable)
            if value is None:
                continue
            if item.distinct:
                accumulators[index].add(value)
            else:
                accumulators[index] += 1
        pending -= 1
        if pending <= 0:
            pending = FOLD_CHECK_INTERVAL
            if should_stop is not None and should_stop():
                return None
    if any(item.local for item in items):
        for accumulators in groups.values():
            for index, item in enumerate(items):
                if item.local:
                    accumulators[index] = len(accumulators[index])
    return groups


def merge_partial(spec: FoldSpec, merged: Partial, partial: Partial) -> None:
    """Merge one shard's partial into ``merged`` (ints sum, sets union)."""
    items = spec.items
    for key, accumulators in partial.items():
        target = merged.get(key)
        if target is None:
            merged[key] = [
                set(acc) if isinstance(acc, set) else acc for acc in accumulators
            ]
            continue
        for index, item in enumerate(items):
            if item.distinct and not item.local:
                target[index] |= accumulators[index]
            else:
                target[index] += accumulators[index]


def finalize(
    query: SelectQuery, spec: FoldSpec, merged: Partial, dictionary
) -> ResultSet:
    """Decode the merged partials into the query's result set.

    Identical decode/row shape to ``_evaluate_aggregate``: grouping values
    decode from IDs, counters become integer literals, an ungrouped query
    over an empty input still yields its single zero row, and
    OFFSET/LIMIT slice the final rows.
    """
    if not spec.group_by and not merged:
        merged[()] = [set() if item.distinct else 0 for item in spec.items]

    variables = [item.output_variable for item in query.projection]
    decode = dictionary.decode
    rows: List[Binding] = []
    for key, accumulators in merged.items():
        data = {}
        for variable, value in zip(spec.group_by, key):
            if value is not None:
                data[variable] = decode(value) if type(value) is int else value
        counters = iter(accumulators)
        for item in query.projection:
            if isinstance(item.expression, CountExpression):
                counter = next(counters)
                count = len(counter) if isinstance(counter, set) else counter
                data[item.output_variable] = value_to_term(count)
        rows.append(Binding(data))

    if query.offset:
        rows = rows[query.offset :]
    if query.limit is not None:
        rows = rows[: query.limit]
    return ResultSet(variables, rows)
