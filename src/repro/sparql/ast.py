"""Abstract syntax tree for the supported SPARQL subset.

The AST mirrors the grammar closely: a query has a form (SELECT / ASK), a
:class:`GroupGraphPattern` body, and solution modifiers.  Expressions used
in ``FILTER`` and projection are a small hierarchy rooted at
:class:`Expression`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.rdf.terms import Term
from repro.sparql.bindings import PatternTerm, Variable


# --------------------------------------------------------------------------- #
# Expressions
# --------------------------------------------------------------------------- #
class Expression:
    """Base class for FILTER / projection expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class VariableExpression(Expression):
    """A bare variable used as an expression (``?x``)."""

    variable: Variable


@dataclass(frozen=True)
class TermExpression(Expression):
    """A constant RDF term used as an expression."""

    term: Term


@dataclass(frozen=True)
class UnaryExpression(Expression):
    """A unary operator application: ``!expr``, ``-expr``, ``+expr``."""

    operator: str
    operand: Expression


@dataclass(frozen=True)
class BinaryExpression(Expression):
    """A binary operator application.

    Operators: ``||``, ``&&``, ``=``, ``!=``, ``<``, ``>``, ``<=``, ``>=``,
    ``+``, ``-``, ``*``, ``/``.
    """

    operator: str
    left: Expression
    right: Expression


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A builtin function call such as ``REGEX(?x, "foo", "i")``."""

    name: str
    arguments: Tuple[Expression, ...]


@dataclass(frozen=True)
class InExpression(Expression):
    """``expr IN (e1, e2, ...)`` or its negation."""

    operand: Expression
    choices: Tuple[Expression, ...]
    negated: bool = False


@dataclass(frozen=True)
class ExistsExpression(Expression):
    """``EXISTS { ... }`` / ``NOT EXISTS { ... }`` filter expression."""

    group: "GroupGraphPattern"
    negated: bool = False


@dataclass(frozen=True)
class CountExpression(Expression):
    """``COUNT(*)`` or ``COUNT([DISTINCT] ?var)`` aggregate."""

    variable: Optional[Variable] = None
    distinct: bool = False

    @property
    def counts_all(self) -> bool:
        """True for ``COUNT(*)``."""
        return self.variable is None


# --------------------------------------------------------------------------- #
# Graph patterns
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class TriplePatternNode:
    """A triple pattern whose positions may be variables or concrete terms."""

    subject: PatternTerm
    predicate: PatternTerm
    object: PatternTerm

    def variables(self) -> List[Variable]:
        """Variables mentioned by this pattern (in s, p, o order)."""
        return [t for t in (self.subject, self.predicate, self.object) if isinstance(t, Variable)]


@dataclass(frozen=True)
class FilterNode:
    """A ``FILTER`` constraint."""

    expression: Expression


@dataclass(frozen=True)
class OptionalNode:
    """An ``OPTIONAL { ... }`` group."""

    group: "GroupGraphPattern"


@dataclass(frozen=True)
class UnionNode:
    """A ``{ ... } UNION { ... }`` alternative (left-deep for >2 branches)."""

    branches: Tuple["GroupGraphPattern", ...]


@dataclass(frozen=True)
class ValuesNode:
    """Inline data: ``VALUES (?a ?b) { (..) (..) }``.

    ``rows`` may contain ``None`` for UNDEF entries.
    """

    variables: Tuple[Variable, ...]
    rows: Tuple[Tuple[Optional[Term], ...], ...]


#: Any element that may appear inside a group graph pattern.
GroupElement = Union[TriplePatternNode, FilterNode, OptionalNode, UnionNode, ValuesNode, "GroupGraphPattern"]


@dataclass(frozen=True)
class GroupGraphPattern:
    """A ``{ ... }`` group: an ordered sequence of group elements."""

    elements: Tuple[GroupElement, ...] = ()

    def triple_patterns(self) -> List[TriplePatternNode]:
        """All top-level triple patterns of this group."""
        return [e for e in self.elements if isinstance(e, TriplePatternNode)]

    def variables(self) -> List[Variable]:
        """All variables mentioned anywhere in the group (deduplicated, ordered)."""
        seen: List[Variable] = []

        def visit(element: GroupElement) -> None:
            if isinstance(element, TriplePatternNode):
                for var in element.variables():
                    if var not in seen:
                        seen.append(var)
            elif isinstance(element, OptionalNode):
                for var in element.group.variables():
                    if var not in seen:
                        seen.append(var)
            elif isinstance(element, UnionNode):
                for branch in element.branches:
                    for var in branch.variables():
                        if var not in seen:
                            seen.append(var)
            elif isinstance(element, ValuesNode):
                for var in element.variables:
                    if var not in seen:
                        seen.append(var)
            elif isinstance(element, GroupGraphPattern):
                for var in element.variables():
                    if var not in seen:
                        seen.append(var)
            # FilterNode variables do not bind anything.

        for element in self.elements:
            visit(element)
        return seen


# --------------------------------------------------------------------------- #
# Queries
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ProjectionItem:
    """One item of the SELECT clause.

    Either a plain variable, or an aliased expression
    ``(COUNT(?x) AS ?c)`` where ``expression`` is set and ``alias`` names
    the output variable.
    """

    variable: Optional[Variable] = None
    expression: Optional[Expression] = None
    alias: Optional[Variable] = None

    @property
    def output_variable(self) -> Variable:
        """The variable under which the item appears in the result set."""
        if self.alias is not None:
            return self.alias
        if self.variable is not None:
            return self.variable
        raise ValueError("Projection item has neither variable nor alias")


@dataclass(frozen=True)
class OrderCondition:
    """One ORDER BY condition."""

    expression: Expression
    descending: bool = False


@dataclass(frozen=True)
class SelectQuery:
    """A parsed ``SELECT`` query."""

    projection: Tuple[ProjectionItem, ...]
    where: GroupGraphPattern
    distinct: bool = False
    select_all: bool = False
    order_by: Tuple[OrderCondition, ...] = ()
    group_by: Tuple[Variable, ...] = ()
    limit: Optional[int] = None
    offset: int = 0

    @property
    def is_aggregate(self) -> bool:
        """Whether any projection item is an aggregate expression."""
        return any(isinstance(item.expression, CountExpression) for item in self.projection)


@dataclass(frozen=True)
class AskQuery:
    """A parsed ``ASK`` query."""

    where: GroupGraphPattern


#: Either supported query form.
Query = Union[SelectQuery, AskQuery]
