"""SPARQL 1.1 Query Results serialisation: JSON and TSV.

The wire formats of the HTTP service tier (`SPARQL 1.1 Query Results
JSON Format <https://www.w3.org/TR/sparql11-results-json/>`_ and the TSV
half of `SPARQL 1.1 Query Results CSV and TSV Formats
<https://www.w3.org/TR/sparql11-results-csv-tsv/>`_).  Serialisation is
deterministic — fixed key order, compact separators — so two runs that
produce the same result set produce byte-identical documents; the
differential suite pins HTTP responses against in-process evaluation on
exactly that property.

:func:`from_sparql_json` is the inverse used by
:class:`~repro.http.client.HttpSparqlClient` to turn a response body
back into the same :class:`~repro.sparql.results.ResultSet` /
:class:`~repro.sparql.results.AskResult` objects the in-process endpoint
returns, which is what lets the typed
:class:`~repro.endpoint.client.EndpointClient` run unchanged over a
socket.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Union

from repro.errors import SparqlError
from repro.rdf.ntriples import term_to_ntriples
from repro.rdf.terms import IRI, BlankNode, Literal, Term, XSD_STRING
from repro.sparql.bindings import Binding, Variable
from repro.sparql.results import AskResult, ResultSet

#: Media type of the SPARQL 1.1 JSON results format.
SPARQL_JSON_MIME = "application/sparql-results+json"

#: Media type of the SPARQL 1.1 TSV results format.
SPARQL_TSV_MIME = "text/tab-separated-values"


# --------------------------------------------------------------------- #
# Term <-> JSON
# --------------------------------------------------------------------- #
def term_to_json(term: Term) -> Dict[str, str]:
    """One RDF term as a SPARQL-results-JSON term object."""
    if isinstance(term, IRI):
        return {"type": "uri", "value": term.value}
    if isinstance(term, BlankNode):
        return {"type": "bnode", "value": term.label}
    if isinstance(term, Literal):
        obj: Dict[str, str] = {"type": "literal", "value": term.lexical}
        if term.language:
            obj["xml:lang"] = term.language
        elif term.datatype and term.datatype != XSD_STRING:
            # xsd:string is the implicit datatype of simple literals; the
            # spec serialises those without a datatype key.
            obj["datatype"] = term.datatype
        return obj
    raise SparqlError(f"Cannot serialise term of type {type(term).__name__}")


def term_from_json(obj: Dict[str, str]) -> Term:
    """The inverse of :func:`term_to_json`."""
    kind = obj.get("type")
    value = obj.get("value")
    if not isinstance(value, str):
        raise SparqlError(f"Results-JSON term object without a value: {obj!r}")
    if kind == "uri":
        return IRI(value)
    if kind == "bnode":
        return BlankNode(value)
    if kind in ("literal", "typed-literal"):  # typed-literal: legacy alias
        language = obj.get("xml:lang")
        datatype = obj.get("datatype")
        if language:
            return Literal(value, language=language)
        return Literal(value, datatype=datatype)
    raise SparqlError(f"Unknown results-JSON term type: {kind!r}")


# --------------------------------------------------------------------- #
# JSON documents
# --------------------------------------------------------------------- #
def to_sparql_json(result: Union[ResultSet, AskResult]) -> str:
    """A result as a SPARQL 1.1 Results JSON document (deterministic bytes)."""
    if isinstance(result, AskResult):
        document: Dict[str, object] = {"head": {}, "boolean": bool(result)}
    elif isinstance(result, ResultSet):
        bindings: List[Dict[str, Dict[str, str]]] = []
        for row in result.rows:
            entry: Dict[str, Dict[str, str]] = {}
            for variable in result.variables:
                term = row.get_term(variable)
                if term is not None:  # unbound OPTIONAL variables are omitted
                    entry[variable.name] = term_to_json(term)
            bindings.append(entry)
        document = {
            "head": {"vars": [v.name for v in result.variables]},
            "results": {"bindings": bindings},
        }
    else:
        raise SparqlError(
            f"Cannot serialise result of type {type(result).__name__}"
        )
    return json.dumps(document, separators=(",", ":"), ensure_ascii=False)


def from_sparql_json(text: Union[str, bytes]) -> Union[ResultSet, AskResult]:
    """Parse a SPARQL 1.1 Results JSON document back into a result object."""
    if isinstance(text, bytes):
        text = text.decode("utf-8")
    try:
        document = json.loads(text)
    except ValueError as error:
        raise SparqlError(f"Malformed results-JSON document: {error}") from None
    if not isinstance(document, dict):
        raise SparqlError("Results-JSON document must be an object")
    if "boolean" in document:
        return AskResult(bool(document["boolean"]))
    head = document.get("head") or {}
    results = document.get("results")
    if not isinstance(results, dict) or "bindings" not in results:
        raise SparqlError("Results-JSON document has neither boolean nor bindings")
    variables = [Variable(name) for name in head.get("vars", [])]
    rows: List[Binding] = []
    for entry in results["bindings"]:
        if not isinstance(entry, dict):
            raise SparqlError(f"Malformed results-JSON binding: {entry!r}")
        rows.append(
            Binding(
                {Variable(name): term_from_json(obj) for name, obj in entry.items()}
            )
        )
    return ResultSet(variables, rows)


# --------------------------------------------------------------------- #
# TSV documents
# --------------------------------------------------------------------- #
def to_sparql_tsv(result: ResultSet) -> str:
    """A SELECT result as a SPARQL 1.1 TSV document.

    Terms are encoded in Turtle/N-Triples syntax as the TSV specification
    requires (tabs, newlines and quotes inside literals are escaped by the
    term encoding, so cells never contain a raw delimiter); unbound
    variables serialise as empty cells.  ASK results have no TSV form —
    the server always answers ASK queries with JSON.
    """
    if not isinstance(result, ResultSet):
        raise SparqlError(
            f"TSV serialisation is defined for SELECT results, "
            f"not {type(result).__name__}"
        )
    lines = ["\t".join(f"?{v.name}" for v in result.variables)]
    for row in result.rows:
        cells = []
        for variable in result.variables:
            term = row.get_term(variable)
            cells.append("" if term is None else term_to_ntriples(term))
        lines.append("\t".join(cells))
    return "\n".join(lines) + "\n"


def content_type_for(fmt: str) -> str:
    """The HTTP ``Content-Type`` for a format key (``json`` / ``tsv``)."""
    if fmt == "json":
        return SPARQL_JSON_MIME
    if fmt == "tsv":
        return SPARQL_TSV_MIME
    raise SparqlError(f"Unknown result format {fmt!r}")


def serialize(result: Union[ResultSet, AskResult], fmt: str) -> str:
    """Serialise ``result`` as ``fmt`` (``json`` or ``tsv``).

    ASK results are always rendered as JSON (TSV has no boolean form);
    callers that honour content negotiation should check the returned
    document's media type via the result type, as the HTTP tier does.
    """
    if fmt == "tsv" and isinstance(result, ResultSet):
        return to_sparql_tsv(result)
    if fmt in ("json", "tsv"):
        return to_sparql_json(result)
    raise SparqlError(f"Unknown result format {fmt!r}")
