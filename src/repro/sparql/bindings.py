"""Variables and solution bindings.

A :class:`Variable` is a SPARQL query variable (``?x``).  A
:class:`Binding` is one solution mapping from variables to RDF terms; it is
immutable so partially evaluated solutions can be shared safely while the
evaluator explores alternative joins.

:class:`IdBinding` is the evaluator-internal counterpart that maps
variables to **dictionary IDs** (plain ints) instead of Term objects, so
joins compare integers.  A value may also be a Term when it came from query
text (VALUES / constants) and is unknown to the store's dictionary — such a
value can never join with a store-derived ID, which is exactly right since
the term does not occur in the store.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, Mapping, Optional, Union

from repro.errors import SparqlError
from repro.rdf.terms import Term

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.store.dictionary import TermDictionary


class Variable:
    """A SPARQL variable.  The name excludes the leading ``?``/``$``."""

    __slots__ = ("name", "_hash")

    def __init__(self, name: str):
        if not name or not isinstance(name, str):
            raise SparqlError("Variable name must be a non-empty string")
        if name.startswith("?") or name.startswith("$"):
            name = name[1:]
        if not name or not all(ch.isalnum() or ch == "_" for ch in name):
            raise SparqlError(f"Invalid variable name: {name!r}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_hash", hash(("Variable", name)))

    def __setattr__(self, name, value):  # pragma: no cover - defensive
        raise AttributeError("Variable instances are immutable")

    def __reduce__(self):
        # Slots + the immutability guard break default pickling; rebuild
        # via the constructor so query ASTs can be shipped to shard
        # worker processes.
        return (Variable, (self.name,))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Variable) and other.name == self.name

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return f"?{self.name}"


#: A position in a triple pattern: either a concrete term or a variable.
PatternTerm = Union[Term, Variable]


class Binding(Mapping[Variable, Term]):
    """An immutable mapping from variables to terms (one solution row)."""

    __slots__ = ("_data", "_hash")

    EMPTY: "Binding"

    def __init__(self, data: Optional[Mapping[Variable, Term]] = None):
        mapping: Dict[Variable, Term] = dict(data) if data else {}
        object.__setattr__(self, "_data", mapping)
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, name, value):  # pragma: no cover - defensive
        raise AttributeError("Binding instances are immutable")

    def __getitem__(self, key: Variable) -> Term:
        return self._data[key]

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash(frozenset(self._data.items()))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Binding):
            return self._data == other._data
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"?{var.name}={term!r}" for var, term in self._data.items())
        return f"Binding({{{inner}}})"

    def get_term(self, variable: Variable) -> Optional[Term]:
        """The term bound to ``variable`` or ``None`` if unbound."""
        return self._data.get(variable)

    def extend(self, variable: Variable, term: Term) -> Optional["Binding"]:
        """Bind ``variable`` to ``term``.

        Returns a new binding, or ``None`` when ``variable`` is already
        bound to a *different* term (the join is incompatible).
        """
        existing = self._data.get(variable)
        if existing is not None:
            return self if existing == term else None
        data = dict(self._data)
        data[variable] = term
        return Binding(data)

    def merge(self, other: "Binding") -> Optional["Binding"]:
        """Merge with another binding; ``None`` when they conflict."""
        merged = dict(self._data)
        for variable, term in other._data.items():
            existing = merged.get(variable)
            if existing is not None and existing != term:
                return None
            merged[variable] = term
        return Binding(merged)

    def project(self, variables: list[Variable]) -> "Binding":
        """Keep only the given variables."""
        return Binding({v: t for v, t in self._data.items() if v in set(variables)})


Binding.EMPTY = Binding()


#: A value inside an :class:`IdBinding`: a dictionary ID (fast path) or an
#: out-of-dictionary Term.
IdValue = Union[int, Term]


class IdBinding:
    """An immutable mapping from variables to dictionary IDs (one solution).

    The streaming evaluator's internal solution representation: extending
    and joining compare plain ints, and Terms are only materialised when a
    row is decoded for output (or for FILTER expression evaluation).
    """

    __slots__ = ("_data",)

    EMPTY: "IdBinding"

    def __init__(self, data: Optional[Dict[Variable, IdValue]] = None):
        object.__setattr__(self, "_data", data if data is not None else {})

    def __setattr__(self, name, value):  # pragma: no cover - defensive
        raise AttributeError("IdBinding instances are immutable")

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._data)

    def __hash__(self) -> int:
        return hash(frozenset(self._data.items()))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IdBinding):
            return self._data == other._data
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"?{var.name}={value!r}" for var, value in self._data.items())
        return f"IdBinding({{{inner}}})"

    def get(self, variable: Variable) -> Optional[IdValue]:
        """The ID (or out-of-dictionary term) bound to ``variable``."""
        return self._data.get(variable)

    def items(self) -> Iterator[tuple[Variable, IdValue]]:
        """Iterate over ``(variable, value)`` pairs."""
        return iter(self._data.items())

    def extend(self, variable: Variable, value: IdValue) -> Optional["IdBinding"]:
        """Bind ``variable`` to ``value``.

        Returns a new binding (or ``self`` when already equal), or ``None``
        when ``variable`` is bound to a *different* value (join conflict).
        """
        existing = self._data.get(variable)
        if existing is not None:
            return self if existing == value else None
        data = dict(self._data)
        data[variable] = value
        return IdBinding(data)

    def decode(self, dictionary: "TermDictionary") -> Binding:
        """Materialise a Term-space :class:`Binding` for output."""
        decode = dictionary.decode
        return Binding(
            {
                var: (decode(value) if type(value) is int else value)
                for var, value in self._data.items()
            }
        )

    @classmethod
    def encode(cls, binding: Binding, dictionary: "TermDictionary") -> "IdBinding":
        """Translate a Term-space binding, keeping unknown terms verbatim."""
        data: Dict[Variable, IdValue] = {}
        for var, term in binding.items():
            tid = dictionary.id_for(term)
            data[var] = tid if tid is not None else term
        return cls(data)


IdBinding.EMPTY = IdBinding()
