"""E3 — Threshold (τ) sweep and the paper's τ-selection protocol.

The paper states the thresholds were "selected ... that led to the highest
average F1 score for both ways implications".  This benchmark regenerates
the underlying sweep: average F1 as a function of τ for the three methods,
plus the τ each method ends up selecting.
"""

import pytest

from repro.align.config import AlignmentConfig
from repro.evaluation.experiment import AlignmentExperiment
from repro.evaluation.tables import TextTable
from repro.evaluation.thresholds import select_best_threshold

from benchmarks.conftest import save_report

GRID = tuple(round(0.1 * i, 1) for i in range(10))


def run_sweep(world) -> TextTable:
    experiment = AlignmentExperiment(world, distractor_relations=3)
    directions = [("yago", "dbpedia"), ("dbpedia", "yago")]

    table = TextTable(
        ["method"] + [f"avg F1 @ τ>{tau}" for tau in GRID] + ["selected τ"],
        title="Average F1 over both directions as a function of τ",
    )
    for method_name, config in (
        ("pca", AlignmentConfig.paper_pca_baseline()),
        ("cwa", AlignmentConfig.paper_cwa_baseline()),
        ("ubs", AlignmentConfig.paper_ubs()),
    ):
        results, golds = [], []
        for premise, conclusion in directions:
            results.append(experiment.run_direction(premise, conclusion, config))
            golds.append(experiment.gold_pairs(premise, conclusion))
        selection = select_best_threshold(results, golds, grid=GRID)
        table.add_row(
            method_name,
            *[selection.sweep[tau] for tau in GRID],
            selection.threshold,
        )
    return table


@pytest.mark.benchmark(group="threshold-sweep")
def test_threshold_sweep(benchmark, medium_world):
    table = benchmark.pedantic(run_sweep, args=(medium_world,), rounds=1, iterations=1)
    save_report("threshold_sweep", table.render())
    assert len(table.rows) == 3
