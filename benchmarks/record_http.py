"""Record HTTP service-tier latency under concurrent clients.

Boots a :class:`~repro.http.server.SparqlHttpServer` over a sharded
scale world, drives it with N concurrent :class:`HttpSparqlClient`
threads issuing a mixed GET/POST workload (paged SELECT, ASK, COUNT)
and records per-request latency percentiles plus server-side telemetry
into a JSON artefact::

    PYTHONPATH=src python benchmarks/record_http.py --label pr9 \
        --out BENCH_http.json
    # CI smoke gate (small world, thread backend, drain assertions):
    PYTHONPATH=src python benchmarks/record_http.py --label ci \
        --out /tmp/ci-http.json --smoke --check

``--check`` asserts every request answered 200, percentiles were
recorded under the p95 ceiling, graceful shutdown completed with an
in-flight query still answering 200, the listener really closed, and
no worker process outlived the server.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import socket
import sys
import threading
import time
from pathlib import Path

_ROOT = Path(__file__).parent.parent
_SRC = _ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.endpoint.policy import AccessPolicy  # noqa: E402
from repro.endpoint.simulation import SimulatedSparqlEndpoint  # noqa: E402
from repro.http import HttpSparqlClient, serve_http  # noqa: E402
from repro.obs.metrics import MetricsRegistry  # noqa: E402
from repro.synthetic.stream import (  # noqa: E402
    generate_scale_world,
    scale_world_spec,
)


def _workload(namespace: str, entities: int) -> list:
    """``(kind, query)`` pairs cycling the protocol's surface."""
    prefix = f"PREFIX s: <{namespace}> "
    queries = []
    for index in range(8):
        entity = f"s:e{(index * 131) % max(entities, 1)}"
        queries.append(
            ("select", prefix + f"SELECT ?o WHERE {{ {entity} s:p0 ?o }}")
        )
        queries.append(
            (
                "paged",
                prefix
                + f"SELECT ?s ?o WHERE {{ ?s s:p{index % 4} ?o }} LIMIT 50",
            )
        )
        queries.append(("ask", prefix + f"ASK {{ {entity} s:p1 ?o }}"))
        queries.append(
            (
                "count",
                prefix
                + f"SELECT (COUNT(*) AS ?c) WHERE {{ ?s s:p{index % 4} ?o }}",
            )
        )
    return queries


def _drive_clients(
    url: str, clients: int, queries_per_client: int, workload: list
) -> dict:
    """Fire the workload from concurrent clients; returns latency stats."""
    registry = MetricsRegistry()
    failures = []
    lock = threading.Lock()

    def worker(worker_index: int) -> None:
        # Alternate transport per client: half POST form, half GET.
        method = "post" if worker_index % 2 == 0 else "get"
        client = HttpSparqlClient(
            url, method=method, client_id=f"bench-{worker_index}"
        )
        try:
            for query_index in range(queries_per_client):
                kind, query = workload[
                    (worker_index + query_index) % len(workload)
                ]
                started = time.perf_counter()
                try:
                    client.query(query)
                except Exception as error:  # noqa: BLE001 - recorded, not raised
                    with lock:
                        failures.append(f"{kind}: {type(error).__name__}: {error}")
                    continue
                elapsed = time.perf_counter() - started
                registry.observe("client.latency", elapsed)
                registry.observe(f"client.latency.{kind}", elapsed)
                registry.increment("client.requests")
        finally:
            client.close()

    threads = [
        threading.Thread(target=worker, args=(index,)) for index in range(clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started

    snapshot = registry.snapshot()
    stats = {
        "requests": int(registry.value("client.requests")),
        "failures": failures[:10],
        "failure_count": len(failures),
        "wall_seconds": round(wall, 4),
        "throughput_rps": round(
            registry.value("client.requests") / wall, 2
        )
        if wall
        else 0.0,
    }
    histogram = snapshot["histograms"].get("client.latency", {})
    for key in ("p50", "p90", "p95", "p99", "max"):
        if key in histogram:
            stats[f"latency_{key}_ms"] = round(histogram[key] * 1000, 3)
    for kind in ("select", "paged", "ask", "count"):
        kind_histogram = snapshot["histograms"].get(f"client.latency.{kind}", {})
        if "p95" in kind_histogram:
            stats[f"{kind}_p95_ms"] = round(kind_histogram["p95"] * 1000, 3)
    return stats


def _check_graceful_drain(store, metrics: MetricsRegistry) -> dict:
    """Stop the server under an in-flight query; it must still answer.

    Uses a latency-injected endpoint so the in-flight query is genuinely
    mid-evaluation when ``stop()`` runs.
    """
    slow = SimulatedSparqlEndpoint(
        store,
        name="drain",
        policy=AccessPolicy(latency_per_query=0.5),
        latency_scale=1.0,
    )
    running = serve_http(slow, metrics=metrics, own_endpoint=True)
    outcome = {}

    def fire() -> None:
        client = HttpSparqlClient(running.url)
        try:
            outcome["status"] = client.request_raw(
                "POST",
                "/sparql",
                body=b"ASK { ?s ?p ?o }",
                headers={"Content-Type": "application/sparql-query"},
            )[0]
        finally:
            client.close()

    thread = threading.Thread(target=fire)
    thread.start()
    time.sleep(0.1)  # let the request reach the evaluator
    stop_started = time.perf_counter()
    running.stop()
    drain_seconds = time.perf_counter() - stop_started
    thread.join(timeout=10)

    listener_closed = True
    try:
        socket.create_connection((running.host, running.port), timeout=0.5).close()
        listener_closed = False
    except OSError:
        pass
    return {
        "drained_status": outcome.get("status"),
        "drain_seconds": round(drain_seconds, 4),
        "listener_closed": listener_closed,
    }


def run_benchmarks(
    scale: str,
    shards: int,
    backend: str,
    clients: int,
    queries_per_client: int,
) -> dict:
    world = generate_scale_world(
        scale_world_spec(scale), shard_count=shards if shards > 1 else None
    )
    metrics = MetricsRegistry()
    server_kwargs = dict(
        store=world.store, name="bench", metrics=metrics, backend=None
    )
    if backend == "process":
        server_kwargs["backend"] = "process"
    with serve_http(**server_kwargs) as running:
        workload = _workload(world.spec.namespace.base, world.spec.entities)
        # One warm connection primes the page cache + plan caches off-clock.
        with HttpSparqlClient(running.url) as warm:
            warm.health()
        stats = _drive_clients(
            running.url, clients, queries_per_client, workload
        )
        server_side = metrics.snapshot()
        stats["server"] = {
            "requests": int(metrics.value("http.requests")),
            "responses_200": int(metrics.value("http.responses.200")),
            "cache_hits": int(metrics.value("http.cache.hits")),
            "cache_misses": int(metrics.value("http.cache.misses")),
            "rejected_overload": int(metrics.value("http.rejected.overload")),
        }
        latency = server_side["histograms"].get("http.latency", {})
        if "p95" in latency:
            stats["server"]["http_latency_p95_ms"] = round(
                latency["p95"] * 1000, 3
            )

    stats["triples"] = len(world.store)
    stats["shards"] = shards
    stats["backend"] = backend
    stats["clients"] = clients
    stats["queries_per_client"] = queries_per_client
    stats["drain"] = _check_graceful_drain(world.store, MetricsRegistry())
    stats["leaked_workers"] = len(multiprocessing.active_children())
    return stats


def check(results: dict, max_p95_ms: float) -> list:
    failures = []
    if results["failure_count"]:
        failures.append(
            f"{results['failure_count']} requests failed "
            f"(first: {results['failures'][:1]})"
        )
    expected = results["clients"] * results["queries_per_client"]
    if results["requests"] != expected:
        failures.append(
            f"{results['requests']}/{expected} requests completed"
        )
    if "latency_p95_ms" not in results:
        failures.append("no latency percentiles recorded")
    elif results["latency_p95_ms"] > max_p95_ms:
        failures.append(
            f"p95 latency {results['latency_p95_ms']}ms exceeds the "
            f"{max_p95_ms:g}ms ceiling"
        )
    if results["server"]["responses_200"] < results["requests"]:
        failures.append(
            "server counted fewer 200s than the clients saw "
            f"({results['server']['responses_200']} < {results['requests']})"
        )
    if results["drain"]["drained_status"] != 200:
        failures.append(
            "in-flight query during shutdown answered "
            f"{results['drain']['drained_status']}, not 200"
        )
    if not results["drain"]["listener_closed"]:
        failures.append("listener still accepting connections after stop()")
    if results["leaked_workers"]:
        failures.append(
            f"{results['leaked_workers']} worker processes outlived the server"
        )
    return failures


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", required=True)
    parser.add_argument("--out", required=True)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small world + thread backend for CI smoke checks",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail on request failures, missing percentiles, a p95 above "
        "the ceiling, or an unclean shutdown",
    )
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--queries-per-client", type=int, default=25)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument(
        "--backend", choices=("thread", "process"), default="process"
    )
    parser.add_argument(
        "--max-p95-ms",
        type=float,
        default=2000.0,
        help="p95 per-request latency ceiling for --check (default 2000)",
    )
    args = parser.parse_args()

    scale = "13k" if args.smoke else "100k"
    backend = "thread" if args.smoke else args.backend
    shards = 2 if args.smoke else args.shards
    clients = min(args.clients, 4) if args.smoke else args.clients
    queries = min(args.queries_per_client, 10) if args.smoke else args.queries_per_client

    results = {
        "benchmark": "benchmarks/record_http.py",
        "preset": f"scale_world_spec('{scale}') @ {shards} shards, "
        f"{backend} backend, {clients} concurrent clients",
        "note": (
            "latency_* are client-observed per-request percentiles over a "
            "mixed GET/POST SELECT/ASK/COUNT workload on a real socket; "
            "drain asserts stop() answered an in-flight query with 200"
        ),
        "label": args.label,
        "results": run_benchmarks(scale, shards, backend, clients, queries),
    }
    Path(args.out).write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(results, indent=2))

    if args.check:
        failures = check(results["results"], args.max_p95_ms)
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=sys.stderr)
            sys.exit(1)
        print(
            f"http check ok ({results['results']['requests']} requests, "
            f"p95 {results['results'].get('latency_p95_ms')}ms <= "
            f"{args.max_p95_ms:g}ms, drained clean)"
        )


if __name__ == "__main__":
    main()
