"""Record substrate micro-benchmark numbers into a JSON artefact.

Standalone timing runner (no pytest-benchmark) so results can be captured
for both the seed store and the dictionary-encoded store and diffed in
``BENCH_substrate.json``.  Usage::

    PYTHONPATH=src python benchmarks/record_substrate.py --label seed --out seed.json
    PYTHONPATH=src python benchmarks/record_substrate.py --label pr1 --out pr1.json \
        --baseline seed.json --combined BENCH_substrate.json

Each benchmark reports the best-of-``repeats`` wall time in milliseconds on
the largest synthetic preset (the paper-scale YAGO-like/DBpedia-like pair).

``--check COMMITTED.json`` turns the run into a regression guard: every
``*_ms`` metric is compared against the committed artefact's "after"
numbers and the process exits non-zero if any metric regressed more than
``--max-regression`` (default 2x).  Combined with ``--smoke`` (a much
smaller world, so it is strictly *easier* to beat the committed numbers)
this gives CI a cheap tripwire for catastrophic slowdowns without flaking
on machine variance.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

_SRC = Path(__file__).parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.endpoint.client import EndpointClient  # noqa: E402
from repro.endpoint.endpoint import SparqlEndpoint  # noqa: E402
from repro.sparql.evaluate import evaluate_query  # noqa: E402
from repro.synthetic.generator import generate_world  # noqa: E402
from repro.synthetic.presets import yago_dbpedia_spec  # noqa: E402


def _best_of(fn, repeats: int = 5, inner: int = 1) -> float:
    """Best wall time of ``fn`` over ``repeats`` runs, in milliseconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        elapsed = (time.perf_counter() - start) / inner
        best = min(best, elapsed)
    return best * 1000.0


def run_benchmarks(spec=None) -> dict:
    world = generate_world(spec if spec is not None else yago_dbpedia_spec())
    yago = world.kb("yago")
    store = yago.store
    relation = sorted(yago.relations(), key=lambda info: -info.fact_count)[0].iri

    probes = list(store.match())[:500]
    client = EndpointClient(SparqlEndpoint(store, name="bench"))
    subjects = list(store.subjects(relation))[:40]

    join_query = (
        f"SELECT ?s ?o WHERE {{ ?s <{relation.value}> ?o . "
        f"?s <http://www.w3.org/2002/07/owl#sameAs> ?x }} LIMIT 100"
    )
    count_query = f"SELECT (COUNT(*) AS ?c) WHERE {{ ?s <{relation.value}> ?o }}"
    ask_query = (
        f"ASK {{ ?s <{relation.value}> ?o . "
        f"?s <http://www.w3.org/2002/07/owl#sameAs> ?x }}"
    )

    results = {
        "triples": len(store),
        "pattern_match_by_predicate_ms": _best_of(
            lambda: sum(1 for _ in store.match(predicate=relation))
        ),
        "membership_probe_ms": _best_of(
            lambda: sum(1 for t in probes if t in store)
        ),
        "count_by_predicate_ms": _best_of(
            lambda: store.count(predicate=relation), inner=10
        ),
        "sparql_join_limit100_ms": _best_of(
            lambda: evaluate_query(store, join_query)
        ),
        "sparql_count_ms": _best_of(lambda: evaluate_query(store, count_query)),
        "sparql_ask_ms": _best_of(lambda: evaluate_query(store, ask_query), inner=5),
        "endpoint_batched_facts_ms": _best_of(
            lambda: client.facts_of_subjects(subjects, relation)
        ),
        "endpoint_repeat_ask_100_ms": _best_of(
            lambda: [
                client.subject_has_relation(subject, relation)
                for subject in subjects[:20]
            ]
        ),
    }
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", required=True)
    parser.add_argument("--out", required=True)
    parser.add_argument("--baseline", default=None, help="baseline JSON to diff against")
    parser.add_argument("--combined", default=None, help="write combined before/after JSON")
    parser.add_argument("--smoke", action="store_true", help="tiny run for CI smoke checks")
    parser.add_argument(
        "--check",
        default=None,
        metavar="COMMITTED_JSON",
        help="fail when any *_ms metric regresses versus this artefact's after-numbers",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=2.0,
        help="allowed slowdown factor for --check (default 2.0)",
    )
    parser.add_argument(
        "--noise-floor",
        type=float,
        default=0.05,
        help="absolute slack in ms added to every --check threshold, so "
        "sub-microsecond O(1) metrics cannot flake on slow runners",
    )
    args = parser.parse_args()

    spec = None
    if args.smoke:
        # A much smaller world: cheap enough for CI, still end-to-end.
        spec = yago_dbpedia_spec(families=5, people=60, works=40, places=20, orgs=15)

    results = {"label": args.label, "results": run_benchmarks(spec)}
    Path(args.out).write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(results, indent=2))

    if args.check:
        committed = json.loads(Path(args.check).read_text(encoding="utf-8"))
        reference = committed.get("after", committed).get("results", {})
        failures = []
        for key, reference_value in reference.items():
            measured = results["results"].get(key)
            if (
                key.endswith("_ms")
                and isinstance(reference_value, (int, float))
                and isinstance(measured, (int, float))
                and measured > reference_value * args.max_regression + args.noise_floor
            ):
                failures.append((key, reference_value, measured))
        if failures:
            for key, reference_value, measured in failures:
                print(
                    f"REGRESSION {key}: {measured:.4f} ms > "
                    f"{args.max_regression:g}x committed {reference_value:.4f} ms "
                    f"+ {args.noise_floor:g} ms"
                )
            sys.exit(2)
        print(f"regression check ok ({len(reference)} metrics, {args.max_regression:g}x headroom)")

    if args.baseline and args.combined:
        baseline = json.loads(Path(args.baseline).read_text(encoding="utf-8"))
        speedups = {}
        for key, after_value in results["results"].items():
            before_value = baseline["results"].get(key)
            if key.endswith("_ms") and isinstance(before_value, (int, float)) and after_value:
                speedups[key.replace("_ms", "_speedup")] = round(before_value / after_value, 2)
        combined = {
            "benchmark": "benchmarks/record_substrate.py",
            "preset": "yago_dbpedia_spec() (paper-scale, largest preset)",
            "before": baseline,
            "after": results,
            "speedup": speedups,
        }
        Path(args.combined).write_text(json.dumps(combined, indent=2) + "\n", encoding="utf-8")
        print(json.dumps(speedups, indent=2))


if __name__ == "__main__":
    main()
