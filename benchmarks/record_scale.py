"""Record scale benchmark numbers (streamed worlds + vectorized joins).

For each world size of the scale preset family (13.7k -> 10M triples),
this measures the PR's two hot paths end to end:

* **Streamed build** — ``build_s`` / ``build_rate_tps``: the streaming
  ID-column generation path (:func:`generate_scale_world` through
  ``TripleStore.from_id_columns``), which never materialises per-fact
  ``Triple`` objects.  ``peak_rss_kb`` is ``ru_maxrss`` after the build;
  it is a *process-lifetime high-water mark*, so sizes are always run in
  ascending order and each value bounds the memory needed up to and
  including that size.
* **World cache** — the world is obtained through
  :func:`repro.synthetic.cache.load_or_generate`; ``cache_hit_first``
  records whether this run found an existing entry and
  ``cache_hit_second`` / ``cache_open_s`` time the immediate second
  lookup, which must hit (reopening the snapshot instead of
  regenerating).
* **Vectorized joins** — ``join3_vec_ms`` vs ``join3_scalar_ms``: a
  3-pattern chain join over mid-tail predicates, evaluated with the
  block kernels and with ``use_vectorized=False``; ``join3_speedup`` is
  the headline ratio (the acceptance gate requires >= 3x on the 1M
  preset).

Usage::

    PYTHONPATH=src python benchmarks/record_scale.py --label pr6 \
        --cache-root /tmp/world-cache --out BENCH_scale.json

``--check COMMITTED.json`` turns the run into a CI regression guard over
the sizes actually run (CI uses ``--sizes 100k``): ``*_tps`` metrics
must not fall below the committed numbers by more than
``--max-regression``, and ``*_ms`` metrics must not exceed them by more
than the same factor.
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time
from pathlib import Path

_ROOT = Path(__file__).parent.parent
_SRC = _ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.sparql.evaluate import QueryEvaluator  # noqa: E402
from repro.sparql.parser import parse_query  # noqa: E402
from repro.synthetic.cache import load_or_generate  # noqa: E402
from repro.synthetic.stream import SCALE_PRESETS, scale_world_spec  # noqa: E402

#: Mid-tail predicates of the skewed family: selective enough that the
#: 3-pattern chain stays tractable for the scalar reference at 10M.
JOIN_PREDICATES = ("p4", "p5", "p6")


def _best_of(fn, repeats: int) -> float:
    """Best wall time of ``fn`` over ``repeats`` runs, in milliseconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1000.0


def _join_query(spec):
    namespace = spec.namespace
    p1, p2, p3 = (namespace.term(name).value for name in JOIN_PREDICATES)
    return parse_query(
        f"SELECT ?a ?b ?c ?d WHERE {{ ?a <{p1}> ?b . "
        f"?b <{p2}> ?c . ?c <{p3}> ?d }}"
    )


def _repeats_for(triples: int) -> int:
    if triples <= 200_000:
        return 5
    if triples <= 2_000_000:
        return 3
    return 1


def bench_size(size_key: str, cache_root, refresh: bool) -> dict:
    spec = scale_world_spec(size_key)
    first = load_or_generate(spec, root=cache_root, refresh=refresh)
    started = time.perf_counter()
    second = load_or_generate(spec, root=cache_root)
    cache_open_s = time.perf_counter() - started
    world = second.world
    store = world.store

    build_seconds = first.world.build_seconds
    metrics = {
        "triples": world.triples,
        "terms": len(world.dictionary),
        "build_s": round(build_seconds, 4),
        "build_rate_tps": round(world.triples / build_seconds, 1) if build_seconds else None,
        "cache_hit_first": first.cache_hit,
        "cache_hit_second": second.cache_hit,
        "cache_open_s": round(cache_open_s, 4),
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }

    query = _join_query(spec)
    vectorized = QueryEvaluator(store)
    scalar = QueryEvaluator(store, use_vectorized=False)
    rows = len(vectorized.evaluate(query))
    assert len(scalar.evaluate(query)) == rows, "vectorized/scalar row-count mismatch"
    repeats = _repeats_for(world.triples)
    vec_ms = _best_of(lambda: vectorized.evaluate(query), repeats)
    scalar_ms = _best_of(lambda: scalar.evaluate(query), repeats)
    metrics.update(
        {
            "join3_rows": rows,
            "join3_vec_ms": round(vec_ms, 3),
            "join3_scalar_ms": round(scalar_ms, 3),
            "join3_speedup": round(scalar_ms / vec_ms, 2) if vec_ms else None,
        }
    )
    return metrics


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--label", default="dev")
    parser.add_argument("--out", default="BENCH_scale.json")
    parser.add_argument(
        "--sizes",
        default="13k,100k,1m,10m",
        help="comma-separated preset names (subset of %s)" % ",".join(SCALE_PRESETS),
    )
    parser.add_argument(
        "--cache-root",
        default=None,
        help="world cache directory (default: REPRO_WORLD_CACHE / ~/.cache/repro-worlds)",
    )
    parser.add_argument(
        "--refresh",
        action="store_true",
        help="force regeneration even when the cache holds the world",
    )
    parser.add_argument(
        "--check",
        metavar="COMMITTED",
        default=None,
        help="committed BENCH_scale.json to guard against regressions",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=3.0,
        help="allowed slowdown/throughput-loss factor for --check (default 3.0)",
    )
    parser.add_argument(
        "--noise-floor",
        type=float,
        default=0.5,
        help="absolute slack in ms added to every *_ms threshold",
    )
    args = parser.parse_args()

    keys = [key.strip().lower() for key in args.sizes.split(",") if key.strip()]
    for key in keys:
        if key not in SCALE_PRESETS:
            parser.error(f"unknown size {key!r} (known: {', '.join(SCALE_PRESETS)})")
    # Ascending order keeps peak_rss_kb meaningful (see module docstring).
    keys.sort(key=lambda key: SCALE_PRESETS[key])

    cache_root = Path(args.cache_root) if args.cache_root else None
    sizes = {}
    for key in keys:
        sizes[key] = bench_size(key, cache_root, args.refresh)
        print(f"{key}: {json.dumps(sizes[key])}")

    results = {
        "benchmark": "benchmarks/record_scale.py",
        "preset": "scale_world_spec family (streamed ID-column worlds)",
        "join_predicates": list(JOIN_PREDICATES),
        "label": args.label,
        "sizes": sizes,
    }
    Path(args.out).write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")

    if args.check:
        committed = json.loads(Path(args.check).read_text(encoding="utf-8"))
        failures = []
        checked = 0
        for key in keys:
            reference = committed.get("sizes", {}).get(key, {})
            measured_size = sizes[key]
            for metric, reference_value in reference.items():
                measured = measured_size.get(metric)
                if not isinstance(reference_value, (int, float)) or not isinstance(
                    measured, (int, float)
                ):
                    continue
                if metric.endswith("_ms"):
                    checked += 1
                    limit = reference_value * args.max_regression + args.noise_floor
                    if measured > limit:
                        failures.append((key, metric, reference_value, measured, "slower"))
                elif metric.endswith("_tps"):
                    checked += 1
                    limit = reference_value / args.max_regression
                    if measured < limit:
                        failures.append((key, metric, reference_value, measured, "lower"))
        for key, metric, reference_value, measured, direction in failures:
            print(
                f"REGRESSION {key}/{metric}: {measured:.3f} is {direction} than "
                f"{args.max_regression:g}x headroom on committed {reference_value:.3f}"
            )
        if failures:
            sys.exit(2)
        print(f"regression check ok ({checked} metrics, {args.max_regression:g}x headroom)")


if __name__ == "__main__":
    main()
