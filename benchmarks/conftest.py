"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark prints the table/series it reproduces (so the numbers are
visible in the pytest output) and also writes it under
``benchmarks/results/`` so EXPERIMENTS.md can reference stable artefacts.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.synthetic.generator import generate_world  # noqa: E402
from repro.synthetic.presets import (  # noqa: E402
    movie_world_spec,
    music_world_spec,
    yago_dbpedia_spec,
)

RESULTS_DIR = Path(__file__).parent / "results"


#: Reports produced during this session, echoed in the terminal summary.
_SESSION_REPORTS: list[tuple[str, str]] = []


def save_report(name: str, text: str) -> None:
    """Print a benchmark report and persist it under ``benchmarks/results/``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    _SESSION_REPORTS.append((name, text))
    print(f"\n{text}\n", file=sys.stderr)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Echo every reproduced table after the run (outside stdout capture)."""
    if not _SESSION_REPORTS:
        return
    terminalreporter.write_sep("=", "reproduced tables (also in benchmarks/results/)")
    for name, text in _SESSION_REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"[{name}]")
        for line in text.splitlines():
            terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def paper_scale_world():
    """The full-size YAGO-like / DBpedia-like pair (92 vs 1313 relations)."""
    return generate_world(yago_dbpedia_spec())


@pytest.fixture(scope="session")
def medium_world():
    """A reduced pair used by the sweep benchmarks to keep runtimes short."""
    spec = yago_dbpedia_spec(
        families=15,
        yago_relation_count=45,
        dbpedia_relation_count=150,
        people=280,
        works=200,
        places=90,
        orgs=70,
        seed=2016,
    )
    return generate_world(spec)


@pytest.fixture(scope="session")
def movie_world():
    """The §2.2 movie world (overlap mistaken for subsumption)."""
    return generate_world(movie_world_spec(films=200, people=240))


@pytest.fixture(scope="session")
def music_world():
    """The §2.2 music world (subsumption mistaken for equivalence)."""
    return generate_world(music_world_spec(artists=220, works=420))
