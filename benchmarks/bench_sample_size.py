"""E2 — Sample-size sweep (extension).

The paper fixes the sample size at 10 subject entities and claims that
"very small samples" suffice.  This benchmark sweeps the sample size and
reports precision/F1 of the three methods in the yago ⊂ dbpedia direction,
showing where the quality saturates and how the query cost grows.
"""

import pytest

from repro.align.config import AlignmentConfig
from repro.evaluation.experiment import AlignmentExperiment
from repro.evaluation.tables import TextTable

from benchmarks.conftest import save_report

SAMPLE_SIZES = (2, 5, 10, 20)


def run_sweep(world) -> TextTable:
    experiment = AlignmentExperiment(world, distractor_relations=3)
    table = TextTable(
        ["sample size", "method", "P", "F1", "endpoint queries"],
        title="Sample-size sweep (yago ⊂ dbpedia direction)",
    )
    for sample_size in SAMPLE_SIZES:
        configs = (
            ("pca", AlignmentConfig.paper_pca_baseline(sample_size)),
            ("cwa", AlignmentConfig.paper_cwa_baseline(sample_size)),
            ("ubs", AlignmentConfig.paper_ubs(sample_size)),
        )
        for method_name, config in configs:
            result = experiment.run_direction("yago", "dbpedia", config)
            evaluation = experiment.evaluate_direction("yago", "dbpedia", result)
            table.add_row(
                sample_size,
                method_name,
                evaluation.precision,
                evaluation.f1,
                int(result.total_queries()),
            )
        table.add_separator()
    return table


@pytest.mark.benchmark(group="sample-size")
def test_sample_size_sweep(benchmark, medium_world):
    table = benchmark.pedantic(run_sweep, args=(medium_world,), rounds=1, iterations=1)
    save_report("sample_size_sweep", table.render())
    assert table.rows, "sweep must produce rows"
