"""E1 — Reproduction of the paper's Table 1 (the only table in the paper).

"Alignment subsumptions – YAGO and DBpedia relations": precision and F1 of
the accepted subsumptions in both directions (yago ⊂ dbpd, dbpd ⊂ yago) for

* SSE + pca_conf (τ > 0.3),
* SSE + cwa_conf (τ > 0.1),
* UBS + pca_conf,

at a sample size of 10 subject entities.  Following the paper's protocol,
each method's τ is also re-selected to maximise the average F1 over both
directions; both variants (paper thresholds and selected thresholds) are
reported.
"""

import pytest

from repro.evaluation.experiment import run_table1_experiment
from repro.evaluation.tables import TextTable

from benchmarks.conftest import save_report


def _reference_rows() -> TextTable:
    """The numbers published in the paper, for side-by-side comparison."""
    table = TextTable(
        ["method", "tau", "P (yago ⊂ dbpd)", "F1 (yago ⊂ dbpd)", "P (dbpd ⊂ yago)", "F1 (dbpd ⊂ yago)"],
        title="Paper Table 1 (published values)",
    )
    table.add_row("pca", 0.3, 0.55, 0.58, 0.51, 0.48)
    table.add_row("cwa", 0.1, 0.56, 0.59, 0.55, 0.53)
    table.add_row("ubs", "-", 0.95, 0.97, 0.91, 0.82)
    return table


@pytest.mark.benchmark(group="table1")
def test_table1_with_paper_thresholds(benchmark, paper_scale_world):
    """Table 1 with the thresholds exactly as published (τ>0.3 pca, τ>0.1 cwa)."""
    report = benchmark.pedantic(
        run_table1_experiment,
        kwargs=dict(
            world=paper_scale_world,
            sample_size=10,
            distractor_relations=5,
            select_threshold=False,
        ),
        rounds=1,
        iterations=1,
    )
    text = "\n\n".join(
        [report.to_table().render(), _reference_rows().render()]
    )
    save_report("table1_paper_thresholds", text)

    for direction in report.method("ubs").directions:
        ubs = report.method("ubs").directions[direction]
        pca = report.method("pca").directions[direction]
        cwa = report.method("cwa").directions[direction]
        assert ubs.precision >= pca.precision
        assert ubs.precision >= cwa.precision
        assert ubs.f1 >= pca.f1


@pytest.mark.benchmark(group="table1")
def test_table1_with_selected_thresholds(benchmark, paper_scale_world):
    """Table 1 with τ selected to maximise the average F1 (the paper's protocol)."""
    report = benchmark.pedantic(
        run_table1_experiment,
        kwargs=dict(
            world=paper_scale_world,
            sample_size=10,
            distractor_relations=5,
            select_threshold=True,
        ),
        rounds=1,
        iterations=1,
    )
    save_report("table1_selected_thresholds", report.to_table().render())

    ubs_precisions = [d.precision for d in report.method("ubs").directions.values()]
    assert min(ubs_precisions) >= 0.7
    assert report.method("ubs").average_f1() >= max(
        report.method("pca").average_f1(), report.method("cwa").average_f1()
    ) - 0.02
