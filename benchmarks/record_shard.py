"""Record sharded-store benchmark numbers into ``BENCH_shard.json``.

Two families of metrics on the largest synthetic preset (the paper-scale
YAGO-like/DBpedia-like pair), at 1/2/4/8 shards against the PR 2
single-store baseline:

* **Sharded build time** — ``build_shards{n}_ms``: bulk-loading the
  preset's triples into a :class:`ShardedTripleStore` (per-shard columnar
  builds on a thread pool) vs ``build_single_ms`` (one
  ``TripleStore.bulk_load``).
* **Wave throughput** — ``wave_shards{n}_qps``: an alignment-style query
  batch (VALUES entity descriptions, per-subject ASK probes, relation
  counts) issued as concurrent waves by the
  :class:`~repro.endpoint.simulation.WaveScheduler` against a sharded
  :class:`~repro.endpoint.simulation.SimulatedSparqlEndpoint`, vs
  ``wave_seq_qps``: the same queries issued sequentially against the
  single-store endpoint.  Both endpoints charge the same simulated
  per-query latency (scaled from the public-endpoint policy's virtual
  cost), the quantity that bounds real experiments; overlapping waves
  hide it the way an async client hides network round-trips.

Usage::

    PYTHONPATH=src python benchmarks/record_shard.py --label pr3 --out BENCH_shard.json

``--check COMMITTED.json`` turns the run into a CI regression guard:
``*_ms`` metrics must not exceed the committed numbers by more than
``--max-regression``, and ``*_qps`` metrics must not fall below the
committed numbers by more than the same factor.  ``--smoke`` uses a much
smaller world (cheaper queries, identical latency model), so honest code
clears the committed thresholds comfortably.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

_ROOT = Path(__file__).parent.parent
_SRC = _ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.endpoint.policy import AccessPolicy  # noqa: E402
from repro.endpoint.simulation import (  # noqa: E402
    SimulatedSparqlEndpoint,
    WaveScheduler,
    sharded_endpoint,
)
from repro.rdf.ntriples import term_to_ntriples  # noqa: E402
from repro.shard.sharded_store import ShardedTripleStore  # noqa: E402
from repro.store.triplestore import TripleStore  # noqa: E402
from repro.synthetic.generator import generate_world  # noqa: E402
from repro.synthetic.presets import yago_dbpedia_spec  # noqa: E402

SHARD_COUNTS = (1, 2, 4, 8)

#: Real seconds charged per virtual second of the policy's estimated cost.
#: public_endpoint() charges 0.35 virtual sec/query, so ~1.4 ms of real
#: latency per query — small enough to benchmark, large enough to dominate
#: a sequential client the way live endpoint latency does.
LATENCY_SCALE = 0.004


def _best_of(fn, repeats: int = 3) -> float:
    """Best wall time of ``fn`` over ``repeats`` runs, in milliseconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1000.0


def _policy() -> AccessPolicy:
    base = AccessPolicy.public_endpoint()
    # Full scans stay forbidden in spirit, but the workload below never
    # issues one; unlimited rows keep result handling identical per path.
    return AccessPolicy(
        max_queries=None,
        max_result_rows=base.max_result_rows,
        latency_per_query=base.latency_per_query,
        latency_per_row=base.latency_per_row,
        allow_full_scan=True,
    )


def _alignment_workload(kb, store, subjects_per_wave: int = 96) -> list:
    """Alignment-style query batch: VALUES descriptions, ASK probes, counts."""
    relations = sorted(kb.relations(), key=lambda info: -info.fact_count)[:4]
    top = relations[0].iri
    subjects = list(store.subjects(top))[:subjects_per_wave]
    queries = []
    for start in range(0, len(subjects), 8):
        chunk = subjects[start : start + 8]
        values = " ".join(term_to_ntriples(subject) for subject in chunk)
        queries.append(f"SELECT ?s ?p ?o WHERE {{ VALUES ?s {{ {values} }} ?s ?p ?o }}")
    for subject in subjects:
        nt = term_to_ntriples(subject)
        queries.append(f"ASK {{ {nt} <{top.value}> ?o }}")
    for info in relations:
        queries.append(
            f"SELECT (COUNT(*) AS ?c) WHERE {{ ?s <{info.iri.value}> ?o }}"
        )
    return queries


def run_benchmarks(spec=None) -> dict:
    world = generate_world(spec if spec is not None else yago_dbpedia_spec())
    yago = world.kb("yago")
    store = yago.store
    triples = list(store)
    results: dict = {"triples": len(triples)}

    # ------------------------------------------------------------------ #
    # Build times: single columnar load vs shard-parallel loads.
    # ------------------------------------------------------------------ #
    results["build_single_ms"] = _best_of(
        lambda: TripleStore(name="bench").bulk_load(triples)
    )
    for count in SHARD_COUNTS:
        results[f"build_shards{count}_ms"] = _best_of(
            lambda count=count: ShardedTripleStore(
                num_shards=count, name="bench"
            ).bulk_load(triples, parallel=True)
        )

    # ------------------------------------------------------------------ #
    # Wave throughput: sequential single-store baseline vs sharded waves.
    # ------------------------------------------------------------------ #
    queries = _alignment_workload(yago, store)
    results["wave_queries"] = len(queries)
    policy = _policy()

    def sequential() -> float:
        endpoint = SimulatedSparqlEndpoint(
            store, policy=policy, latency_scale=LATENCY_SCALE
        )
        start = time.perf_counter()
        for query in queries:
            endpoint.query(query)
        return len(queries) / (time.perf_counter() - start)

    results["wave_seq_qps"] = round(max(sequential() for _ in range(3)), 2)

    for count in SHARD_COUNTS:
        sharded = ShardedTripleStore(num_shards=count, name="bench", triples=triples)
        endpoint = sharded_endpoint(sharded, policy=policy, latency_scale=LATENCY_SCALE)
        with WaveScheduler(endpoint, max_workers=count) as scheduler:
            best = 0.0
            for _ in range(3):
                wave = scheduler.run_wave(queries)
                assert not wave.errors
                best = max(best, wave.throughput)
        results[f"wave_shards{count}_qps"] = round(best, 2)

    for count in SHARD_COUNTS:
        baseline = results["wave_seq_qps"]
        if baseline:
            results[f"wave_shards{count}_speedup"] = round(
                results[f"wave_shards{count}_qps"] / baseline, 2
            )
    if results["build_single_ms"]:
        for count in SHARD_COUNTS:
            results[f"build_shards{count}_speedup"] = round(
                results["build_single_ms"] / results[f"build_shards{count}_ms"], 2
            )
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", required=True)
    parser.add_argument("--out", required=True)
    parser.add_argument("--smoke", action="store_true", help="tiny run for CI smoke checks")
    parser.add_argument(
        "--check",
        default=None,
        metavar="COMMITTED_JSON",
        help="fail when *_ms regresses above, or *_qps falls below, the "
        "committed artefact by more than --max-regression",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=2.0,
        help="allowed slowdown/throughput-loss factor for --check (default 2.0)",
    )
    parser.add_argument(
        "--noise-floor",
        type=float,
        default=0.05,
        help="absolute slack in ms added to every *_ms threshold",
    )
    args = parser.parse_args()

    spec = None
    if args.smoke:
        spec = yago_dbpedia_spec(families=5, people=60, works=40, places=20, orgs=15)

    results = {
        "benchmark": "benchmarks/record_shard.py",
        "preset": (
            "smoke world" if args.smoke
            else "yago_dbpedia_spec() (paper-scale, largest preset)"
        ),
        "baseline": "PR 2 single TripleStore + sequential SimulatedSparqlEndpoint",
        "latency_scale": LATENCY_SCALE,
        "label": args.label,
        "results": run_benchmarks(spec),
    }
    Path(args.out).write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(results, indent=2))

    if args.check:
        committed = json.loads(Path(args.check).read_text(encoding="utf-8"))
        reference = committed.get("results", {})
        failures = []
        for key, reference_value in reference.items():
            measured = results["results"].get(key)
            if not isinstance(reference_value, (int, float)) or not isinstance(
                measured, (int, float)
            ):
                continue
            if key.endswith("_ms"):
                limit = reference_value * args.max_regression + args.noise_floor
                if measured > limit:
                    failures.append((key, reference_value, measured, "slower"))
            elif key.endswith("_qps"):
                limit = reference_value / args.max_regression
                if measured < limit:
                    failures.append((key, reference_value, measured, "lower"))
        if failures:
            for key, reference_value, measured, direction in failures:
                print(
                    f"REGRESSION {key}: {measured:.4f} is {direction} than "
                    f"{args.max_regression:g}x headroom on committed {reference_value:.4f}"
                )
            sys.exit(2)
        checked = sum(
            1 for key in reference if key.endswith("_ms") or key.endswith("_qps")
        )
        print(f"regression check ok ({checked} metrics, {args.max_regression:g}x headroom)")


if __name__ == "__main__":
    main()
