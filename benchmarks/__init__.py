"""Benchmark harness reproducing the paper's evaluation (see DESIGN.md §4)."""
