"""Record live-mutation benchmark numbers into ``BENCH_mutation.json``.

Three families of metrics for the live-mutable store lifecycle, on the
paper-scale synthetic preset:

* **Delta persistence** — ``delta_save_ms`` vs ``full_save_ms``: cost of
  appending a mutation burst as per-shard snapshot deltas
  (:meth:`~repro.shard.sharded_store.ShardedTripleStore.save_delta`)
  against rewriting the whole sharded snapshot; ``delta_open_ms`` is the
  cold reopen that replays the chain, ``compact_ms`` folds it back into
  fresh base files, and ``rebalance_ms`` re-splits the boundaries from
  live shard counts.
* **Handover latency** — a live query wave hammers a
  :class:`~repro.endpoint.simulation.SimulatedSparqlEndpoint` while
  :meth:`refresh` mutates, persists and swaps the serving generation:
  ``steady_p99_ms`` (no refresh in sight) vs ``handover_p99_ms``
  (queries overlapping the refresh window).  The refresh pauses intake
  only for the mutation+persist instant (``refresh_paused_ms``), so the
  spike must stay bounded — and **zero** queries may error.
* **Process generation swap** — ``process_refresh_ms``: a full refresh
  on the worker-process backend, including booting the next generation's
  pool over the refreshed snapshot while the bridge keeps serving.

Usage::

    PYTHONPATH=src python benchmarks/record_mutation.py --label pr10 --out BENCH_mutation.json

``--check COMMITTED.json`` turns the run into a CI regression guard:
``*_ms`` metrics must not exceed the committed numbers by more than
``--max-regression``.  ``--smoke`` uses a much smaller world for cheap
CI runs; the handover section additionally hard-fails on any errored or
dropped query regardless of thresholds.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import tempfile
import threading
import time
from pathlib import Path

_ROOT = Path(__file__).parent.parent
_SRC = _ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.endpoint.policy import AccessPolicy  # noqa: E402
from repro.endpoint.simulation import SimulatedSparqlEndpoint  # noqa: E402
from repro.rdf.namespace import Namespace  # noqa: E402
from repro.rdf.ntriples import term_to_ntriples  # noqa: E402
from repro.rdf.triple import Triple  # noqa: E402
from repro.shard.sharded_store import ShardedTripleStore  # noqa: E402
from repro.synthetic.generator import generate_world  # noqa: E402
from repro.synthetic.presets import yago_dbpedia_spec  # noqa: E402

EX = Namespace("http://bench.mutation/")

NUM_SHARDS = 4
BURST = 2_000
HAMMER_THREADS = 4
STEADY_SECONDS = 0.6
TAIL_SECONDS = 0.25


def _burst_triples(count: int, start: int = 0) -> list:
    return [
        Triple(EX[f"burst{start + i}"], EX.touched, EX[f"o{i % 17}"])
        for i in range(count)
    ]


def _best_of(fn, repeats: int = 3) -> float:
    """Best wall time of ``fn`` over ``repeats`` runs, in milliseconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1000.0


def _p99(samples: list) -> float:
    if not samples:
        return 0.0
    if len(samples) == 1:
        return samples[0]
    return statistics.quantiles(samples, n=100)[98]


def _bench_delta_lifecycle(triples: list, results: dict) -> None:
    tmp = Path(tempfile.mkdtemp(prefix="bench-mutation-"))
    store = ShardedTripleStore(num_shards=NUM_SHARDS, name="bench")
    store.bulk_load(triples, parallel=True)
    base_dir = tmp / "base"
    store.save(base_dir)

    burst = _burst_triples(BURST)
    for triple in burst:
        store.add(triple)
    results["burst_triples"] = len(burst)

    # Full rewrite baseline: the same mutated state into fresh
    # directories, from a copy — saving the original elsewhere would
    # consume its journals and forfeit the delta path below.
    clone = store.copy()
    round_counter = [0]

    def full_save():
        round_counter[0] += 1
        clone.save(tmp / f"full{round_counter[0]}")

    results["full_save_ms"] = _best_of(full_save)

    start = time.perf_counter()
    wrote = store.save_delta(base_dir)
    delta_seconds = time.perf_counter() - start
    assert wrote, "the burst must produce a delta"
    results["delta_save_ms"] = delta_seconds * 1000.0
    results["delta_triples_per_s"] = round(len(burst) / delta_seconds, 1)
    if results["delta_save_ms"]:
        results["delta_vs_full_speedup"] = round(
            results["full_save_ms"] / results["delta_save_ms"], 2
        )

    results["delta_open_ms"] = _best_of(
        lambda: ShardedTripleStore.open(base_dir)
    )
    reopened = ShardedTripleStore.open(base_dir)
    assert len(reopened) == len(store), "delta chain must replay fully"

    start = time.perf_counter()
    store.compact(base_dir)
    results["compact_ms"] = (time.perf_counter() - start) * 1000.0
    results["compacted_open_ms"] = _best_of(
        lambda: ShardedTripleStore.open(base_dir)
    )

    start = time.perf_counter()
    moved = store.rebalance()["moved"]
    results["rebalance_ms"] = (time.perf_counter() - start) * 1000.0
    results["rebalance_moved"] = moved


def _bench_handover(triples: list, results: dict, backend: str) -> None:
    store = ShardedTripleStore(num_shards=NUM_SHARDS, name="bench")
    store.bulk_load(triples, parallel=True)
    probes = [
        f"ASK {{ {term_to_ntriples(triple.subject)} ?p ?o }}"
        for triple in triples[:64]
    ]
    policy = AccessPolicy(
        max_queries=None, max_result_rows=None, allow_full_scan=True
    )
    tmp = Path(tempfile.mkdtemp(prefix="bench-handover-"))
    kwargs = {}
    if backend == "process":
        kwargs = {"backend": "process", "snapshot_dir": tmp / "snap", "pool_size": 2}
    else:
        store.save(tmp / "snap")
    with SimulatedSparqlEndpoint(store, policy=policy, **kwargs) as endpoint:
        latencies: list = []  # (finished_at, seconds, started_before_refresh)
        errors: list = []
        stop = threading.Event()
        refresh_window = [None, None]

        def hammer(index: int) -> None:
            cursor = index
            while not stop.is_set():
                query = probes[cursor % len(probes)]
                cursor += 1
                begin = time.perf_counter()
                try:
                    endpoint.query(query)
                except Exception as error:  # noqa: BLE001 - hard gate below
                    errors.append(error)
                else:
                    latencies.append((begin, time.perf_counter() - begin))

        threads = [
            threading.Thread(target=hammer, args=(i,))
            for i in range(HAMMER_THREADS)
        ]
        for thread in threads:
            thread.start()
        try:
            time.sleep(STEADY_SECONDS)
            refresh_window[0] = time.perf_counter()
            report = endpoint.refresh(
                mutate=lambda s: [s.add(t) for t in _burst_triples(500, start=90_000)],
                rebalance=True,
            )
            refresh_window[1] = time.perf_counter()
            time.sleep(TAIL_SECONDS)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        if errors:
            raise SystemExit(
                f"handover ({backend}) errored {len(errors)} queries: {errors[:3]}"
            )
        steady = [
            seconds * 1000.0
            for begin, seconds in latencies
            if begin + seconds < refresh_window[0]
        ]
        overlapping = [
            seconds * 1000.0
            for begin, seconds in latencies
            if begin + seconds >= refresh_window[0] and begin <= refresh_window[1]
        ]
        prefix = "" if backend == "thread" else "process_"
        results[f"{prefix}steady_p99_ms"] = round(_p99(steady), 3)
        results[f"{prefix}handover_p99_ms"] = round(_p99(overlapping), 3)
        results[f"{prefix}refresh_paused_ms"] = round(
            report["paused_seconds"] * 1000.0, 3
        )
        results[f"{prefix}handover_queries"] = len(latencies)
        if backend == "process":
            results["process_refresh_ms"] = round(
                (refresh_window[1] - refresh_window[0]) * 1000.0, 3
            )


def run_benchmarks(spec=None) -> dict:
    world = generate_world(spec if spec is not None else yago_dbpedia_spec())
    triples = list(world.kb("yago").store)
    results: dict = {"triples": len(triples)}
    _bench_delta_lifecycle(triples, results)
    _bench_handover(triples, results, backend="thread")
    _bench_handover(triples, results, backend="process")
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", required=True)
    parser.add_argument("--out", required=True)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny run for CI smoke checks"
    )
    parser.add_argument(
        "--check",
        default=None,
        metavar="COMMITTED_JSON",
        help="fail when any *_ms metric regresses above the committed "
        "artefact by more than --max-regression",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=3.0,
        help="allowed slowdown factor for --check (default 3.0 — handover "
        "percentiles are scheduler-sensitive on shared runners)",
    )
    parser.add_argument(
        "--noise-floor",
        type=float,
        default=2.0,
        help="absolute slack in ms added to every *_ms threshold",
    )
    args = parser.parse_args()

    spec = None
    if args.smoke:
        spec = yago_dbpedia_spec(families=5, people=60, works=40, places=20, orgs=15)

    results = {
        "benchmark": "benchmarks/record_mutation.py",
        "preset": (
            "smoke world" if args.smoke
            else "yago_dbpedia_spec() (paper-scale, largest preset)"
        ),
        "baseline": "full sharded snapshot rewrite + steady-state query latency",
        "label": args.label,
        "results": run_benchmarks(spec),
    }
    Path(args.out).write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(results, indent=2))

    if args.check:
        committed = json.loads(Path(args.check).read_text(encoding="utf-8"))
        reference = committed.get("results", {})
        failures = []
        for key, reference_value in reference.items():
            measured = results["results"].get(key)
            if not key.endswith("_ms") or not isinstance(
                reference_value, (int, float)
            ) or not isinstance(measured, (int, float)):
                continue
            limit = reference_value * args.max_regression + args.noise_floor
            if measured > limit:
                failures.append((key, reference_value, measured))
        if failures:
            for key, reference_value, measured in failures:
                print(
                    f"REGRESSION {key}: {measured:.4f}ms exceeds "
                    f"{args.max_regression:g}x headroom on committed "
                    f"{reference_value:.4f}ms"
                )
            sys.exit(2)
        checked = sum(1 for key in reference if key.endswith("_ms"))
        print(
            f"regression check ok ({checked} metrics, "
            f"{args.max_regression:g}x headroom)"
        )


if __name__ == "__main__":
    main()
