"""E6 — Substrate micro-benchmarks (engineering, not from the paper).

Throughput of the triple-store pattern matching and of the SPARQL engine on
the query shapes the aligner issues.  These keep the substrate honest: a
regression here silently inflates every experiment's runtime.
"""

import pytest

from repro.endpoint.client import EndpointClient
from repro.endpoint.endpoint import SparqlEndpoint
from repro.sparql.evaluate import evaluate_query
from repro.sparql.parser import parse_query


@pytest.fixture(scope="module")
def yago_store(medium_world):
    return medium_world.kb("yago").store


@pytest.fixture(scope="module")
def sample_relation(medium_world):
    infos = sorted(
        medium_world.kb("yago").relations(), key=lambda info: -info.fact_count
    )
    return infos[0].iri


@pytest.mark.benchmark(group="substrate-store")
def test_store_pattern_match_by_predicate(benchmark, yago_store, sample_relation):
    result = benchmark(lambda: sum(1 for _ in yago_store.match(predicate=sample_relation)))
    assert result > 0


@pytest.mark.benchmark(group="substrate-store")
def test_store_membership_probe(benchmark, yago_store):
    triples = list(yago_store.match())[:200]
    result = benchmark(lambda: sum(1 for triple in triples if triple in yago_store))
    assert result == len(triples)


@pytest.mark.benchmark(group="substrate-sparql")
def test_sparql_parse_throughput(benchmark):
    query = (
        "SELECT ?s ?o WHERE { VALUES ?s { <http://sofya.repro/yago/person_00001> } "
        "?s <http://sofya.repro/yago/y_equivalent00> ?o } LIMIT 50"
    )
    parsed = benchmark(parse_query, query)
    assert parsed is not None


@pytest.mark.benchmark(group="substrate-sparql")
def test_sparql_join_query(benchmark, yago_store, sample_relation):
    query = (
        f"SELECT ?s ?o WHERE {{ ?s <{sample_relation.value}> ?o . "
        f"?s <http://www.w3.org/2002/07/owl#sameAs> ?x }} LIMIT 100"
    )
    result = benchmark(evaluate_query, yago_store, query)
    assert len(result) >= 0


@pytest.mark.benchmark(group="substrate-sparql")
def test_sparql_count_query(benchmark, yago_store, sample_relation):
    query = f"SELECT (COUNT(*) AS ?c) WHERE {{ ?s <{sample_relation.value}> ?o }}"
    result = benchmark(evaluate_query, yago_store, query)
    assert result.scalar_int() > 0


@pytest.mark.benchmark(group="substrate-endpoint")
def test_endpoint_client_batched_facts(benchmark, medium_world, sample_relation):
    yago = medium_world.kb("yago")
    client = EndpointClient(SparqlEndpoint(yago.store, name="bench"))
    subjects = list(yago.store.subjects(sample_relation))[:20]
    pairs = benchmark(client.facts_of_subjects, subjects, sample_relation)
    assert pairs
