"""E4 — On-the-fly cost: endpoint queries and rows vs. full-dump baselines.

The introduction motivates SOFYA with the impracticality of downloading
entire KBs ("YAGO requires 100GB of disk") to answer a single query.  This
benchmark quantifies the claim on the synthetic pair: how many endpoint
queries and result rows SOFYA needs per aligned relation, against the
number of triples a full-snapshot miner must scan, and it checks that the
algorithm still works under a restrictive public-endpoint policy.
"""

import pytest

from repro.align.config import AlignmentConfig
from repro.baselines.full_snapshot import FullSnapshotMiner
from repro.baselines.paris_like import ParisLikeAligner
from repro.endpoint.policy import AccessPolicy
from repro.evaluation.experiment import AlignmentExperiment
from repro.evaluation.tables import TextTable

from benchmarks.conftest import save_report


def run_cost_comparison(world) -> TextTable:
    experiment = AlignmentExperiment(
        world, distractor_relations=0, policy=AccessPolicy.public_endpoint()
    )
    result = experiment.run_direction("yago", "dbpedia", AlignmentConfig.paper_ubs())
    evaluation = experiment.evaluate_direction("yago", "dbpedia", result)

    aligned_relations = max(len(result), 1)
    sofya_queries = result.total_queries()
    sofya_rows = sum(stats.get("rows", 0.0) for stats in result.query_statistics.values())
    sofya_seconds = sum(
        stats.get("virtual_seconds", 0.0) for stats in result.query_statistics.values()
    )

    miner = FullSnapshotMiner(
        premise_kb=world.kb("yago"), conclusion_kb=world.kb("dbpedia"), links=world.links
    )
    miner.mine(conclusion_relations=sorted(
        world.ground_truth.conclusion_relations("yago", "dbpedia"), key=lambda i: i.value
    ))
    paris = ParisLikeAligner(
        premise_kb=world.kb("yago"), conclusion_kb=world.kb("dbpedia"), links=world.links
    )
    paris.align()

    dataset_triples = len(world.kb("yago").store) + len(world.kb("dbpedia").store)

    table = TextTable(
        ["approach", "data touched", "per aligned relation", "precision"],
        title="Access cost: on-the-fly alignment vs. full-snapshot mining",
    )
    table.add_row(
        "SOFYA (UBS, endpoints only)",
        f"{sofya_rows:.0f} result rows / {sofya_queries:.0f} queries "
        f"({sofya_seconds:.0f}s simulated latency)",
        f"{sofya_queries / aligned_relations:.1f} queries",
        evaluation.precision,
    )
    table.add_row(
        "Full-snapshot CWA/PCA miner",
        f"{miner.triples_scanned} triples scanned (full dumps: {dataset_triples})",
        "entire dump",
        "-",
    )
    table.add_row(
        "PARIS-like aligner",
        f"{dataset_triples} triples scanned (full dumps)",
        "entire dump",
        "-",
    )
    return table


@pytest.mark.benchmark(group="query-budget")
def test_query_budget(benchmark, medium_world):
    table = benchmark.pedantic(run_cost_comparison, args=(medium_world,), rounds=1, iterations=1)
    save_report("query_budget", table.render())

    # The headline claim: the data SOFYA touches is a small fraction of the dumps.
    sofya_row = table.rows[0]
    rows_touched = float(sofya_row[1].split(" ")[0])
    dump_size = len(medium_world.kb("yago").store) + len(medium_world.kb("dbpedia").store)
    assert rows_touched < dump_size
