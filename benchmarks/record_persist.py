"""Record snapshot-persistence benchmark numbers into ``BENCH_persist.json``.

Measures, on the largest synthetic preset (the paper-scale
YAGO-like/DBpedia-like pair):

* **Cold open vs rebuild** — ``cold_open_ms``: ``TripleStore.open`` of a
  saved snapshot (mmap, checksums verified) vs ``rebuild_ms``: the
  columnar ``bulk_load`` of the same triples from Triple objects (the
  path every process start paid before this PR).  ``cold_open_speedup``
  is the headline number; the acceptance gate requires >= 5x.
* **First-query latency** — ``first_join_cold_ms``: the first planned
  3-pattern join on a freshly cold-opened store (lazy dictionary probes,
  frozen-index bisects, first-page faults and all) vs
  ``first_join_warm_ms``: the same join on the warm store with a fresh
  evaluator (plan cache cold).  The gate requires the ratio <= 1.5.
* **Resident memory** — ``rss_cold_open_kb`` vs
  ``rss_full_materialise_kb``: VmRSS of a subprocess that cold-opens the
  snapshot and runs one join, vs one that loads the same snapshot into
  memory and promotes everything to the writable representation (the
  in-memory store's footprint).
* **Sharded snapshots** — save/open round-trip times for the 4-shard
  layout (shared dictionary file + per-shard columns).

Usage::

    PYTHONPATH=src python benchmarks/record_persist.py --label pr4 --out BENCH_persist.json

``--check`` turns the run into the CI acceptance guard: it fails unless
``cold_open_speedup >= --min-open-speedup`` (default 5.0) and
``first_join_cold_over_warm <= --max-first-join-ratio`` (default 1.5).
``--smoke`` uses a much smaller world for quick sanity runs (the CI
guard runs the full preset — open time is size-independent, so the large
world is the honest one for the speedup claim).
"""

from __future__ import annotations

import argparse
import json
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

_ROOT = Path(__file__).parent.parent
_SRC = _ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.shard.sharded_store import ShardedTripleStore  # noqa: E402
from repro.sparql.evaluate import QueryEvaluator  # noqa: E402
from repro.sparql.parser import parse_query  # noqa: E402
from repro.store.triplestore import TripleStore  # noqa: E402
from repro.synthetic.generator import generate_world  # noqa: E402
from repro.synthetic.presets import yago_dbpedia_spec  # noqa: E402


def _best_of(fn, repeats: int = 5) -> float:
    """Best wall time of ``fn`` over ``repeats`` runs, in milliseconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1000.0


def _three_pattern_join(kb) -> str:
    """A planned 3-pattern star join guaranteed to produce solutions.

    Picks the three heaviest relations that actually co-occur on one
    subject (rather than the global top three, which may describe
    disjoint entity types and join to nothing).
    """
    fact_count = {
        info.iri.value: info.fact_count for info in kb.relations()
    }
    store = kb.store
    best: list = []
    for subject in store.subjects():
        predicates = [
            p for p in store.predicates_of(subject) if p.value in fact_count
        ]
        if len(predicates) >= 3:
            candidate = sorted(
                predicates, key=lambda p: -fact_count[p.value]
            )[:3]
            weight = sum(fact_count[p.value] for p in candidate)
            if not best or weight > best[0]:
                best = [weight, candidate]
    if not best:
        raise RuntimeError("preset world has no 3-relation star subject")
    r0, r1, r2 = (p.value for p in best[1])
    return (
        f"SELECT ?s ?o ?w ?z WHERE {{ ?s <{r0}> ?o . "
        f"?s <{r1}> ?w . ?s <{r2}> ?z }}"
    )


_RSS_SNIPPET = """
import sys
sys.path.insert(0, {src!r})
from repro.sparql.evaluate import QueryEvaluator
from repro.sparql.parser import parse_query
from repro.store.triplestore import TripleStore

store = TripleStore.open({snap!r}, mmap={use_mmap})
if {materialise}:
    # Promote everything: writable indexes, interning map, Triple maps —
    # the footprint of the in-memory representation.
    store._ensure_writable()
    _ = store.dictionary.ids_map
else:
    # Cold path: run the join once so the measurement includes the pages
    # a real first query actually touches.
    list(QueryEvaluator(store).evaluate(parse_query({query!r})))
with open("/proc/self/status", encoding="ascii") as handle:
    for line in handle:
        if line.startswith("VmRSS:"):
            print(line.split()[1])
            break
"""


def _subprocess_rss_kb(snap: Path, query: str, materialise: bool) -> float:
    """VmRSS (kB) of a child that opens the snapshot one way or the other."""
    code = _RSS_SNIPPET.format(
        src=str(_SRC),
        snap=str(snap),
        use_mmap=not materialise,
        materialise=materialise,
        query=query,
    )
    try:
        output = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
            timeout=300,
        ).stdout.strip()
        return float(output)
    except (subprocess.SubprocessError, ValueError, OSError):
        return 0.0  # /proc not available (non-Linux); metric is best-effort


def run_benchmarks(spec=None, repeats: int = 5) -> dict:
    tmp = Path(tempfile.mkdtemp(prefix="bench-persist-"))
    try:
        return _run_benchmarks(tmp, spec, repeats)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def _run_benchmarks(tmp: Path, spec, repeats: int) -> dict:
    world = generate_world(spec if spec is not None else yago_dbpedia_spec())
    kb = world.kb("yago")
    store = kb.store
    triples = list(store)
    query = _three_pattern_join(kb)
    results: dict = {"triples": len(triples)}

    snap = tmp / "world.snap"

    # ------------------------------------------------------------------ #
    # Rebuild vs save vs cold open.
    # ------------------------------------------------------------------ #
    results["rebuild_ms"] = _best_of(
        lambda: TripleStore(name="bench").bulk_load(triples), repeats
    )
    results["save_ms"] = _best_of(lambda: store.save(snap), repeats)
    results["snapshot_bytes"] = snap.stat().st_size
    results["cold_open_ms"] = _best_of(lambda: TripleStore.open(snap), repeats)
    results["cold_open_noverify_ms"] = _best_of(
        lambda: TripleStore.open(snap, verify=False), repeats
    )
    results["cold_open_speedup"] = round(
        results["rebuild_ms"] / results["cold_open_ms"], 2
    )

    # ------------------------------------------------------------------ #
    # First planned 3-pattern join: warm store (fresh evaluator, plan
    # cache cold) vs freshly cold-opened store.
    # ------------------------------------------------------------------ #
    parsed = parse_query(query)
    results["join_rows"] = len(list(QueryEvaluator(store).evaluate(parsed)))

    def warm_first_join() -> None:
        list(QueryEvaluator(store).evaluate(parsed))

    # More repeats than the other metrics: the gate below compares two
    # few-millisecond best-of timings as a ratio, so each side gets extra
    # trials to keep page-fault/scheduler noise out of the minimum.
    join_repeats = max(repeats, 9)
    cold_stores = [TripleStore.open(snap) for _ in range(join_repeats)]

    def cold_first_join() -> None:
        list(QueryEvaluator(cold_stores.pop()).evaluate(parsed))

    results["first_join_warm_ms"] = _best_of(warm_first_join, join_repeats)
    results["first_join_cold_ms"] = _best_of(cold_first_join, join_repeats)
    results["first_join_cold_over_warm"] = round(
        results["first_join_cold_ms"] / results["first_join_warm_ms"], 3
    )

    # ------------------------------------------------------------------ #
    # Resident memory: lazy mmap open vs fully materialised store.
    # ------------------------------------------------------------------ #
    results["rss_cold_open_kb"] = _subprocess_rss_kb(snap, query, materialise=False)
    results["rss_full_materialise_kb"] = _subprocess_rss_kb(
        snap, query, materialise=True
    )
    if results["rss_cold_open_kb"] and results["rss_full_materialise_kb"]:
        results["rss_ratio"] = round(
            results["rss_full_materialise_kb"] / results["rss_cold_open_kb"], 2
        )

    # ------------------------------------------------------------------ #
    # Sharded snapshot round trip (4 shards, shared dictionary file).
    # ------------------------------------------------------------------ #
    sharded = ShardedTripleStore(num_shards=4, name="bench", triples=triples)
    shard_dir = tmp / "sharded"
    results["sharded4_save_ms"] = _best_of(lambda: sharded.save(shard_dir), repeats)
    results["sharded4_cold_open_ms"] = _best_of(
        lambda: ShardedTripleStore.open(shard_dir), repeats
    )
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", required=True)
    parser.add_argument("--out", required=True)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny world for quick sanity runs"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail unless the acceptance thresholds below hold",
    )
    parser.add_argument(
        "--min-open-speedup",
        type=float,
        default=5.0,
        help="required rebuild/cold-open ratio (default 5.0)",
    )
    parser.add_argument(
        "--max-first-join-ratio",
        type=float,
        default=1.5,
        help="allowed cold/warm first-join ratio (default 1.5)",
    )
    args = parser.parse_args()

    spec = None
    if args.smoke:
        spec = yago_dbpedia_spec(families=5, people=60, works=40, places=20, orgs=15)

    results = {
        "benchmark": "benchmarks/record_persist.py",
        "preset": (
            "smoke world" if args.smoke
            else "yago_dbpedia_spec() (paper-scale, largest preset)"
        ),
        "baseline": "columnar bulk_load rebuild on every process start (PR 2/3)",
        "label": args.label,
        "results": run_benchmarks(spec),
    }
    Path(args.out).write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(results, indent=2))

    if args.check:
        measured = results["results"]
        failures = []
        if measured["cold_open_speedup"] < args.min_open_speedup:
            failures.append(
                f"cold_open_speedup {measured['cold_open_speedup']:.2f} "
                f"< required {args.min_open_speedup:g}x"
            )
        if measured["first_join_cold_over_warm"] > args.max_first_join_ratio:
            failures.append(
                f"first_join_cold_over_warm {measured['first_join_cold_over_warm']:.3f} "
                f"> allowed {args.max_first_join_ratio:g}x"
            )
        if failures:
            for failure in failures:
                print(f"ACCEPTANCE FAILURE: {failure}")
            sys.exit(2)
        print(
            f"acceptance check ok (open {measured['cold_open_speedup']:.1f}x >= "
            f"{args.min_open_speedup:g}x, first join "
            f"{measured['first_join_cold_over_warm']:.3f} <= "
            f"{args.max_first_join_ratio:g}x)"
        )


if __name__ == "__main__":
    main()
