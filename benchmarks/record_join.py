"""Record join-planner and bulk-load benchmark numbers into a JSON artefact.

Companion to ``record_substrate.py`` for the PR 2 hot paths: multi-pattern
SPARQL joins (cardinality-driven planner with merge/hash operators), the
columnar bulk-load path, and the membership probe.  The script is
*portable across revisions* — it only uses APIs present since PR 1 and
falls back when the new fast paths are absent (``bulk_load`` falls back to
``add_all``, the evaluator falls back to its only strategy) — so the same
file can be dropped into a PR 1 checkout to produce the baseline::

    # in a PR 1 worktree
    PYTHONPATH=src python benchmarks/record_join.py --label pr1 --out pr1.json
    # in the current tree
    PYTHONPATH=src python benchmarks/record_join.py --label pr2 --out pr2.json \
        --baseline pr1.json --combined BENCH_join.json

The join queries deliberately put the most selective pattern *last* in
query text: a realistic shape that PR 1's constant-count reordering could
not fix (all patterns have one constant) and the cardinality planner can.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

_ROOT = Path(__file__).parent.parent
_SRC = _ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.sparql.evaluate import QueryEvaluator  # noqa: E402
from repro.sparql.parser import parse_query  # noqa: E402
from repro.store.triplestore import TripleStore  # noqa: E402
from repro.synthetic.generator import generate_world  # noqa: E402
from repro.synthetic.presets import yago_dbpedia_spec  # noqa: E402

SAME_AS = "http://www.w3.org/2002/07/owl#sameAs"


def _best_of(fn, repeats: int = 5, inner: int = 1) -> float:
    """Best wall time of ``fn`` over ``repeats`` runs, in milliseconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        elapsed = (time.perf_counter() - start) / inner
        best = min(best, elapsed)
    return best * 1000.0


def run_benchmarks() -> dict:
    world = generate_world(yago_dbpedia_spec())
    yago = world.kb("yago")
    store = yago.store
    relations = sorted(yago.relations(), key=lambda info: -info.fact_count)
    big = relations[0].iri
    mid = relations[len(relations) // 2].iri
    small = relations[-1].iri

    evaluator = QueryEvaluator(store)
    join3 = parse_query(
        f"SELECT ?s ?o ?x WHERE {{ ?s <{big.value}> ?o . "
        f"?s <{SAME_AS}> ?x . ?s <{small.value}> ?n }}"
    )
    join4 = parse_query(
        f"SELECT ?s WHERE {{ ?s <{big.value}> ?o . ?s <{SAME_AS}> ?x . "
        f"?s <{mid.value}> ?m . ?s <{small.value}> ?n }}"
    )
    ask_skewed = parse_query(
        f"ASK {{ ?s <{big.value}> ?o . ?s <{mid.value}> ?m . "
        f"?s <{small.value}> ?n }}"
    )

    all_triples = [triple for kb in world.kbs.values() for triple in kb.store]

    def build_store() -> None:
        fresh = TripleStore(name="bench-load")
        loader = getattr(fresh, "bulk_load", None)
        if loader is None:  # PR 1: per-triple insertion was the only path
            fresh.add_all(all_triples)
        else:
            loader(all_triples)

    probes = list(store)[:500]

    return {
        "yago_triples": len(store),
        "preset_triples": len(all_triples),
        "sparql_join3_selective_last_ms": _best_of(
            lambda: evaluator.evaluate(join3)
        ),
        "sparql_join4_selective_last_ms": _best_of(
            lambda: evaluator.evaluate(join4)
        ),
        "sparql_ask_skewed_ms": _best_of(
            lambda: evaluator.evaluate(ask_skewed), inner=5
        ),
        "bulk_load_preset_ms": _best_of(build_store, repeats=5),
        "membership_probe_ms": _best_of(
            lambda: sum(1 for triple in probes if triple in store)
        ),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", required=True)
    parser.add_argument("--out", required=True)
    parser.add_argument("--baseline", default=None, help="baseline JSON to diff against")
    parser.add_argument("--combined", default=None, help="write combined before/after JSON")
    args = parser.parse_args()

    results = {"label": args.label, "results": run_benchmarks()}
    Path(args.out).write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(results, indent=2))

    if args.baseline and args.combined:
        baseline = json.loads(Path(args.baseline).read_text(encoding="utf-8"))
        speedups = {}
        for key, after_value in results["results"].items():
            before_value = baseline["results"].get(key)
            if key.endswith("_ms") and isinstance(before_value, (int, float)) and after_value:
                speedups[key.replace("_ms", "_speedup")] = round(before_value / after_value, 2)
        combined = {
            "benchmark": "benchmarks/record_join.py",
            "preset": "yago_dbpedia_spec() (paper-scale, largest preset)",
            "before": baseline,
            "after": results,
            "speedup": speedups,
        }
        # The membership satellite targets the *seed* number, not just PR 1:
        # surface it next to the new measurement when the substrate artefact
        # is available.
        substrate = _ROOT / "BENCH_substrate.json"
        if substrate.exists():
            try:
                seed = json.loads(substrate.read_text(encoding="utf-8"))["before"]["results"]
                combined["seed_reference"] = {
                    "membership_probe_ms": seed.get("membership_probe_ms")
                }
            except (KeyError, ValueError):  # pragma: no cover - defensive
                pass
        Path(args.combined).write_text(json.dumps(combined, indent=2) + "\n", encoding="utf-8")
        print(json.dumps(speedups, indent=2))


if __name__ == "__main__":
    main()
