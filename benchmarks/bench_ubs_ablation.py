"""E5 — Ablation of the UBS strategies on the paper's two worked examples.

§2.2 motivates UBS with two failure modes:

1. *Overlap mistaken for subsumption* (hasProducer vs directedBy) — checked
   on the movie world.
2. *Subsumption mistaken for equivalence* (composerOf vs creatorOf) —
   checked on the music world.

The ablation also varies the contradiction threshold ("only one case" vs
requiring more) and the incompleteness model (subject-level vs fact-level),
the design choices DESIGN.md lists.
"""

import dataclasses

import pytest

from repro.align.aligner import RemoteDataset, SofyaAligner
from repro.align.config import AlignmentConfig
from repro.evaluation.experiment import AlignmentExperiment
from repro.evaluation.tables import TextTable
from repro.synthetic.generator import generate_world
from repro.synthetic.presets import movie_world_spec

from benchmarks.conftest import save_report


def run_movie_ablation(movie_world) -> TextTable:
    experiment = AlignmentExperiment(movie_world, distractor_relations=0)
    table = TextTable(
        ["sampling", "contradiction threshold", "P", "R", "F1"],
        title="Case 2 ablation (movie world): overlap mistaken for subsumption",
    )
    variants = (
        ("SSE (baseline)", dataclasses.replace(AlignmentConfig.paper_pca_baseline()), "-"),
        ("UBS, 1 contradiction", AlignmentConfig.paper_ubs(), "1"),
        ("UBS, 3 contradictions",
         dataclasses.replace(AlignmentConfig.paper_ubs(), ubs_contradiction_threshold=3), "3"),
    )
    for label, config, threshold in variants:
        result = experiment.run_direction("imdb", "filmdb", config)
        evaluation = experiment.evaluate_direction("imdb", "filmdb", result)
        table.add_row(label, threshold, evaluation.precision, evaluation.metrics.recall, evaluation.f1)
    return table


def run_music_ablation(music_world) -> TextTable:
    """Equivalence-claim rate with and without UBS (case 1)."""
    table = TextTable(
        ["sampling", "wrong equivalences claimed", "correct subsumptions kept"],
        title="Case 1 ablation (music world): subsumption mistaken for equivalence",
    )
    worksdb = music_world.kb("worksdb")
    creator_of = worksdb.namespace.term("creatorOf")
    gold_subsumptions = {
        premise.local_name
        for premise, conclusion in music_world.ground_truth.subsumption_pairs(
            "musicbrainz", "worksdb"
        )
        if conclusion == creator_of
    }
    for label, use_ubs in (("SSE (baseline)", False), ("UBS", True)):
        config = dataclasses.replace(
            AlignmentConfig.paper_ubs(sample_size=12),
            use_unbiased_sampling=use_ubs,
            test_equivalence=True,
        )
        aligner = SofyaAligner(
            source=RemoteDataset.from_kb(worksdb),
            target=RemoteDataset.from_kb(music_world.kb("musicbrainz")),
            links=music_world.links,
            config=config,
        )
        alignment = aligner.align_relation(creator_of)
        accepted_subsumptions = {
            rule.premise.relation.local_name for rule in alignment.accepted(0.3)
        }
        claimed_equivalences = sum(
            1
            for candidate in alignment.candidates
            if candidate.equivalence() is not None and candidate.equivalence().accepted(0.8)
        )
        table.add_row(label, claimed_equivalences, len(accepted_subsumptions & gold_subsumptions))
    return table


def run_retention_mode_ablation() -> TextTable:
    """UBS quality under subject-level vs fact-level incompleteness."""
    table = TextTable(
        ["incompleteness model", "P", "R", "F1"],
        title="UBS sensitivity to the partial-completeness assumption",
    )
    for mode in ("subject", "fact"):
        spec = movie_world_spec(films=200, people=240, seed=19)
        for kb_spec in spec.kb_specs:
            kb_spec.retention_mode = mode
            kb_spec.fact_retention = 0.75
        world = generate_world(spec)
        experiment = AlignmentExperiment(world, distractor_relations=0)
        result = experiment.run_direction("imdb", "filmdb", AlignmentConfig.paper_ubs())
        evaluation = experiment.evaluate_direction("imdb", "filmdb", result)
        table.add_row(
            f"{mode}-level drops", evaluation.precision, evaluation.metrics.recall, evaluation.f1
        )
    return table


@pytest.mark.benchmark(group="ubs-ablation")
def test_movie_overlap_ablation(benchmark, movie_world):
    table = benchmark.pedantic(run_movie_ablation, args=(movie_world,), rounds=1, iterations=1)
    save_report("ubs_ablation_movie", table.render())
    baseline_precision = float(table.rows[0][2])
    ubs_precision = float(table.rows[1][2])
    assert ubs_precision >= baseline_precision


@pytest.mark.benchmark(group="ubs-ablation")
def test_music_equivalence_ablation(benchmark, music_world):
    table = benchmark.pedantic(run_music_ablation, args=(music_world,), rounds=1, iterations=1)
    save_report("ubs_ablation_music", table.render())
    baseline_claims = int(table.rows[0][1])
    ubs_claims = int(table.rows[1][1])
    assert ubs_claims <= baseline_claims


@pytest.mark.benchmark(group="ubs-ablation")
def test_retention_mode_ablation(benchmark):
    table = benchmark.pedantic(run_retention_mode_ablation, rounds=1, iterations=1)
    save_report("ubs_ablation_retention_mode", table.render())
    assert len(table.rows) == 2
