"""Record process- vs thread-backend wave throughput into ``BENCH_proc.json``.

The thread-backend waves of PR 3 overlap simulated *latency* well but
serialise the CPU-bound per-shard join pipelines on the GIL
(BENCH_shard.json records the resulting sub-linear 6.2x at 8 shards).
This benchmark measures the quantity the process workers exist to move:
**CPU-bound wave throughput** — no latency sleeps, a co-partitioned
multi-pattern star-join workload whose per-shard pipelines do real work —
served three ways on the paper-scale preset at 8 shards:

* ``wave_seq_qps`` — the queries issued sequentially (floor);
* ``wave_thread8_qps`` — a :class:`WaveScheduler` thread-pool wave
  against the in-process scatter backend (the PR 3 path);
* ``wave_proc8_qps`` — the same wave against
  ``backend="process"``: one worker process per shard over the
  per-shard snapshot files.

``proc_vs_thread8`` is the headline ratio.  **It scales with the
machine**: worker processes evaluate shards on separate cores, so the
ratio approaches min(cores, shards) on real hardware and degenerates to
~1x (parallelism-free, IPC overhead included) on a single-core runner.
``cpu_count`` is recorded alongside so the artefact is interpretable,
and ``--check`` derives its floor from the runner's cores:

* ``cpu_count >= 3``: the acceptance floor ``--min-speedup`` (default
  1.5) applies as-is — a multi-core runner that cannot beat the GIL by
  1.5x at 8 shards means the executor is broken;
* ``cpu_count == 2``: floor ``1.2``;
* ``cpu_count == 1``: floor ``0.4`` — no parallelism is available, so
  the check only guards against pathological protocol overhead
  (measured ~0.5-0.65x on a single core).

PR 7 adds two pushdown scenarios, measured with bare evaluators on a
shared thread pool (no endpoint accounting, the protocol is the thing
under test):

* **Aggregate wave** — two-pattern COUNT / COUNT DISTINCT star queries
  (two patterns so the single-pattern index-count intercept cannot
  answer them).  ``agg_proc8_qps`` uses worker-side fold partials;
  ``agg_stream_proc8_qps`` forces the pre-PR 7 behaviour (every row
  streams to the parent, which folds).  ``agg_fold_vs_stream8`` is the
  headline ratio — it reflects *transfer* saved, so it exceeds 1 even
  on a single core and the ``--min-agg-speedup`` floor (default 3.0)
  scales down to 1.5 / 1.1 on 2- / 1-core runners.
* **Cross-shard join wave** — s–o chains that are never co-partitioned;
  before PR 7 they ran on the single-threaded merged view, now they
  scatter with the cheapest relation broadcast (``xjoin_ship_engaged``
  counts how many workload queries actually shipped).
  ``xjoin_proc_vs_thread8`` uses the same core-scaled floor as the
  star-join waves.

``--check COMMITTED.json`` additionally applies the usual relative
regression guard to every ``*_qps`` metric (must not fall below the
committed number by more than ``--max-regression``), like the other
recorders.  ``--smoke`` shrinks the world for CI.

Usage::

    PYTHONPATH=src python benchmarks/record_proc.py --label pr5 --out BENCH_proc.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

_ROOT = Path(__file__).parent.parent
_SRC = _ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.endpoint.policy import AccessPolicy  # noqa: E402
from repro.endpoint.simulation import (  # noqa: E402
    SimulatedSparqlEndpoint,
    WaveScheduler,
    sharded_endpoint,
)
from repro.shard.sharded_store import ShardedTripleStore  # noqa: E402
from repro.sparql.evaluate import QueryEvaluator  # noqa: E402
from repro.sparql.scatter import ShardedQueryEvaluator  # noqa: E402
from repro.synthetic.generator import generate_world  # noqa: E402
from repro.synthetic.presets import yago_dbpedia_spec  # noqa: E402

SHARDS = 8
WAVE_REPEATS = 3


class _StreamingAggEvaluator(ShardedQueryEvaluator):
    """The pre-PR 7 aggregate path: rows stream back, the parent folds."""

    def _fold_pushdown(self, query):
        return None


def _policy() -> AccessPolicy:
    base = AccessPolicy.public_endpoint()
    return AccessPolicy(
        max_queries=None,
        max_result_rows=None,
        latency_per_query=base.latency_per_query,
        latency_per_row=base.latency_per_row,
        allow_full_scan=True,
    )


def _cpu_workload(kb, store) -> list:
    """Co-partitioned star joins with real per-shard compute.

    Two shapes per top relation, both guaranteed to produce work on
    every shard that holds the relation:

    * ``?s <p> ?a . ?s <p> ?b`` — the per-subject object cross product,
      a dense merge/hash pipeline with a mid-size result;
    * ``?s <p> ?a . ?s ?q ?o`` — a selective anchor joined against the
      subject's full description (the shape of the aligner's entity
      probes), heavy on index scans and result rows.
    """
    relations = sorted(kb.relations(), key=lambda info: -info.fact_count)[:4]
    if len(relations) < 2:
        raise SystemExit("preset too small for the star-join workload")
    queries = []
    for info in relations:
        p = info.iri.value
        queries.extend(
            [
                f"SELECT ?s ?a ?b WHERE {{ ?s <{p}> ?a . ?s <{p}> ?b }}",
                f"SELECT ?s ?a ?b WHERE {{ ?s <{p}> ?a . ?s <{p}> ?b }}",
                f"SELECT ?s ?q ?o WHERE {{ ?s <{p}> ?a . ?s ?q ?o }}",
            ]
        )
    return queries


def _agg_workload(kb) -> list:
    """Two-pattern COUNT waves the fold pushdown handles end to end.

    Two patterns keep the single-pattern index-count intercept out of the
    way; the DISTINCT pair covers both merge modes (the subject is the
    partition variable — sizes sum — while ``?o`` needs the hybrid
    set-union merge).
    """
    relations = sorted(kb.relations(), key=lambda info: -info.fact_count)[:4]
    queries = []
    for info in relations:
        p = info.iri.value
        queries.extend(
            [
                f"SELECT (COUNT(*) AS ?c) WHERE {{ ?s <{p}> ?a . ?s <{p}> ?b }}",
                f"SELECT (COUNT(DISTINCT ?s) AS ?c) (COUNT(DISTINCT ?o) AS ?d) "
                f"WHERE {{ ?s <{p}> ?a . ?s ?q ?o }}",
            ]
        )
    return queries


def _chain_workload(kb) -> list:
    """s–o chains: never co-partitioned, the join-shipping target shape.

    The smallest relation is the second hop, so the broadcast side stays
    cheap and shipping engages on every data scale.
    """
    relations = sorted(kb.relations(), key=lambda info: -info.fact_count)
    if len(relations) < 2:
        raise SystemExit("preset too small for the chain-join workload")
    small = relations[-1].iri.value
    return [
        f"SELECT ?s ?a ?z WHERE {{ ?s <{info.iri.value}> ?a . "
        f"?a <{small}> ?z }}"
        for info in relations[:4]
    ]


def _best_wave_qps(endpoint, queries, workers: int) -> float:
    best = 0.0
    with WaveScheduler(endpoint, max_workers=workers) as scheduler:
        for _ in range(WAVE_REPEATS):
            wave = scheduler.run_wave(queries)
            assert not wave.errors, wave.errors[:1]
            best = max(best, wave.throughput)
    return round(best, 2)


def _best_pool_qps(evaluator, queries, workers: int) -> float:
    """Best-of-N wave throughput against a bare evaluator (no endpoint)."""
    best = 0.0
    with ThreadPoolExecutor(max_workers=workers) as pool:
        for _ in range(WAVE_REPEATS):
            start = time.perf_counter()
            for result in pool.map(evaluator.evaluate, queries):
                assert result is not None
            best = max(best, len(queries) / (time.perf_counter() - start))
    return round(best, 2)


def _seq_qps(evaluator, queries) -> float:
    start = time.perf_counter()
    for query in queries:
        evaluator.evaluate(query)
    return round(len(queries) / (time.perf_counter() - start), 2)


def run_benchmarks(spec=None) -> dict:
    world = generate_world(spec if spec is not None else yago_dbpedia_spec())
    yago = world.kb("yago")
    triples = list(yago.store)
    results: dict = {"triples": len(triples), "cpu_count": os.cpu_count()}

    sharded = ShardedTripleStore(num_shards=SHARDS, name="bench", triples=triples)
    queries = _cpu_workload(yago, yago.store)
    results["wave_queries"] = len(queries)
    policy = _policy()

    # Sequential floor (single store, no waves).
    endpoint = SimulatedSparqlEndpoint(yago.store, policy=policy)
    start = time.perf_counter()
    for query in queries:
        endpoint.query(query)
    results["wave_seq_qps"] = round(
        len(queries) / (time.perf_counter() - start), 2
    )

    # Thread backend (PR 3 path): in-process scatter + thread-pool waves.
    thread_endpoint = sharded_endpoint(sharded, policy=policy)
    results[f"wave_thread{SHARDS}_qps"] = _best_wave_qps(
        thread_endpoint, queries, workers=SHARDS
    )

    # Process backend: snapshot + one worker per shard.
    snapshot_dir = Path(tempfile.mkdtemp(prefix="bench-proc-")) / "snap"
    with sharded_endpoint(
        sharded, policy=policy, backend="process", snapshot_dir=snapshot_dir
    ) as proc_endpoint:
        results[f"wave_proc{SHARDS}_qps"] = _best_wave_qps(
            proc_endpoint, queries, workers=SHARDS
        )

    thread_qps = results[f"wave_thread{SHARDS}_qps"]
    if thread_qps:
        results[f"proc_vs_thread{SHARDS}"] = round(
            results[f"wave_proc{SHARDS}_qps"] / thread_qps, 2
        )

    # ---- PR 7 pushdown scenarios (bare evaluators, shared pool) ---- #
    single_eval = QueryEvaluator(yago.store)
    thread_eval = ShardedQueryEvaluator(sharded)

    agg_queries = _agg_workload(yago)
    results["agg_queries"] = len(agg_queries)
    results["agg_seq_qps"] = _seq_qps(single_eval, agg_queries)
    results[f"agg_thread{SHARDS}_qps"] = _best_pool_qps(
        thread_eval, agg_queries, SHARDS
    )

    chain_queries = _chain_workload(yago)
    results["xjoin_queries"] = len(chain_queries)
    results["xjoin_ship_engaged"] = sum(
        1 for query in chain_queries if thread_eval.explain(query).mode == "ship"
    )
    results["xjoin_seq_qps"] = _seq_qps(single_eval, chain_queries)
    results[f"xjoin_thread{SHARDS}_qps"] = _best_pool_qps(
        thread_eval, chain_queries, SHARDS
    )

    pushdown_dir = Path(tempfile.mkdtemp(prefix="bench-proc-")) / "snap"
    with sharded.serve(pushdown_dir) as executor:
        fold_eval = ShardedQueryEvaluator(
            sharded, backend="process", executor=executor
        )
        stream_eval = _StreamingAggEvaluator(
            sharded, backend="process", executor=executor
        )
        results[f"agg_proc{SHARDS}_qps"] = _best_pool_qps(
            fold_eval, agg_queries, SHARDS
        )
        results[f"agg_stream_proc{SHARDS}_qps"] = _best_pool_qps(
            stream_eval, agg_queries, SHARDS
        )
        results[f"xjoin_proc{SHARDS}_qps"] = _best_pool_qps(
            fold_eval, chain_queries, SHARDS
        )

    if results[f"agg_stream_proc{SHARDS}_qps"]:
        results[f"agg_fold_vs_stream{SHARDS}"] = round(
            results[f"agg_proc{SHARDS}_qps"]
            / results[f"agg_stream_proc{SHARDS}_qps"],
            2,
        )
    if results[f"agg_thread{SHARDS}_qps"]:
        results[f"agg_proc_vs_thread{SHARDS}"] = round(
            results[f"agg_proc{SHARDS}_qps"] / results[f"agg_thread{SHARDS}_qps"], 2
        )
    if results[f"xjoin_thread{SHARDS}_qps"]:
        results[f"xjoin_proc_vs_thread{SHARDS}"] = round(
            results[f"xjoin_proc{SHARDS}_qps"]
            / results[f"xjoin_thread{SHARDS}_qps"],
            2,
        )
    return results


def _speedup_floor(cpu_count: int, acceptance: float) -> float:
    """The enforceable process-vs-thread floor for this runner's cores.

    On one core the protocol can only lose (measured ~0.5-0.65x: queue
    round-trips plus binding serialisation with zero parallelism to
    win back), so the floor there merely catches pathological overhead
    regressions.
    """
    if cpu_count >= 3:
        return acceptance
    if cpu_count == 2:
        return 1.2
    return 0.4


def _agg_floor(cpu_count: int, acceptance: float) -> float:
    """The fold-vs-stream floor: transfer saved, not cores, drives it.

    Folding replaces O(solutions) pickled row batches with one partial
    per shard, so it wins even single-core — but the margin there is
    only the serialisation cost, hence the reduced floors.
    """
    if cpu_count >= 3:
        return acceptance
    if cpu_count == 2:
        return 1.5
    return 1.1


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", required=True)
    parser.add_argument("--out", required=True)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny world for CI smoke checks"
    )
    parser.add_argument(
        "--check",
        default=None,
        metavar="COMMITTED_JSON",
        help="fail when *_qps falls below the committed artefact by more "
        "than --max-regression, or when proc_vs_thread8 falls below the "
        "core-scaled speedup floor",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=2.0,
        help="allowed throughput-loss factor vs committed (default 2.0)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.5,
        help="acceptance floor for proc_vs_thread8 on runners with >= 3 "
        "cores (scaled down automatically on smaller runners)",
    )
    parser.add_argument(
        "--min-agg-speedup",
        type=float,
        default=3.0,
        help="acceptance floor for agg_fold_vs_stream8 (worker-side fold "
        "vs streamed rows) on runners with >= 3 cores; scaled down to "
        "1.5 / 1.1 on 2- / 1-core runners",
    )
    args = parser.parse_args()

    spec = None
    if args.smoke:
        spec = yago_dbpedia_spec(families=5, people=60, works=40, places=20, orgs=15)

    results = {
        "benchmark": "benchmarks/record_proc.py",
        "preset": (
            "smoke world" if args.smoke
            else "yago_dbpedia_spec() (paper-scale, largest preset)"
        ),
        "baseline": "PR 3 thread-backend scatter waves (same queries, same "
        "store, 8 shards, 8 wave workers, no simulated latency)",
        "note": "proc_vs_thread8 scales with available cores; cpu_count is "
        "recorded so artefacts from different machines stay comparable",
        "label": args.label,
        "results": run_benchmarks(spec),
    }
    Path(args.out).write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(results, indent=2))

    if args.check:
        committed = json.loads(Path(args.check).read_text(encoding="utf-8"))
        reference = committed.get("results", {})
        measured_all = results["results"]
        failures = []
        for key, reference_value in reference.items():
            measured = measured_all.get(key)
            if not key.endswith("_qps"):
                continue
            if not isinstance(reference_value, (int, float)) or not isinstance(
                measured, (int, float)
            ):
                continue
            if measured < reference_value / args.max_regression:
                failures.append(
                    f"REGRESSION {key}: {measured:.2f} qps is below "
                    f"{args.max_regression:g}x headroom on committed "
                    f"{reference_value:.2f}"
                )
        cpu_count = measured_all.get("cpu_count") or 1
        floor = _speedup_floor(cpu_count, args.min_speedup)
        speedup = measured_all.get(f"proc_vs_thread{SHARDS}", 0.0)
        if speedup < floor:
            failures.append(
                f"ACCEPTANCE proc_vs_thread{SHARDS}: {speedup:.2f} is below "
                f"the floor {floor:g} for a {cpu_count}-core runner"
            )
        agg_floor = _agg_floor(cpu_count, args.min_agg_speedup)
        agg_speedup = measured_all.get(f"agg_fold_vs_stream{SHARDS}", 0.0)
        if agg_speedup < agg_floor:
            failures.append(
                f"ACCEPTANCE agg_fold_vs_stream{SHARDS}: {agg_speedup:.2f} "
                f"is below the floor {agg_floor:g} for a {cpu_count}-core "
                f"runner"
            )
        if not measured_all.get("xjoin_ship_engaged"):
            failures.append(
                "ACCEPTANCE xjoin_ship_engaged: no chain query used join "
                "shipping — the cross-shard path regressed to merged-view "
                "fallback"
            )
        if failures:
            for line in failures:
                print(line)
            sys.exit(2)
        print(
            f"regression check ok (qps headroom {args.max_regression:g}x, "
            f"speedup floor {floor:g} at {cpu_count} cores: measured "
            f"{speedup:.2f}; agg fold floor {agg_floor:g}: measured "
            f"{agg_speedup:.2f}; ship engaged on "
            f"{measured_all.get('xjoin_ship_engaged')} chain queries)"
        )


if __name__ == "__main__":
    main()
