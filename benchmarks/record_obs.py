"""Record observability-layer overhead and engagement into a JSON artefact.

The observability ISSUE's acceptance gate: with tracing *off* (the
production default — metrics registry on, no trace root open) the
3-pattern join must stay within 5% of the *bare* baseline (registry
disabled wholesale, i.e. the closest honest stand-in for the
pre-instrumentation engine).  The three configurations are measured
interleaved — bare, off and traced batches alternate round-robin and
each keeps its best round — so drift on a busy runner hits all three
equally instead of biasing the ratio::

    PYTHONPATH=src python benchmarks/record_obs.py --label pr8 \
        --out BENCH_obs.json
    # CI regression gate (smoke world, same ratio thresholds):
    PYTHONPATH=src python benchmarks/record_obs.py --label ci \
        --out /tmp/ci-obs.json --smoke --check

``--check`` also asserts the instruments actually *engage* — a profiled
query on a sharded process-backend endpoint must re-parent one measured
``worker:exec`` span per shard, ``WaveScheduler.wave_report()`` must
yield non-empty per-mode percentiles, and the plan-cache / kernel
counters must have counted — so the overhead gate cannot pass simply
because the instrumentation silently stopped firing.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

_ROOT = Path(__file__).parent.parent
_SRC = _ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.endpoint.simulation import WaveScheduler, sharded_endpoint  # noqa: E402
from repro.obs import metrics as obs_metrics  # noqa: E402
from repro.obs import trace as obs_trace  # noqa: E402
from repro.shard.sharded_store import ShardedTripleStore  # noqa: E402
from repro.sparql.evaluate import QueryEvaluator  # noqa: E402
from repro.sparql.parser import parse_query  # noqa: E402
from repro.synthetic.generator import generate_world  # noqa: E402
from repro.synthetic.presets import yago_dbpedia_spec  # noqa: E402

SAME_AS = "http://www.w3.org/2002/07/owl#sameAs"


def _join3_query(store_kb) -> str:
    """The 3-pattern join of ``record_join.py`` (most selective last)."""
    relations = sorted(store_kb.relations(), key=lambda info: -info.fact_count)
    big = relations[0].iri
    small = relations[-1].iri
    return (
        f"SELECT ?s ?o ?x WHERE {{ ?s <{big.value}> ?o . "
        f"?s <{SAME_AS}> ?x . ?s <{small.value}> ?n }}"
    )


def run_benchmarks(spec=None, repeats: int = 7, batch: int = 100) -> dict:
    world = generate_world(spec or yago_dbpedia_spec())
    yago = world.kb("yago")
    join3_text = _join3_query(yago)
    join3 = parse_query(join3_text)

    evaluator = QueryEvaluator(yago.store)
    evaluator.evaluate(join3)  # warm the plan cache once for all configs

    registry = obs_metrics.registry()
    tracer = obs_trace.recorder()

    def run_plain() -> float:
        start = time.perf_counter()
        for _ in range(batch):
            evaluator.evaluate(join3)
        return time.perf_counter() - start

    def run_traced() -> float:
        start = time.perf_counter()
        for _ in range(batch):
            root = tracer.begin("query")
            try:
                evaluator.evaluate(join3)
            finally:
                tracer.end(root)
        return time.perf_counter() - start

    best = {"bare": float("inf"), "off": float("inf"), "on": float("inf")}
    for _ in range(repeats):
        registry.set_enabled(False)
        try:
            best["bare"] = min(best["bare"], run_plain())
        finally:
            registry.set_enabled(True)
        best["off"] = min(best["off"], run_plain())
        best["on"] = min(best["on"], run_traced())

    results = {
        "yago_triples": len(yago.store),
        "join3_batch": batch,
        "join3_bare_ms": round(best["bare"] * 1000, 4),
        "join3_metrics_on_ms": round(best["off"] * 1000, 4),
        "join3_traced_ms": round(best["on"] * 1000, 4),
        "overhead_tracing_off": round(best["off"] / best["bare"], 4),
        "overhead_tracing_on": round(best["on"] / best["bare"], 4),
        "plan_cache_hits": int(registry.value("plan.cache_hit")),
        "kernel_engagements": sum(
            registry.counters_with_prefix("kernel.").values()
        ),
    }
    results.update(_engagement(yago, join3_text))
    return results


def _engagement(yago, join3_text: str) -> dict:
    """Sharded process-backend engagement: worker spans + wave report."""
    # A broad co-partitioned star join: its subjects populate every
    # shard, so the scatter cannot legitimately prune a worker away (the
    # selective join3 can route to one shard on small worlds).
    relations = sorted(yago.relations(), key=lambda info: -info.fact_count)
    star_text = (
        f"SELECT ?s ?o ?x WHERE {{ ?s <{relations[0].iri.value}> ?o . "
        f"?s <{SAME_AS}> ?x }}"
    )
    store = ShardedTripleStore(num_shards=2, triples=list(yago.store))
    with sharded_endpoint(store, backend="process") as endpoint:
        with WaveScheduler(endpoint, max_workers=4) as scheduler:
            wave = scheduler.run_wave([star_text] * 3 + [join3_text] * 3)
            if wave.failed:  # pragma: no cover - workers died on the runner
                raise RuntimeError(f"engagement wave failed: {wave.errors}")
            report = scheduler.wave_report()
        profile = endpoint.profile(star_text)
        if profile.error is not None:  # pragma: no cover - defensive
            raise profile.error
        worker_spans = profile.trace.find_all("worker:exec")
        return {
            "profile_worker_spans": len(worker_spans),
            "profile_mode": profile.trace.attributes.get("mode"),
            "wave_queries": report["queries"],
            "wave_modes": sorted(report["modes"]),
            "wave_p50_ms": round(report["latency"]["p50"] * 1000, 4),
            "wave_p95_ms": round(report["latency"]["p95"] * 1000, 4),
            "wave_p99_ms": round(report["latency"]["p99"] * 1000, 4),
            "protocol_balanced": report["protocol"]["dispatched"]
            == report["protocol"]["completed"]
            + report["protocol"]["cancelled"]
            + report["protocol"]["failed"]
            + report["protocol"]["crashed"],
        }


def check(results: dict, max_overhead: float) -> list:
    failures = []
    if results["overhead_tracing_off"] > max_overhead:
        failures.append(
            f"tracing-off overhead {results['overhead_tracing_off']:.4f}x "
            f"exceeds the {max_overhead:g}x gate"
        )
    if results["profile_worker_spans"] < 2:
        failures.append(
            "profiled sharded query re-parented "
            f"{results['profile_worker_spans']} worker:exec spans (need one "
            "per shard = 2)"
        )
    if results["wave_queries"] < 6:
        failures.append(f"wave_report counted {results['wave_queries']}/6 queries")
    for key in ("wave_p50_ms", "wave_p95_ms", "wave_p99_ms"):
        if not results[key] > 0:
            failures.append(f"{key} missing from wave_report")
    if not results["wave_modes"]:
        failures.append("wave_report has no per-mode histograms")
    if results["plan_cache_hits"] <= 0:
        failures.append("plan.cache_hit never incremented")
    if results["kernel_engagements"] <= 0:
        failures.append("no kernel.* engagement counter incremented")
    if not results["protocol_balanced"]:
        failures.append("protocol ledger unbalanced after the wave")
    return failures


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", required=True)
    parser.add_argument("--out", required=True)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny world for CI smoke checks"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail on overhead above the gate or unengaged instruments",
    )
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=1.05,
        help="allowed tracing-off slowdown versus the bare baseline "
        "(default 1.05 = the ISSUE's 5%% gate)",
    )
    parser.add_argument("--repeats", type=int, default=7)
    args = parser.parse_args()

    spec = None
    if args.smoke:
        spec = yago_dbpedia_spec(
            families=5, people=60, works=40, places=20, orgs=15
        )

    results = {
        "benchmark": "benchmarks/record_obs.py",
        "preset": (
            "yago_dbpedia_spec() smoke world"
            if args.smoke
            else "yago_dbpedia_spec() (paper-scale, largest preset)"
        ),
        "note": (
            "overhead_* are ratios versus the bare baseline (registry "
            "disabled); the acceptance gate is overhead_tracing_off <= 1.05"
        ),
        "label": args.label,
        "results": run_benchmarks(spec, repeats=args.repeats),
    }
    Path(args.out).write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(results, indent=2))

    if args.check:
        failures = check(results["results"], args.max_overhead)
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=sys.stderr)
            sys.exit(1)
        print(
            f"observability check ok (tracing-off overhead "
            f"{results['results']['overhead_tracing_off']:.4f}x <= "
            f"{args.max_overhead:g}x, instruments engaged)"
        )


if __name__ == "__main__":
    main()
